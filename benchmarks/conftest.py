"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(at ``tiny`` scale by default so the suite stays interactive; set
``REPRO_BENCH_SCALE=full`` to reproduce the EXPERIMENTS.md numbers).
The pytest-benchmark timings measure the cost of the regeneration
itself — i.e. the model/simulator throughput on that experiment.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import ExperimentSuite


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(scale=bench_scale())


def run_and_report(benchmark, driver, checks=None):
    """Benchmark one experiment driver and print its table.

    ``checks`` is an optional callable receiving the ExperimentResult —
    the per-experiment shape assertions (who wins, what declines).
    """
    result = benchmark.pedantic(driver, rounds=1, iterations=1)
    print()
    print(result.to_text())
    if checks is not None:
        checks(result)
    return result
