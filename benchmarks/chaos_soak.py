"""Chaos soak for the analysis service (``make chaos-smoke``).

Proves the crash-safety contract of the durable job journal end to
end: a real ``repro-fs serve`` subprocess is SIGKILL'd — no drain, no
atexit, indistinguishable from an OOM kill — **mid-sweep**, restarted
against the same ``--journal-dir``, and killed again, ``--kills``
times in total.  Throughout, a client records every result row it has
observed (each one was fsync'd to the journal *before* publication).
After the final restart the job must run to completion and the full
row log must show:

* **zero lost rows** — every row observed before any kill reappears,
  byte-identical, at the same offset after recovery;
* **zero duplicated cells** — each grid cell appears exactly once,
  and the grid is complete;
* exactly one terminal ``summary`` row with status ``done``.

Cells are slowed with an ``engine.job`` latency fault so each kill
reliably lands in the middle of the sweep, and the result store is
disabled so recovery genuinely re-executes the unfinished remainder
instead of replaying a warm cache.

Importable: the crash-recovery e2e test reuses :func:`run_soak` with a
smaller kill budget.  Exit status is nonzero on any violated
expectation, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Sweep grid: big enough that a kill budget of 5 cannot exhaust it.
_THREADS = (1, 2, 3, 4, 6, 8)
_CHUNKS = (1, 2, 4, 8, 16)


def _heat_source() -> str:
    from repro.kernels import heat_source

    return heat_source(6, 130)


def _spawn_daemon(port: int, workdir: Path, delay_s: float,
                  log: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(workdir / "cache")
    env["REPRO_FAULTS"] = f"engine.job:latency:delay={delay_s:g}"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    with open(log, "ab") as sink:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", str(port),
             "--workers", "1", "--concurrency", "1",
             "--batch-cells", "1", "--no-cache",
             "--journal-dir", str(workdir / "journal"),
             "--store-dir", str(workdir / "store")],
            env=env, stdout=sink, stderr=sink,
        )


def run_soak(
    port: int = 18397,
    kills: int = 5,
    delay_s: float = 0.4,
    rows_per_round: int = 2,
    workdir: Path | None = None,
    timeout_s: float = 600.0,
    threads: tuple[int, ...] = _THREADS,
    chunks: tuple[int, ...] = _CHUNKS,
) -> dict:
    """SIGKILL the daemon ``kills`` times mid-sweep; verify zero row
    loss and zero duplication.  Returns a verdict dict; raises
    ``AssertionError`` on any violated expectation."""
    from repro.service.client import ServiceClient

    workdir = workdir or Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    log = workdir / "daemon.log"
    deadline = time.monotonic() + timeout_s

    client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=60,
                           retries=5)
    daemon = _spawn_daemon(port, workdir, delay_s, log)
    observed: list[dict] = []   # rows seen so far, in offset order
    verdict: dict = {"port": port, "kills": 0, "workdir": str(workdir)}
    try:
        client.wait_ready(timeout_s=30)
        job_id = client.submit(
            _heat_source(), threads=list(threads), chunks=list(chunks)
        )["id"]
        verdict["job"] = job_id

        for round_no in range(1, kills + 1):
            # Wait until the sweep has made fresh progress since the
            # last kill, so the SIGKILL genuinely lands mid-flight.
            while True:
                if time.monotonic() > deadline:
                    raise AssertionError(
                        f"soak timed out waiting for progress "
                        f"(round {round_no}, {len(observed)} rows)"
                    )
                doc = client.results(job_id, from_offset=len(observed))
                fresh = doc["rows"]
                if len(fresh) >= rows_per_round:
                    observed.extend(fresh)
                    break
                if doc["status"] in ("done", "failed", "cancelled"):
                    raise AssertionError(
                        f"job reached {doc['status']!r} after only "
                        f"{round_no - 1} kills — grid too small for "
                        f"kills={kills}"
                    )
                time.sleep(0.1)

            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
            verdict["kills"] = round_no
            daemon = _spawn_daemon(port, workdir, delay_s, log)
            client.wait_ready(timeout_s=30)

            # Zero lost rows: everything observed pre-kill must be
            # replayed verbatim at the same offsets.
            doc = client.results(job_id)
            replayed = doc["rows"]
            assert len(replayed) >= len(observed), (
                f"journal lost rows: had {len(observed)}, "
                f"recovered {len(replayed)}"
            )
            for i, row in enumerate(observed):
                assert replayed[i] == row, (
                    f"row {i} changed across crash #{round_no}:\n"
                    f"  before: {row}\n  after:  {replayed[i]}"
                )

        # Final pass: stream (with ?from=N resume) to completion.
        for row in client.stream(job_id, from_offset=len(observed)):
            if row.get("type") != "interrupted":
                observed.append(row)
        final = client.wait(job_id, timeout_s=60)
        assert final["status"] == "done", final

        cells = [r for r in observed if r["type"] == "cell"]
        keys = [(r["threads"], r["chunk"]) for r in cells]
        want = [(t, c) for t in threads for c in chunks]
        dupes = {k for k in keys if keys.count(k) > 1}
        assert not dupes, f"cells delivered more than once: {sorted(dupes)}"
        missing = set(want) - set(keys)
        assert not missing, f"cells never delivered: {sorted(missing)}"
        summaries = [r for r in observed if r["type"] == "summary"]
        assert len(summaries) == 1 and summaries[0]["status"] == "done", (
            summaries
        )
        verdict.update(
            rows=len(observed), cells=len(cells),
            requeues=final.get("requeues"), ok=True,
        )
        return verdict
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=10)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=18397,
                        help="service port (default 18397)")
    parser.add_argument("--kills", type=int, default=5,
                        help="SIGKILL count (default 5)")
    parser.add_argument("--delay", type=float, default=0.4,
                        help="injected per-cell latency seconds")
    parser.add_argument("--out", default=None,
                        help="write a JSON verdict here as well")
    args = parser.parse_args(argv)

    verdict = run_soak(port=args.port, kills=args.kills,
                       delay_s=args.delay)
    print("chaos-soak OK:", json.dumps(verdict))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(verdict, indent=1), encoding="utf-8"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
