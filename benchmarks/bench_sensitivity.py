"""Robustness — elasticity of the modeled FS% to machine constants.

The paper never publishes its Open64 constants; ours are calibrated
(note 5 of EXPERIMENTS.md).  This bench perturbs each constant by +25%
(−25% for the bounded prefetch coverage) and reports how the headline
modeled FS% moves per kernel — the constants that matter are exactly
the ones the calibration harness measures.

The per-constant evaluations are independent model runs, so they route
through :mod:`repro.engine` (cache disabled: this is a timing bench)
instead of duplicating the serial loop the library already retired.
"""

from repro.analysis.report import ExperimentResult
from repro.analysis.sensitivity import sensitivity
from repro.engine import Engine, default_jobs
from repro.kernels import dft, heat_diffusion
from repro.machine import paper_machine

THREADS = 4

KERNELS = {
    "heat": heat_diffusion(rows=6, cols=1026),
    "dft": dft(samples=4, freqs=768),
}


def run_sensitivity() -> ExperimentResult:
    machine = paper_machine()
    engine = Engine(jobs=default_jobs(), use_cache=False)
    res = ExperimentResult(
        "Sensitivity",
        f"elasticity of modeled FS% to machine constants (T={THREADS})",
        ("constant", *(f"{k} elasticity" for k in KERNELS)),
    )
    per_kernel = {
        name: {
            e.constant: e
            for e in sensitivity(machine, k, THREADS, engine=engine)
        }
        for name, k in KERNELS.items()
    }
    constants = next(iter(per_kernel.values())).keys()
    for const in constants:
        res.add_row(
            const,
            *(round(per_kernel[k][const].elasticity, 3) for k in KERNELS),
        )
    return res, per_kernel


def test_sensitivity_structure(benchmark):
    res, per_kernel = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    print()
    print(res.to_text())

    heat = per_kernel["heat"]
    dft_e = per_kernel["dft"]
    # Direction checks — the constants must matter the way the physics says:
    # heat's FS is write-type: the invalidation cost drives it, the
    # read-transfer cost does not.
    assert abs(heat["invalidate_cycles"].elasticity) > abs(
        heat["remote_fetch_cycles"].elasticity
    )
    # DFT's FS is read-type: the opposite ordering.
    assert abs(dft_e["remote_fetch_cycles"].elasticity) > abs(
        dft_e["invalidate_cycles"].elasticity
    )
    # DFT's percentage is diluted by trig compute: the call latency has
    # a visible *negative* elasticity (more compute -> smaller FS share).
    assert dft_e["call_latency"].elasticity < 0
    # Nothing explodes: all elasticities bounded (|e| <= 1 ~ proportional).
    for entries in per_kernel.values():
        for e in entries.values():
            assert abs(e.elasticity) < 1.5
