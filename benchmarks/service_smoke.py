"""End-to-end smoke of the analysis service daemon (``make service-smoke``).

Boots a real ``repro-fs serve`` **subprocess**, then walks the whole
operational contract the docs promise:

1. submit a small heat-kernel sweep over HTTP and stream its NDJSON
   results live (cells must carry fidelity tags; the terminal row is a
   summary);
2. re-submit the identical sweep and require a warm run — every cell
   served ``from_cache`` and the ``service_cells_total{status=
   "from_cache"}`` counter visible at ``/metrics`` in valid Prometheus
   text exposition;
3. send SIGTERM and require a graceful drain: the process must exit 0.

Exit status is nonzero on any violated expectation, so CI can gate on
it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path


def _heat_source() -> str:
    from repro.kernels import heat_source

    return heat_source(6, 130)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=18377,
                        help="service port (default 18377)")
    parser.add_argument("--out", default=None,
                        help="write a JSON verdict here as well")
    args = parser.parse_args(argv)

    from repro.service.client import ServiceClient

    workdir = Path(tempfile.mkdtemp(prefix="repro-svc-smoke-"))
    env = dict(os.environ)
    env.setdefault("REPRO_CACHE_DIR", str(workdir / "cache"))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(args.port),
         "--workers", "2", "--concurrency", "1",
         "--state-file", str(workdir / "queue-state.json"),
         "--store-dir", str(workdir / "store")],
        env=env,
    )
    verdict: dict = {"port": args.port}
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{args.port}", timeout_s=120
        )
        health = client.wait_ready(timeout_s=30)
        assert health["status"] == "ready", health

        source = _heat_source()
        grid = {"threads": [2, 4], "chunks": [1, 4]}

        # 1. cold submit + live stream
        job = client.submit(source, **grid)
        rows = list(client.stream(job["id"]))
        cells = [r for r in rows if r["type"] == "cell"]
        assert cells, "stream produced no cells"
        assert all("fidelity" in c for c in cells), cells[0]
        assert rows[-1]["type"] == "summary", rows[-1]
        assert rows[-1]["status"] == "done", rows[-1]
        verdict["cold"] = {
            "cells": len(cells),
            "from_cache": sum(1 for c in cells if c["from_cache"]),
        }

        # 2. warm re-submit: >= 90% cache-served, counter at /metrics
        job2 = client.submit(source, **grid)
        final = client.wait(job2["id"], timeout_s=120)
        done = final["cells"]["done"]
        cached = final["cells"]["from_cache"]
        assert done and cached / done >= 0.9, final["cells"]
        counter = client.metric_value(
            "service_cells_total", {"status": "from_cache"}
        )
        assert counter is not None and counter >= cached, counter
        text = client.metrics()
        assert "# TYPE service_cells_total counter" in text
        assert "# TYPE service_job_seconds histogram" in text
        assert 'le="+Inf"' in text
        verdict["warm"] = {"cells": done, "from_cache": cached,
                           "metrics_counter": counter}

        # 3. SIGTERM -> graceful drain -> exit 0
        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=60)
        assert rc == 0, f"daemon exited {rc}, wanted 0"
        verdict["drain_exit_code"] = rc
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    verdict["ok"] = True
    print("service-smoke OK:", json.dumps(verdict))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(verdict, indent=1), encoding="utf-8"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
