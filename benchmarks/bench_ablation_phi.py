"""Ablation — φ-literal counting vs write-invalidate semantics.

The paper's Section III-D counts FS via φ on newly inserted lines and
never says remote copies are invalidated; our default detector adds
write-invalidate semantics (the protocol the paper's own background
section describes).  This ablation quantifies the difference on the
three kernels.
"""

import pytest

from repro.analysis.report import ExperimentResult
from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel


KERNELS = {
    "heat": lambda: heat_diffusion(rows=6, cols=1026),
    "dft": lambda: dft(samples=4, freqs=768),
    "linreg": lambda: linear_regression(4, tasks=96, total_points=480),
}


def run_ablation() -> ExperimentResult:
    machine = paper_machine()
    res = ExperimentResult(
        "Ablation φ",
        "FS cases: write-invalidate vs literal φ counting (T=4, FS chunk)",
        ("kernel", "invalidate mode", "literal mode", "literal/invalidate"),
    )
    for name, factory in KERNELS.items():
        k = factory()
        inv = FalseSharingModel(machine, mode="invalidate").analyze(
            k.nest, 4, chunk=k.fs_chunk
        )
        lit = FalseSharingModel(machine, mode="literal").analyze(
            k.nest, 4, chunk=k.fs_chunk
        )
        ratio = lit.fs_cases / inv.fs_cases if inv.fs_cases else float("nan")
        res.add_row(name, inv.fs_cases, lit.fs_cases, round(ratio, 2))
    return res


def test_ablation_phi_semantics(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    for row in result.rows:
        kernel, inv, lit = row[0], row[1], row[2]
        assert inv > 0 and lit > 0
        # The two semantics diverge by construction: without
        # invalidations, stale copies stay resident, so repeat accesses
        # hit the thread's own state and φ is never re-evaluated — the
        # literal reading *undercounts* steady-state ping-pong (most
        # visible for DFT's read-modify-writes).  This bench documents
        # the size of that gap; the detector defaults to the
        # write-invalidate semantics for exactly this reason.
        if kernel == "dft":
            assert lit < inv
