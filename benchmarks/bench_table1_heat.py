"""Table I — heat diffusion: measured vs modeled FS overhead.

Paper claim: modeled percentage is close to measured and essentially
flat across thread counts (paper: ~6.9–7.2%; our simulated substrate
runs higher but preserves both properties — see EXPERIMENTS.md note 2).
"""

from benchmarks.conftest import run_and_report


def test_table1_heat_overheads(benchmark, suite):
    def checks(res):
        measured = res.column("measured FS %")
        modeled = res.column("modeled FS %")
        for m, mod in zip(measured, modeled):
            assert m > 0 and mod > 0
            assert abs(m - mod) < 20, f"model must track measurement ({m} vs {mod})"
        # Flatness: modeled varies little across the sweep.
        assert max(modeled) - min(modeled) < 10

    run_and_report(benchmark, suite.run_table1, checks)
