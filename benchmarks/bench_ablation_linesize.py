"""Ablation — FS volume vs cache line size.

Not in the paper, but the canonical sanity law of false sharing: the
larger the coherence granularity, the more unrelated data cohabits a
line and the more writes land on somebody else's dirty line.  On a
streaming store kernel (one write per iteration, ``chunk=1``) the
model must show FS cases growing monotonically with the line size, and
the FS-free chunk (one line's worth of elements per thread) must scale
with it.
"""

import dataclasses

from repro.analysis.report import ExperimentResult
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
)
from repro.machine import CacheLevel, paper_machine
from repro.model import FalseSharingModel

THREADS = 4


def store_stream_nest(n: int = 512) -> ParallelLoopNest:
    a = ArrayDecl.create("src", DOUBLE, (n,))
    b = ArrayDecl.create("dst", DOUBLE, (n,))
    i = AffineExpr.var("i")
    stmt = Assign(
        ArrayRef(b, (i,), is_write=True),
        BinOp("+", LoadExpr(ArrayRef(a, (i,))), Const(1.0, DOUBLE)),
    )
    return ParallelLoopNest(
        "stream.i", Loop.create("i", 0, n, [stmt]), "i",
        schedule=Schedule("static", 1),
    )


def machine_with_line(line_size: int):
    base = paper_machine()
    return dataclasses.replace(
        base,
        l1=CacheLevel(64 * 1024, line_size=line_size, associativity=2,
                      latency_cycles=3),
        l2=CacheLevel(512 * 1024, line_size=line_size, associativity=16,
                      latency_cycles=12),
        l3=CacheLevel(10 * 1024 * 1024, line_size=line_size, associativity=16,
                      latency_cycles=40, shared=True),
    )


# Note: on RMW-heavy struct kernels (linreg) the raw *count* is not
# monotone in the line size — bigger lines mean fewer, hotter lines and
# invalidate-mode counting saturates at one foreign writer per access.
# The streaming store kernel isolates the granularity law cleanly.


def run_ablation() -> ExperimentResult:
    nest = store_stream_nest()
    res = ExperimentResult(
        "Ablation line size",
        f"store stream: FS cases vs coherence granularity (T={THREADS}, chunk=1)",
        ("line size (B)", "FS cases", "FS-free chunk", "doubles per line"),
    )
    for line_size in (16, 32, 64, 128, 256):
        machine = machine_with_line(line_size)
        model = FalseSharingModel(machine)
        r = model.analyze(nest, THREADS, chunk=1)
        aligned_chunk = line_size // 8
        r_fixed = model.analyze(nest, THREADS, chunk=aligned_chunk)
        res.add_row(
            line_size, r.fs_cases,
            f"{aligned_chunk} ({r_fixed.fs_cases} cases)",
            line_size // 8,
        )
    return res


def test_ablation_line_size(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    cases = result.column("FS cases")
    # Monotone growth with coherence granularity...
    assert cases == sorted(cases)
    assert cases[-1] > cases[0]
    # ...and one-line-per-thread chunks always cure it.
    assert all("(0 cases)" in s for s in result.column("FS-free chunk"))
