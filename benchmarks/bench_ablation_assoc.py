"""Ablation — the model's fully-associative cache-state approximation.

Section III-C argues that modeling a fully-associative cache is valid
for highly associative caches (citing Sandberg et al.).  This ablation
measures it directly: the simulator runs the same kernel with its real
set-associative private caches and with fully-associative ones, and we
compare coherence-event counts against the (always fully-associative)
model.
"""

from repro.analysis.report import ExperimentResult
from repro.kernels import heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from repro.sim import MulticoreSimulator


def run_ablation() -> ExperimentResult:
    machine = paper_machine()
    model = FalseSharingModel(machine)
    res = ExperimentResult(
        "Ablation associativity",
        "coherence events: set-assoc sim vs fully-assoc sim vs FA model (T=4)",
        ("kernel", "sim set-assoc", "sim fully-assoc", "model (FA)"),
    )
    for name, k in (
        ("heat", heat_diffusion(rows=6, cols=1026)),
        ("linreg", linear_regression(4, tasks=96, total_points=480)),
    ):
        sa = MulticoreSimulator(machine, fully_associative=False).run(
            k.nest, 4, chunk=k.fs_chunk
        )
        fa = MulticoreSimulator(machine, fully_associative=True).run(
            k.nest, 4, chunk=k.fs_chunk
        )
        m = model.analyze(k.nest, 4, chunk=k.fs_chunk)
        res.add_row(
            name,
            sa.counters.coherence_events,
            fa.counters.coherence_events,
            m.fs_cases,
        )
    return res


def test_ablation_associativity(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    for _, sa, fa, model_count in result.rows:
        # The paper's approximation: FA modeling tracks the SA machine.
        assert model_count == fa
        assert abs(sa - fa) <= max(0.02 * fa, 16), (
            "set-associativity must not change coherence behaviour "
            "materially for these working sets"
        )
