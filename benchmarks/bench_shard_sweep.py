"""Sharded / two-tier / incremental sweep benchmark (``make bench-sweep-sharded``).

Four claims, one report (default ``BENCH_shards.json``):

1. **shard invariance** — the same what-if grid run at ``--shards 1``,
   ``2`` and ``4`` produces byte-identical point lists *and*
   byte-identical result-store contents (same keys, same result docs)
   as the serial uncached baseline;
2. **cold scaling** — at 4 shards the cold pass beats 1 shard by >= 2x
   (asserted only on boxes with >= 4 usable cores and outside
   ``--quick`` mode; wall times are recorded regardless);
3. **warm memory tier** — a re-run through the same engine is served
   >= 95% from the in-memory tier with **zero** pool dispatches;
4. **incremental manifest** — after "editing" one of two kernels, the
   manifest marks exactly the edited kernel stale: only its cells
   recompute, the untouched kernel's cells are skipped outright.

Run:  REPRO_CACHE_DIR=/tmp/c python benchmarks/bench_shard_sweep.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.engine import (
    Engine,
    Manifest,
    MemCache,
    ResultStore,
    ReuseReport,
    ShardedEngine,
    default_cache_dir,
    nest_digest,
)
from repro.kernels import heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import WhatIfSweep
from repro.obs import get_registry

SHARD_COUNTS = (1, 2, 4)
MIN_COLD_SPEEDUP = 2.0
MIN_WARM_MEM_FRACTION = 0.95


def _counter(name: str) -> float:
    return get_registry().snapshot()["counters"].get(name, 0.0)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _points_doc(result) -> str:
    """Canonical byte form of a landscape (the identity under test)."""
    return json.dumps([p.to_dict() for p in result.points], sort_keys=True)


def _store_contents(store: ResultStore) -> dict[str, dict]:
    """key -> result doc for every entry (created_at timestamps excluded
    by construction: ``get`` returns only the result payload)."""
    return {
        path.stem: store.get(path.stem) for path in store._entries()
    }


def run(quick: bool, out: str) -> int:
    machine = paper_machine()
    if quick:
        kernel = linear_regression(8, tasks=96, total_points=192)
        threads, chunks = (2, 4), (1, 2, 4)
        predictor_runs = 4
    else:
        # Heavy enough (~130 ms/point) that per-cell compute dominates
        # pool startup — the regime where the cold-scaling gate means
        # something.
        kernel = linear_regression(8, tasks=480, total_points=1920)
        threads, chunks = (2, 4, 8), (1, 2, 4, 8, 16, 32)
        predictor_runs = 8
    sweep = WhatIfSweep(machine, predictor_runs=predictor_runs)
    failures: list[str] = []
    report: dict = {
        "quick": quick,
        "cores": _usable_cores(),
        "grid": {"threads": threads, "chunks": chunks},
    }

    # -- 1. serial uncached baseline: the reference bytes --------------------
    t0 = time.perf_counter()
    baseline = sweep.sweep(
        kernel.nest, threads=threads, chunks=chunks,
        engine=Engine(jobs=1, use_cache=False),
    )
    baseline_s = time.perf_counter() - t0
    baseline_doc = _points_doc(baseline)
    n = len(baseline.points)
    report["points"] = n
    report["baseline_serial_uncached_s"] = round(baseline_s, 4)
    print(f"[bench-shards] baseline jobs=1 no-cache "
          f"{baseline_s:.2f}s ({n} points)")

    # -- 2. cold pass per shard count (fresh store each) ----------------------
    root = default_cache_dir()
    cold_s: dict[int, float] = {}
    stores: dict[int, ResultStore] = {}
    engines: dict[int, ShardedEngine] = {}
    contents: dict[int, dict] = {}
    for shards in SHARD_COUNTS:
        store = ResultStore(root / f"bench-shard-{shards}")
        store.clear()
        engine = ShardedEngine(
            shards=shards, jobs_per_shard=1, store=store,
            mem_cache=MemCache(),
        )
        t0 = time.perf_counter()
        result = sweep.sweep(
            kernel.nest, threads=threads, chunks=chunks, engine=engine
        )
        wall = time.perf_counter() - t0
        cold_s[shards] = wall
        stores[shards] = store
        engines[shards] = engine
        contents[shards] = _store_contents(store)
        if _points_doc(result) != baseline_doc:
            failures.append(f"shards={shards}: points differ from baseline")
        if result.reuse.computed != n:
            failures.append(
                f"shards={shards}: cold pass reused "
                f"{result.reuse.reused}/{n} cells (expected 0)"
            )
        print(f"[bench-shards] cold shards={shards} {wall:.2f}s")
    report["cold_s"] = {str(s): round(w, 4) for s, w in cold_s.items()}
    for shards in SHARD_COUNTS[1:]:
        if contents[shards] != contents[SHARD_COUNTS[0]]:
            failures.append(
                f"shards={shards}: store contents differ from shards=1"
            )
    if not contents[SHARD_COUNTS[0]]:
        failures.append("shards=1 store is empty after the cold pass")

    cores = _usable_cores()
    speedup = cold_s[1] / cold_s[4] if cold_s[4] else float("inf")
    report["cold_speedup_4_shards"] = round(speedup, 2)
    gate_speedup = not quick and cores >= 4
    report["speedup_gate_enforced"] = gate_speedup
    if gate_speedup and speedup < MIN_COLD_SPEEDUP:
        failures.append(
            f"cold speedup at 4 shards {speedup:.2f}x < "
            f"{MIN_COLD_SPEEDUP:.1f}x ({cores} cores)"
        )
    elif not gate_speedup:
        print(f"[bench-shards] speedup gate skipped "
              f"(quick={quick}, cores={cores}); measured {speedup:.2f}x")

    # -- 3. warm pass: memory tier only, zero pool dispatches ----------------
    engine = engines[SHARD_COUNTS[-1]]
    mem0 = _counter("engine_memcache_hits_total")
    miss0 = _counter("engine_cache_misses_total")
    t0 = time.perf_counter()
    warm = sweep.sweep(
        kernel.nest, threads=threads, chunks=chunks, engine=engine
    )
    warm_s = time.perf_counter() - t0
    mem_hits = _counter("engine_memcache_hits_total") - mem0
    dispatches = _counter("engine_cache_misses_total") - miss0
    mem_fraction = warm.reuse.mem_hits / n if n else 0.0
    report["warm_s"] = round(warm_s, 4)
    report["warm_mem_hits"] = int(mem_hits)
    report["warm_mem_fraction"] = round(mem_fraction, 4)
    report["warm_pool_dispatches"] = int(dispatches)
    print(f"[bench-shards] warm {warm_s:.3f}s  mem hits "
          f"{mem_hits:.0f}/{n}  pool dispatches {dispatches:.0f}")
    if _points_doc(warm) != baseline_doc:
        failures.append("warm pass points differ from baseline")
    if mem_fraction < MIN_WARM_MEM_FRACTION:
        failures.append(
            f"warm memory-tier fraction {mem_fraction:.0%} < "
            f"{MIN_WARM_MEM_FRACTION:.0%}"
        )
    if dispatches:
        failures.append(f"warm pass dispatched {dispatches:.0f} jobs "
                        "to the pool (expected 0)")

    # -- 4. incremental manifest: only the edited kernel recomputes ----------
    other = heat_diffusion(rows=6, cols=130)
    edited = heat_diffusion(rows=6, cols=258)  # the "edit": new digest
    manifest = Manifest()
    manifest.update("bench://other.c", other.nest.name, nest_digest(other.nest))
    manifest.update("bench://edited.c", edited.nest.name, "pre-edit-digest")
    reuse = ReuseReport()
    recomputed = []
    for path, k in (("bench://other.c", other), ("bench://edited.c", edited)):
        digest = nest_digest(k.nest)
        grid = sweep.feasible_grid(k.nest, threads, chunks)
        if manifest.unchanged(path, k.nest.name, digest):
            reuse.skip(len(grid))
            continue
        recomputed.append(path)
        result = sweep.sweep(
            k.nest, threads=threads, chunks=chunks,
            engine=Engine(jobs=1, use_cache=False),
        )
        reuse.merge(result.reuse)
    report["incremental"] = {
        "recomputed": recomputed,
        "reuse": reuse.to_dict(),
    }
    print(f"[bench-shards] incremental: recomputed {recomputed}; "
          f"{reuse.one_line()}")
    if recomputed != ["bench://edited.c"]:
        failures.append(
            f"incremental recomputed {recomputed} "
            "(expected only the edited kernel)"
        )
    if reuse.skipped_unchanged == 0 or reuse.computed == 0:
        failures.append("incremental reuse report missing skip/compute split")

    report["summary"] = {
        "identical_across_shards": all(
            "points differ" not in f and "store contents" not in f
            for f in failures
        ),
        "cold_speedup_4_shards": report["cold_speedup_4_shards"],
        "warm_mem_fraction": report["warm_mem_fraction"],
        "incremental_ok": recomputed == ["bench://edited.c"],
        "ok": not failures,
    }
    report["failures"] = failures
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[bench-shards] wrote {out}")
    if failures:
        for failure in failures:
            print(f"[bench-shards] FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid; skip the cold-scaling gate "
                             "(CI shard-smoke mode)")
    parser.add_argument("--out", default="BENCH_shards.json")
    args = parser.parse_args(argv)
    return run(args.quick, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
