"""Table V — DFT: LR-predicted vs fully-modeled FS cases (50 chunk runs)."""

from benchmarks.conftest import run_and_report


def test_table5_dft_prediction(benchmark, suite):
    def checks(res):
        for row in res.rows:
            pred_fs, model_fs = row[1], row[4]
            if model_fs:
                assert abs(pred_fs - model_fs) / model_fs < 0.2
            assert abs(row[3] - row[6]) < 8  # pred % vs model %

    run_and_report(benchmark, suite.run_table5, checks)
