"""Ablation — prediction error vs number of sampled chunk runs.

The paper fixes per-kernel sample counts (20/50/10) without exploring
the trade-off; this ablation sweeps the sample count and reports the
relative error against the full model, plus the iteration saving.
"""

from repro.analysis.report import ExperimentResult
from repro.kernels import heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor


def run_ablation() -> ExperimentResult:
    machine = paper_machine()
    model = FalseSharingModel(machine)
    k = heat_diffusion(rows=6, cols=1026)
    full = model.analyze(k.nest, 4, chunk=k.fs_chunk)
    res = ExperimentResult(
        "Ablation LR runs",
        "heat: prediction error vs sampled chunk runs (T=4)",
        ("chunk runs", "predicted FS", "full-model FS", "rel. error %",
         "iterations evaluated"),
    )
    for n_runs in (2, 5, 10, 20, 40):
        pred = FalseSharingPredictor(model, n_runs=n_runs).predict(
            k.nest, 4, chunk=k.fs_chunk
        )
        err = (
            abs(pred.predicted_fs_cases - full.fs_cases) / full.fs_cases * 100
            if full.fs_cases else 0.0
        )
        res.add_row(
            n_runs,
            int(pred.predicted_fs_cases),
            full.fs_cases,
            round(err, 2),
            pred.prefix_result.steps_evaluated,
        )
    return res


def test_ablation_lr_sample_count(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    errors = result.column("rel. error %")
    runs = result.column("chunk runs")
    # The first chunk runs include cold warm-up, so very small samples
    # underestimate slightly; error falls monotonically with the sample
    # and is in the few-percent band from ~10 runs (the paper's smallest
    # published sample count).
    assert errors[-1] < errors[0]
    assert all(e < 20 for e in errors)
    assert all(e < 5 for e, n in zip(errors, runs) if n >= 10)
