"""Ablation — the paper's closed-form fit vs standard joint OLS.

Section III-E prints an unusual least-squares derivation: a
through-origin slope (``a = Σxy/Σx²``) with a mean-residual intercept.
This ablation compares it against textbook joint OLS on the actual
chunk-run series of all three kernels — both must predict the full
model's count, and on (near-)linear series they should agree closely,
which is why the paper's simpler form is adequate.
"""

from repro.analysis.report import ExperimentResult
from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor

THREADS = 4

KERNELS = {
    "heat": heat_diffusion(rows=6, cols=1026),
    "dft": dft(samples=4, freqs=768),
    "linreg": linear_regression(THREADS, tasks=96, total_points=480),
}


def run_ablation() -> ExperimentResult:
    machine = paper_machine()
    model = FalseSharingModel(machine)
    res = ExperimentResult(
        "Ablation fit method",
        f"paper closed-form fit vs joint OLS (T={THREADS}, FS chunk)",
        ("kernel", "full model", "paper fit", "OLS fit",
         "paper err %", "OLS err %"),
    )
    for name, k in KERNELS.items():
        full = model.analyze(k.nest, THREADS, chunk=k.fs_chunk).fs_cases
        preds = {}
        for method in ("paper", "ols"):
            p = FalseSharingPredictor(
                model, n_runs=k.pred_chunk_runs, method=method
            ).predict(k.nest, THREADS, chunk=k.fs_chunk)
            preds[method] = p.predicted_fs_cases
        err = {
            m: 100.0 * abs(v - full) / full if full else 0.0
            for m, v in preds.items()
        }
        res.add_row(
            name, full, int(preds["paper"]), int(preds["ols"]),
            round(err["paper"], 2), round(err["ols"], 2),
        )
    return res


def test_ablation_fit_method(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    for row in result.rows:
        _, full, paper_pred, ols_pred, paper_err, ols_err = row
        # Both fitting rules predict the full model closely (DFT's prefix
        # includes cold-start cycles that drag the slope ~10% low — the
        # same underestimate visible in Table V of EXPERIMENTS.md)…
        assert paper_err < 12.0 and ols_err < 12.0
        # …and agree with each other (the paper's simpler form suffices).
        assert abs(paper_pred - ols_pred) <= max(0.05 * full, 16)
