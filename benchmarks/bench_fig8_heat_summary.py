"""Fig. 8 — heat: measured vs modeled vs predicted FS% across threads.

Paper claim: the three series coincide for the innermost-parallel heat
kernel.
"""

from benchmarks.conftest import run_and_report


def test_fig8_heat_summary(benchmark, suite):
    def checks(res):
        for T, measured, modeled, predicted in res.rows:
            assert abs(modeled - predicted) < 6, (
                f"model and prediction must agree at T={T}"
            )
            assert abs(measured - modeled) < 20

    run_and_report(benchmark, suite.run_fig8, checks)
