"""Fig. 6 — FS cases grow linearly with chunk runs.

Paper claim: the cumulative FS count is linear in the chunk-run index,
which is what justifies the linear-regression prediction model.
"""

import numpy as np

from benchmarks.conftest import run_and_report
from repro.model import ols_fit


def test_fig6_linearity(benchmark, suite):
    def checks(res):
        y = np.asarray(res.column("cumulative FS cases"), dtype=float)
        x = np.arange(1, len(y) + 1, dtype=float)
        fit = ols_fit(x, y)
        assert fit.r2 > 0.99, f"series must be linear, got R^2={fit.r2}"
        assert fit.a > 0

    run_and_report(benchmark, suite.run_fig6, checks)
