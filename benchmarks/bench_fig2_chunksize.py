"""Fig. 2 — linear regression execution time vs chunk size.

Paper claim: time falls as the chunk grows from 1 upward (the authors
report up to ~30% by chunk 30), then flattens.
"""

from benchmarks.conftest import run_and_report


def test_fig2_chunk_size_sweep(benchmark, suite):
    def checks(res):
        times = res.column("time (ms)")
        chunks = res.column("chunk")
        assert times[-1] < times[0], "larger chunks must beat chunk=1"
        # Flattening: the last halving of the sweep changes time far less
        # than the first step away from chunk=1.
        first_gain = times[0] - times[1]
        tail_gain = abs(times[-2] - times[-1])
        assert tail_gain < first_gain
        assert chunks[0] == 1

    run_and_report(benchmark, suite.run_fig2, checks)
