"""Engine-tier FS-simulation benchmark (``make bench-model``).

Measures every detector engine tier against the scalar reference and
writes the numbers to a JSON report (default ``BENCH_model.json``):

1. **micro** — raw detector throughput (accesses/s) on a pre-generated
   lockstep block: reference vs fast vs jit (target ≥10× for fast);
2. **tables** — wall time of representative paper configurations
   (Table 1/2 style heat/DFT points) per tier, asserting the counters
   stay bit-identical — including the small-trace crossover configs
   that must *not* regress below 1×;
3. **large-grid** — end-to-end model wall time on grids whose working
   set far exceeds the modeled private cache, where the exact
   steady-state early exit extrapolates most chunk runs (target ≥50×
   for the fast tier; the jit tier targets ≥5× over fast, and
   ``--sim-jobs`` adds segment parallelism, both on capable boxes).

Every report row records ``engine`` (resolved), ``sim_jobs`` and
``jit_compile_s``, so the perf trajectory distinguishes tiers.  Every
comparison re-checks result identity — the report is as much a
correctness gate as a speed gate; in ``--quick`` mode (CI) only
equivalence is asserted for the jit/parallel tiers.

Run:  PYTHONPATH=src python benchmarks/bench_model_fastpath.py
      PYTHONPATH=src python benchmarks/bench_model_fastpath.py --quick
      PYTHONPATH=src python benchmarks/bench_model_fastpath.py \
          --engine jit --sim-jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.kernels import dft, heat_diffusion
from repro.machine import paper_machine
from repro.model import (
    AUTO_REFERENCE_MAX_ACCESSES,
    FalseSharingModel,
    FSDetector,
    FastFSDetector,
    JitFSDetector,
    jit_available,
)
from repro.model.jitdetect import jit_compile_seconds, warmup_jit


def _micro(rounds: int) -> dict:
    """Detector-core throughput on one synthetic lockstep block."""
    rng = np.random.default_rng(7)
    steps, refs, threads = 2000, 6, 4
    lines = [
        rng.integers(0, 256, size=(steps, refs)).astype(np.int64)
        for _ in range(threads)
    ]
    writes = np.array([False, False, False, False, True, True])
    accesses = steps * refs * threads

    def best_of(cls) -> tuple[float, int]:
        best, fs = float("inf"), -1
        for _ in range(rounds):
            d = cls(threads, 8192)
            t0 = time.perf_counter()
            d.process_block(lines, writes)
            best = min(best, time.perf_counter() - t0)
            fs = d.stats.fs_cases
        return best, fs

    ref_s, ref_fs = best_of(FSDetector)
    fast_s, fast_fs = best_of(FastFSDetector)
    assert ref_fs == fast_fs, "engines disagree on the micro block"
    out = {
        "accesses": accesses,
        "reference_s": round(ref_s, 6),
        "fast_s": round(fast_s, 6),
        "reference_macc_per_s": round(accesses / ref_s / 1e6, 2),
        "fast_macc_per_s": round(accesses / fast_s / 1e6, 2),
        "speedup": round(ref_s / fast_s, 1),
    }
    if jit_available():
        warmup_jit()  # compile outside the timed region
        jit_s, jit_fs = best_of(JitFSDetector)
        assert ref_fs == jit_fs, "jit disagrees on the micro block"
        out["jit_s"] = round(jit_s, 6)
        out["jit_macc_per_s"] = round(accesses / jit_s / 1e6, 2)
        out["jit_speedup"] = round(ref_s / jit_s, 1)
        out["jit_compile_s"] = round(jit_compile_seconds() or 0.0, 3)
    return out


def _identical(a, b) -> bool:
    sa, sb = a.stats, b.stats
    return (
        (a.fs_cases, a.fs_read_cases, a.fs_write_cases, a.accesses,
         sa.misses, sa.invalidations, sa.downgrades, sa.evictions, sa.steps)
        == (b.fs_cases, b.fs_read_cases, b.fs_write_cases, b.accesses,
            sb.misses, sb.invalidations, sb.downgrades, sb.evictions,
            sb.steps)
        and dict(sa.fs_by_line) == dict(sb.fs_by_line)
        and dict(sa.fs_by_pair) == dict(sb.fs_by_pair)
    )


def _tiers(requested: str, sim_jobs: int) -> list[tuple[str, str, int]]:
    """(label, engine knob, sim_jobs) per measured tier, in order.

    The reference baseline is always measured separately; ``all``
    compares every tier this installation can run.  A requested "jit"
    without numba still runs (it resolves to fast — the guarded-import
    contract) and the row records the resolved engine.
    """
    tiers: list[tuple[str, str, int]] = []
    if requested in ("all", "auto"):
        tiers.append(("auto", "auto", 1))
    if requested in ("all", "fast"):
        tiers.append(("fast", "fast", 1))
    if requested in ("all", "jit") and (requested == "jit" or jit_available()):
        tiers.append(("jit", "jit", 1))
    if sim_jobs > 1:
        top = tiers[-1][1] if tiers else "auto"
        tiers.append((f"{top}+sim{sim_jobs}", top, sim_jobs))
    return tiers


def _compare(machine, kernel, threads, chunk, tiers) -> list[dict]:
    """Reference (no early exit) vs each optimized tier; all identical."""
    ref = FalseSharingModel(machine, engine="reference", steady_state=False)
    t0 = time.perf_counter()
    r_ref = ref.analyze(kernel.nest, threads, chunk=chunk)
    ref_s = time.perf_counter() - t0

    rows = []
    for label, engine, sim_jobs in tiers:
        model = FalseSharingModel(
            machine, engine=engine, steady_state=True, sim_jobs=sim_jobs
        )
        t0 = time.perf_counter()
        r = model.analyze(kernel.nest, threads, chunk=chunk)
        opt_s = time.perf_counter() - t0
        assert _identical(r_ref, r), (
            f"{kernel.nest.name} tier {label}: results diverged"
        )
        rows.append({
            "kernel": kernel.nest.name,
            "threads": threads,
            "chunk": chunk,
            "tier": label,
            "engine": r.engine,
            "sim_jobs": sim_jobs,
            "jit_compile_s": round(jit_compile_seconds() or 0.0, 3),
            "fs_cases": r.fs_cases,
            "accesses": r.accesses,
            "reference_s": round(ref_s, 3),
            "optimized_s": round(opt_s, 3),
            "speedup": round(ref_s / opt_s, 1) if opt_s > 0 else float("inf"),
            "runs_extrapolated": r.runs_extrapolated,
            "total_chunk_runs": r.total_chunk_runs,
            "fidelity": r.fidelity,
            "identical": True,
        })
    return rows


def _print_rows(rows: list[dict]) -> None:
    for row in rows:
        print(f"[bench-model]   {row['kernel']:<18} {row['tier']:<10} "
              f"ref {row['reference_s']:7.2f}s "
              f"opt {row['optimized_s']:6.2f}s  {row['speedup']:6.1f}x  "
              f"engine={row['engine']} "
              f"ext {row['runs_extrapolated']}/{row['total_chunk_runs']}")


def _speedup_table(report: dict) -> list[str]:
    """Per-tier speedup summary over every modeled configuration."""
    lines = [f"{'kernel':<18} {'tier':<10} {'engine':<9} "
             f"{'sim_jobs':>8} {'speedup':>8}"]
    for section in ("tables", "large_grid"):
        for row in report.get(section, []):
            lines.append(
                f"{row['kernel']:<18} {row['tier']:<10} "
                f"{row['engine']:<9} {row['sim_jobs']:>8} "
                f"{row['speedup']:>7.1f}x"
            )
    return lines


def run(out: str, quick: bool, engine: str, sim_jobs: int) -> int:
    machine = paper_machine()
    tiers = _tiers(engine, sim_jobs)
    report: dict = {
        "quick": quick,
        "engine_arg": engine,
        "sim_jobs": sim_jobs,
        "jit_available": jit_available(),
        "cpu_count": os.cpu_count() or 1,
    }

    print("[bench-model] micro: detector block throughput")
    report["micro"] = micro = _micro(rounds=3 if quick else 5)
    line = (f"[bench-model]   reference {micro['reference_macc_per_s']:.2f} "
            f"Macc/s  fast {micro['fast_macc_per_s']:.2f} Macc/s  "
            f"speedup {micro['speedup']}x")
    if "jit_speedup" in micro:
        line += (f"  jit {micro['jit_macc_per_s']:.2f} Macc/s "
                 f"({micro['jit_speedup']}x, "
                 f"compile {micro['jit_compile_s']}s)")
    print(line)

    print("[bench-model] tables: paper-style configurations")
    table_cfgs = [
        (heat_diffusion(rows=6, cols=1026), 8, 1),
        (dft(samples=4, freqs=768), 8, 1),
        # The 0.8× regression config: a tiny table trace (1.5k accesses,
        # below AUTO_REFERENCE_MAX_ACCESSES) that must ride the
        # auto→reference crossover instead of paying vectorization.
        (heat_diffusion(rows=4, cols=130), 8, 1),
    ]
    report["tables"] = []
    for kernel, threads, chunk in table_cfgs:
        rows = _compare(machine, kernel, threads, chunk, tiers)
        report["tables"].extend(rows)
        _print_rows(rows)

    if quick:
        large_cfgs = [
            (heat_diffusion(rows=3, cols=131074), 8, 1),
            (dft(samples=2, freqs=131072), 8, 1),
        ]
    else:
        large_cfgs = [
            (heat_diffusion(rows=3, cols=2097154), 8, 1),
            (dft(samples=4, freqs=1310720), 8, 1),
        ]
    print("[bench-model] large-grid: steady-state end-to-end")
    report["large_grid"] = []
    for kernel, threads, chunk in large_cfgs:
        rows = _compare(machine, kernel, threads, chunk, tiers)
        report["large_grid"].extend(rows)
        _print_rows(rows)

    print("[bench-model] per-tier speedup table")
    for line in _speedup_table(report):
        print(f"[bench-model]   {line}")

    large = report["large_grid"]
    fast_large = [r for r in large if r["engine"] == "fast"
                  and r["sim_jobs"] == 1]
    jit_large = [r for r in large if r["engine"] == "jit"
                 and r["sim_jobs"] == 1]
    auto_large = [r for r in large if r["tier"] == "auto"]
    crossover_rows = [r for r in report["tables"]
                      if r["tier"] == "auto"
                      and r["accesses"] < AUTO_REFERENCE_MAX_ACCESSES]

    micro_ok = micro["speedup"] >= (5.0 if quick else 10.0)
    steady_ok = all(r["runs_extrapolated"] > 0 for r in large)
    e2e_rows = fast_large or auto_large or large
    e2e_ok = quick or all(r["speedup"] >= 50.0 for r in e2e_rows)
    # Tiny-trace crossover (the old 0.8× regression): sub-crossover
    # "auto" rows must route to the scalar reference.  The gate is on
    # routing, not wall time — these configs finish in single-digit
    # milliseconds, where single-shot ratios are timer noise.
    crossover_ok = all(r["engine"] == "reference" for r in crossover_rows)
    # The jit tier's ≥5×-over-fast gate needs numba, a multi-core box
    # and full-size grids; otherwise equivalence (asserted above) is
    # the contract.
    jit_gate_applies = (
        bool(jit_large) and bool(fast_large) and not quick
        and (os.cpu_count() or 1) >= 4
    )
    jit_ok = True
    if jit_gate_applies:
        jit_vs_fast = [
            f["optimized_s"] / j["optimized_s"]
            for f, j in zip(fast_large, jit_large)
            if j["optimized_s"] > 0
        ]
        jit_ok = all(x >= 5.0 for x in jit_vs_fast)
        report["jit_vs_fast_speedups"] = [round(x, 1) for x in jit_vs_fast]

    report["summary"] = {
        "micro_speedup": micro["speedup"],
        "large_grid_speedups": [r["speedup"] for r in large],
        "all_identical": True,  # every _compare above asserted it
        "micro_target_met": micro_ok,
        "steady_state_fired": steady_ok,
        "large_grid_target_met": e2e_ok,
        "crossover_no_regression": crossover_ok,
        "jit_gate_applies": jit_gate_applies,
        "jit_target_met": jit_ok,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[bench-model] wrote {out}")
    if not (micro_ok and steady_ok and e2e_ok and crossover_ok and jit_ok):
        print("[bench-model] FAILED: performance targets not met "
              f"(micro_ok={micro_ok}, steady_ok={steady_ok}, "
              f"e2e_ok={e2e_ok}, crossover_ok={crossover_ok}, "
              f"jit_ok={jit_ok})", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_model.json")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grids (seconds; equivalence-only "
                             "for the jit/parallel tiers)")
    parser.add_argument("--engine", default="all",
                        choices=("all", "auto", "fast", "jit"),
                        help="which optimized tier(s) to measure "
                             "(default all available)")
    parser.add_argument("--sim-jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="segment-parallel workers for the parallel "
                             "tier (default min(4, cores); 1 disables)")
    args = parser.parse_args(argv)
    return run(args.out, args.quick, args.engine, args.sim_jobs)


if __name__ == "__main__":
    raise SystemExit(main())
