"""Fast-path FS-simulation benchmark (``make bench-model``).

Measures the two tentpole optimizations against the scalar reference
detector and writes the numbers to a JSON report (default
``BENCH_model.json``):

1. **micro** — raw detector throughput (accesses/s) on a pre-generated
   lockstep block: reference vs vectorized engine (target ≥10×);
2. **tables** — wall time of representative paper configurations
   (Table 1/2 style heat/DFT points) under both engines, asserting the
   counters stay bit-identical;
3. **large-grid** — end-to-end model wall time on grids whose working
   set far exceeds the modeled private cache, where the exact
   steady-state early exit extrapolates most chunk runs (target ≥50×
   vs the reference engine with the exit disabled).

Every comparison re-checks result identity — the report is as much a
correctness gate as a speed gate.

Run:  PYTHONPATH=src python benchmarks/bench_model_fastpath.py
      PYTHONPATH=src python benchmarks/bench_model_fastpath.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.kernels import dft, heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FSDetector, FastFSDetector


def _micro(rounds: int) -> dict:
    """Detector-core throughput on one synthetic lockstep block."""
    rng = np.random.default_rng(7)
    steps, refs, threads = 2000, 6, 4
    lines = [
        rng.integers(0, 256, size=(steps, refs)).astype(np.int64)
        for _ in range(threads)
    ]
    writes = np.array([False, False, False, False, True, True])
    accesses = steps * refs * threads

    def best_of(cls) -> tuple[float, int]:
        best, fs = float("inf"), -1
        for _ in range(rounds):
            d = cls(threads, 8192)
            t0 = time.perf_counter()
            d.process_block(lines, writes)
            best = min(best, time.perf_counter() - t0)
            fs = d.stats.fs_cases
        return best, fs

    ref_s, ref_fs = best_of(FSDetector)
    fast_s, fast_fs = best_of(FastFSDetector)
    assert ref_fs == fast_fs, "engines disagree on the micro block"
    return {
        "accesses": accesses,
        "reference_s": round(ref_s, 6),
        "fast_s": round(fast_s, 6),
        "reference_macc_per_s": round(accesses / ref_s / 1e6, 2),
        "fast_macc_per_s": round(accesses / fast_s / 1e6, 2),
        "speedup": round(ref_s / fast_s, 1),
    }


def _identical(a, b) -> bool:
    sa, sb = a.stats, b.stats
    return (
        (a.fs_cases, a.fs_read_cases, a.fs_write_cases, a.accesses,
         sa.misses, sa.invalidations, sa.downgrades, sa.evictions, sa.steps)
        == (b.fs_cases, b.fs_read_cases, b.fs_write_cases, b.accesses,
            sb.misses, sb.invalidations, sb.downgrades, sb.evictions,
            sb.steps)
        and dict(sa.fs_by_line) == dict(sb.fs_by_line)
        and dict(sa.fs_by_pair) == dict(sb.fs_by_pair)
    )


def _compare(machine, kernel, threads, chunk) -> dict:
    """Reference (no early exit) vs optimized (auto + steady state)."""
    opt = FalseSharingModel(machine, engine="auto", steady_state=True)
    t0 = time.perf_counter()
    r_opt = opt.analyze(kernel.nest, threads, chunk=chunk)
    opt_s = time.perf_counter() - t0

    ref = FalseSharingModel(machine, engine="reference", steady_state=False)
    t0 = time.perf_counter()
    r_ref = ref.analyze(kernel.nest, threads, chunk=chunk)
    ref_s = time.perf_counter() - t0

    assert _identical(r_ref, r_opt), f"{kernel.nest.name}: results diverged"
    return {
        "kernel": kernel.nest.name,
        "threads": threads,
        "chunk": chunk,
        "fs_cases": r_opt.fs_cases,
        "accesses": r_opt.accesses,
        "reference_s": round(ref_s, 3),
        "optimized_s": round(opt_s, 3),
        "speedup": round(ref_s / opt_s, 1),
        "runs_extrapolated": r_opt.runs_extrapolated,
        "total_chunk_runs": r_opt.total_chunk_runs,
        "fidelity": r_opt.fidelity,
        "identical": True,
    }


def run(out: str, quick: bool) -> int:
    machine = paper_machine()
    report: dict = {"quick": quick}

    print("[bench-model] micro: detector block throughput")
    report["micro"] = micro = _micro(rounds=3 if quick else 5)
    print(f"[bench-model]   reference {micro['reference_macc_per_s']:.2f} "
          f"Macc/s  fast {micro['fast_macc_per_s']:.2f} Macc/s  "
          f"speedup {micro['speedup']}x")

    print("[bench-model] tables: paper-style configurations")
    table_cfgs = [
        (heat_diffusion(rows=6, cols=1026), 8, 1),
        (dft(samples=4, freqs=768), 8, 1),
    ]
    report["tables"] = []
    for kernel, threads, chunk in table_cfgs:
        row = _compare(machine, kernel, threads, chunk)
        report["tables"].append(row)
        print(f"[bench-model]   {row['kernel']:<18} ref {row['reference_s']:7.2f}s "
              f"opt {row['optimized_s']:6.2f}s  {row['speedup']:5.1f}x  "
              f"ext {row['runs_extrapolated']}/{row['total_chunk_runs']}")

    if quick:
        large_cfgs = [
            (heat_diffusion(rows=3, cols=131074), 8, 1),
            (dft(samples=2, freqs=131072), 8, 1),
        ]
    else:
        large_cfgs = [
            (heat_diffusion(rows=3, cols=2097154), 8, 1),
            (dft(samples=4, freqs=1310720), 8, 1),
        ]
    print("[bench-model] large-grid: steady-state end-to-end")
    report["large_grid"] = []
    for kernel, threads, chunk in large_cfgs:
        row = _compare(machine, kernel, threads, chunk)
        report["large_grid"].append(row)
        print(f"[bench-model]   {row['kernel']:<18} ref {row['reference_s']:7.2f}s "
              f"opt {row['optimized_s']:6.2f}s  {row['speedup']:5.1f}x  "
              f"ext {row['runs_extrapolated']}/{row['total_chunk_runs']}")

    micro_ok = micro["speedup"] >= (5.0 if quick else 10.0)
    steady_ok = all(r["runs_extrapolated"] > 0 for r in report["large_grid"])
    e2e_ok = quick or all(r["speedup"] >= 50.0 for r in report["large_grid"])
    report["summary"] = {
        "micro_speedup": micro["speedup"],
        "large_grid_speedups": [r["speedup"] for r in report["large_grid"]],
        "all_identical": True,  # every _compare above asserted it
        "micro_target_met": micro_ok,
        "steady_state_fired": steady_ok,
        "large_grid_target_met": e2e_ok,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[bench-model] wrote {out}")
    if not (micro_ok and steady_ok and e2e_ok):
        print("[bench-model] FAILED: performance targets not met "
              f"(micro_ok={micro_ok}, steady_ok={steady_ok}, "
              f"e2e_ok={e2e_ok})", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_model.json")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized grids (seconds, looser targets)")
    args = parser.parse_args(argv)
    return run(args.out, args.quick)


if __name__ == "__main__":
    raise SystemExit(main())
