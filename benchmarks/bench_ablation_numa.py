"""Ablation — thread placement on a multi-socket machine.

The paper's testbed is 4 × 12 cores but its model treats all coherence
uniformly.  This ablation adds the cross-socket penalty and compares the
two standard OpenMP pinning policies under a chunk=1 schedule:

* ``contiguous`` (compact): adjacent thread ids share a socket, so the
  neighbour conflicts chunk=1 creates stay on the fast path;
* ``scatter``: adjacent ids sit on different sockets — every chunk=1
  conflict pays the cross-socket fee.

Both the NUMA-aware model term and the simulator must agree on the
ordering (scatter strictly worse for chunk=1 FS kernels).
"""

import dataclasses

from repro.analysis.report import ExperimentResult
from repro.kernels import heat_diffusion
from repro.machine import CoherenceCosts, paper_machine
from repro.model import FalseSharingModel
from repro.sim import MulticoreSimulator

THREADS = 8
CROSS_FACTOR = 2.5


def numa_machine():
    base = paper_machine()
    return dataclasses.replace(
        base,
        cores_per_socket=4,  # 2 sockets for the 8 simulated threads
        coherence=dataclasses.replace(
            base.coherence, cross_socket_factor=CROSS_FACTOR
        ),
    )


def run_ablation():
    machine = numa_machine()
    model = FalseSharingModel(machine)
    k = heat_diffusion(rows=6, cols=1026)
    res = ExperimentResult(
        "Ablation NUMA",
        f"heat chunk=1, T={THREADS}: thread placement vs FS cost "
        f"(cross-socket x{CROSS_FACTOR})",
        ("placement", "sim CPU kcycles", "model FS cycles (k)"),
    )
    r = model.analyze(k.nest, THREADS, chunk=1)
    sims = {}
    for placement in ("contiguous", "scatter"):
        sim = MulticoreSimulator(machine, thread_placement=placement)
        s = sim.run(k.nest, THREADS, chunk=1)
        sims[placement] = s
        res.add_row(
            placement,
            float(s.per_thread_cycles.sum()) / 1e3,
            r.fs_cycles_numa(machine, placement) / 1e3,
        )
    return res, r, sims, machine


def test_ablation_numa_placement(benchmark):
    res, r, sims, machine = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(res.to_text())

    by = {row[0]: row for row in res.rows}
    # Scatter pays the cross-socket fee on every chunk=1 conflict — both
    # the simulator's aggregate CPU time and the NUMA model term must
    # rank it strictly worse.  (Wall time is a max over threads and can
    # tie: under contiguous placement the socket-boundary thread pays
    # cross-socket on all its conflicts, matching scatter's per-thread
    # cost — total CPU time is the honest observable here.)
    assert by["scatter"][1] > by["contiguous"][1]
    assert by["scatter"][2] > by["contiguous"][2]
    # With factor 1.0 the NUMA term degenerates to the flat conversion.
    flat = dataclasses.replace(
        machine,
        coherence=dataclasses.replace(machine.coherence, cross_socket_factor=1.0),
    )
    assert r.fs_cycles_numa(flat, "scatter") == r.fs_cycles(flat)
