"""Fig. 9 — DFT: measured vs modeled vs predicted FS% across threads.

Paper claim: the three series coincide for the innermost-parallel DFT
kernel.
"""

from benchmarks.conftest import run_and_report


def test_fig9_dft_summary(benchmark, suite):
    def checks(res):
        for T, measured, modeled, predicted in res.rows:
            assert abs(modeled - predicted) < 6
            assert abs(measured - modeled) < 12

    run_and_report(benchmark, suite.run_fig9, checks)
