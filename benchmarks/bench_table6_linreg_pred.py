"""Table VI — linear regression: LR-predicted vs modeled FS cases.

Paper claim: prediction from 10 chunk runs matches the full model, and
both decline with the thread count (total work is M/num_threads).
"""

from benchmarks.conftest import run_and_report


def test_table6_linreg_prediction(benchmark, suite):
    def checks(res):
        model_fs = [row[4] for row in res.rows]
        assert model_fs[-1] < model_fs[0], "FS cases decline with threads"
        for row in res.rows:
            pred, model = row[1], row[4]
            if model:
                assert abs(pred - model) / model < 0.25

    run_and_report(benchmark, suite.run_table6, checks)
