"""Baseline — compile-time model vs runtime (trace-based) detection.

The paper's positioning (Sections I/V): runtime detectors must observe
every access of an execution, while the compile-time model "does not
cause any performance degradation in program execution" and, with the
LR predictor, evaluates only a prefix of iterations.  This bench runs
both on the same kernels and reports (a) agreement on the diagnosis and
(b) the work each had to do.
"""

from repro.analysis.report import ExperimentResult
from repro.baselines import RuntimeFSDetector
from repro.kernels import heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor

THREADS = 4


def run_comparison() -> ExperimentResult:
    machine = paper_machine()
    model = FalseSharingModel(machine)
    runtime = RuntimeFSDetector(machine)
    res = ExperimentResult(
        "Baseline runtime",
        f"compile-time model vs trace-based detection (T={THREADS}, FS chunk)",
        ("kernel", "runtime FS events", "model FS cases",
         "predictor FS cases", "runtime accesses", "predictor accesses"),
    )
    for name, k in (
        ("heat", heat_diffusion(rows=6, cols=1026)),
        ("linreg", linear_regression(THREADS, tasks=96, total_points=480)),
    ):
        rt = runtime.run(k.nest, THREADS, chunk=k.fs_chunk)
        m = model.analyze(k.nest, THREADS, chunk=k.fs_chunk)
        pred = FalseSharingPredictor(model, n_runs=k.pred_chunk_runs).predict(
            k.nest, THREADS, chunk=k.fs_chunk
        )
        res.add_row(
            name,
            rt.stats.false_sharing_events,
            m.fs_cases,
            int(pred.predicted_fs_cases),
            rt.stats.accesses,
            pred.prefix_result.accesses,
        )
    return res


def test_baseline_runtime_comparison(benchmark):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(result.to_text())
    for row in result.rows:
        _, rt_events, model_cases, pred_cases, rt_accesses, pred_accesses = row
        # Same diagnosis: both see substantial FS, within a small factor.
        assert rt_events > 0 and model_cases > 0
        assert 0.3 < rt_events / model_cases < 3.0
        # The predictor examines a strict subset of what the trace tool
        # must process (that is the compile-time pitch).
        assert pred_accesses < rt_accesses
        # And the prediction still matches the full model.
        assert abs(pred_cases - model_cases) / model_cases < 0.2
