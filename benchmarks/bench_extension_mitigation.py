"""Extension — model-guided mitigation, validated against the simulator.

The paper's future work: use the model to *eliminate* FS.  Two passes:

* the chunk-size optimizer must recommend a chunk whose *simulated*
  time is within a few percent of the simulated optimum over the same
  candidate set;
* the padding advisor's rewritten linreg nest must simulate
  substantially faster than the original at chunk=1.
"""

from repro.analysis.report import ExperimentResult
from repro.kernels import build_linreg_nest, linear_regression
from repro.machine import paper_machine
from repro.sim import MulticoreSimulator
from repro.transform import ChunkSizeOptimizer, PaddingAdvisor

CANDIDATES = (1, 2, 4, 8, 16)
THREADS = 4


def run_extension() -> tuple[ExperimentResult, ExperimentResult]:
    machine = paper_machine()
    sim = MulticoreSimulator(machine)

    # -- chunk optimizer vs simulated optimum --------------------------------
    k = linear_regression(THREADS, tasks=96, total_points=480)
    opt = ChunkSizeOptimizer(machine, use_predictor=False)
    rec = opt.recommend(k.nest, THREADS, candidates=CANDIDATES)
    chunk_res = ExperimentResult(
        "Extension chunk-opt",
        f"linreg: simulated time per candidate chunk (T={THREADS})",
        ("chunk", "sim time (ms)", "model cost (Mcycles)", "recommended"),
    )
    sim_times = {}
    for score in rec.scores:
        t = sim.run(k.nest, THREADS, chunk=score.chunk).seconds * 1e3
        sim_times[score.chunk] = t
        chunk_res.add_row(
            score.chunk, t, score.total_cycles / 1e6,
            "yes" if score.chunk == rec.best_chunk else "",
        )

    # -- padding advisor validated by the simulator ---------------------------
    nest = build_linreg_nest(tasks=96, ppt=120)
    advice = PaddingAdvisor(machine).advise(nest, THREADS)[0]
    before = sim.run(nest, THREADS, chunk=1)
    after = sim.run(advice.nest_after, THREADS, chunk=1)
    pad_res = ExperimentResult(
        "Extension padding",
        f"linreg: simulated effect of struct padding (T={THREADS}, chunk=1)",
        ("variant", "sim time (ms)", "coherence events", "model FS cases"),
    )
    pad_res.add_row("original (48 B elements)", before.seconds * 1e3,
                    before.counters.coherence_events, advice.fs_before)
    pad_res.add_row(f"padded ({advice.padded_bytes} B elements)",
                    after.seconds * 1e3,
                    after.counters.coherence_events, advice.fs_after)
    return chunk_res, pad_res, rec, sim_times, before, after


def test_extension_mitigation(benchmark):
    chunk_res, pad_res, rec, sim_times, before, after = benchmark.pedantic(
        run_extension, rounds=1, iterations=1
    )
    print()
    print(chunk_res.to_text())
    print()
    print(pad_res.to_text())

    # Chunk recommendation lands near the simulated optimum.
    best_sim = min(sim_times.values())
    assert sim_times[rec.best_chunk] <= best_sim * 1.05

    # Padding removes (nearly) all coherence traffic and speeds the loop up.
    assert after.counters.coherence_events < before.counters.coherence_events * 0.05
    assert after.cycles < before.cycles
