"""Micro-benchmarks — raw throughput of the model's hot paths.

These are conventional pytest-benchmark timings (multiple rounds) of
the components the whole evaluation leans on: the φ/mask detector, the
ownership-list generator and the end-to-end model, reported in
accesses/iterations per second.
"""

import numpy as np

from repro.kernels import heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FastFSDetector, FSDetector
from repro.model.ownership import OwnershipListGenerator


def _detector_block():
    rng = np.random.default_rng(7)
    steps, refs, threads = 2000, 6, 4
    lines = [
        rng.integers(0, 256, size=(steps, refs)).astype(np.int64)
        for _ in range(threads)
    ]
    writes = np.array([False, False, False, False, True, True])
    return lines, writes, steps * refs * threads, threads


def test_detector_throughput(benchmark):
    """φ/mask detection on a pre-generated 4-thread block (reference)."""
    lines, writes, accesses, threads = _detector_block()

    def run():
        d = FSDetector(threads, 8192)
        d.process_block(lines, writes)
        return d.stats.fs_cases

    fs = benchmark(run)
    assert fs >= 0
    benchmark.extra_info["accesses_per_round"] = accesses


def test_fast_detector_throughput(benchmark):
    """Same block through the vectorized engine (docs/PERFORMANCE.md);
    results are bit-identical, throughput is the point."""
    lines, writes, accesses, threads = _detector_block()
    ref = FSDetector(threads, 8192)
    ref.process_block(lines, writes)

    def run():
        d = FastFSDetector(threads, 8192)
        d.process_block(lines, writes)
        return d.stats.fs_cases

    fs = benchmark(run)
    assert fs == ref.stats.fs_cases
    benchmark.extra_info["accesses_per_round"] = accesses


def test_ownership_generation_throughput(benchmark):
    """Vectorized line-id generation for the heat kernel."""
    k = heat_diffusion(rows=6, cols=1026)

    def run():
        gen = OwnershipListGenerator(k.nest, 4, line_size=64)
        total = 0
        for block in gen.blocks():
            total += sum(mat.size for mat in block.lines)
        return total

    total = benchmark(run)
    assert total > 0
    benchmark.extra_info["line_ids_per_round"] = total


def test_end_to_end_model_throughput(benchmark):
    """Full Section III pipeline on the tiny heat kernel."""
    machine = paper_machine()
    model = FalseSharingModel(machine)
    k = heat_diffusion(rows=6, cols=1026)

    def run():
        return model.analyze(k.nest, 4, chunk=1).fs_cases

    fs = benchmark(run)
    assert fs > 0


def test_end_to_end_reference_engine_throughput(benchmark):
    """Same pipeline pinned to the scalar reference detector with the
    steady-state exit off — the before-optimization baseline."""
    machine = paper_machine()
    model = FalseSharingModel(machine, engine="reference",
                              steady_state=False)
    k = heat_diffusion(rows=6, cols=1026)

    def run():
        return model.analyze(k.nest, 4, chunk=1).fs_cases

    fs = benchmark(run)
    assert fs > 0


def test_end_to_end_steady_state_throughput(benchmark):
    """Streaming-regime grid where the exact steady-state early exit
    extrapolates most chunk runs."""
    machine = paper_machine()
    model = FalseSharingModel(machine)
    k = heat_diffusion(rows=3, cols=65538)
    warm = model.analyze(k.nest, 8, chunk=1)
    assert warm.runs_extrapolated > 0  # the mechanism must fire here

    def run():
        return model.analyze(k.nest, 8, chunk=1).fs_cases

    fs = benchmark(run)
    assert fs == warm.fs_cases


def test_simulator_throughput(benchmark):
    """Full MESI simulation of the tiny heat kernel."""
    from repro.sim import MulticoreSimulator

    machine = paper_machine()
    sim = MulticoreSimulator(machine)
    k = heat_diffusion(rows=6, cols=1026)

    def run():
        return sim.run(k.nest, 4, chunk=1).counters.accesses

    accesses = benchmark(run)
    assert accesses > 0
    benchmark.extra_info["accesses_per_round"] = accesses


def test_runtime_detector_throughput(benchmark):
    """The trace-based baseline on the same kernel (it must process
    every access — the cost the compile-time model avoids)."""
    from repro.baselines import RuntimeFSDetector

    machine = paper_machine()
    rt = RuntimeFSDetector(machine)
    k = heat_diffusion(rows=6, cols=1026)

    def run():
        return rt.run(k.nest, 4, chunk=1).stats.accesses

    accesses = benchmark(run)
    assert accesses > 0


def test_predictor_throughput(benchmark):
    """The paper's LR predictor: the cheap path."""
    from repro.model import FalseSharingPredictor

    machine = paper_machine()
    model = FalseSharingModel(machine)
    k = heat_diffusion(rows=6, cols=1026)
    predictor = FalseSharingPredictor(model, n_runs=k.pred_chunk_runs)

    def run():
        return predictor.predict(k.nest, 4, chunk=1).predicted_fs_cases

    cases = benchmark(run)
    assert cases > 0
