"""Ablation — sensitivity to the lockstep interleaving order.

The model assumes a deterministic interleaving: all threads advance one
iteration per step, processed in ascending id order within the step.
Real executions interleave nondeterministically.  If the model's FS
counts depended strongly on that arbitrary choice, its predictions
would be fragile; this ablation permutes the within-step order and
measures the spread.
"""

import random

from repro.analysis.report import ExperimentResult
from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel

THREADS = 4

KERNELS = {
    "heat": lambda: heat_diffusion(rows=6, cols=1026),
    "dft": lambda: dft(samples=4, freqs=768),
    "linreg": lambda: linear_regression(THREADS, tasks=96, total_points=480),
}


def run_ablation() -> ExperimentResult:
    machine = paper_machine()
    rng = random.Random(1234)
    orders = [
        tuple(range(THREADS)),
        tuple(reversed(range(THREADS))),
        tuple(rng.sample(range(THREADS), THREADS)),
    ]
    res = ExperimentResult(
        "Ablation interleave",
        f"FS cases vs within-step thread order (T={THREADS}, FS chunk)",
        ("kernel", "ascending", "descending", "shuffled", "max spread %"),
    )
    for name, factory in KERNELS.items():
        k = factory()
        counts = []
        for order in orders:
            model = FalseSharingModel(machine, thread_order=order)
            counts.append(model.analyze(k.nest, THREADS, chunk=k.fs_chunk).fs_cases)
        spread = 100.0 * (max(counts) - min(counts)) / max(max(counts), 1)
        res.add_row(name, counts[0], counts[1], counts[2], round(spread, 2))
    return res


def test_ablation_interleave_order(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(result.to_text())
    by = {row[0]: row for row in result.rows}
    # Read-dominated kernels (DFT's RMWs, linreg's accumulators) are
    # exactly order-invariant: every access finds the line dirty no
    # matter who ran first.
    assert by["dft"][4] == 0.0
    assert by["linreg"][4] == 0.0
    # Write-write handoff chains (heat) shift modestly with the order —
    # ascending ids maximize the within-step handoff chain.  The spread
    # stays well below the effect sizes the model reports (~2x between
    # chunk configs), so the arbitrary order is not load-bearing.
    assert by["heat"][4] < 20.0
