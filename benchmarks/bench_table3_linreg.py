"""Table III — linear regression: the paper's reported divergence.

Paper claim: for this outer-loop-parallel kernel the modeled percentage
declines roughly ∝ 1/threads (the total chunk-run count depends on the
thread count) while the measured effect does not follow it down.
"""

from benchmarks.conftest import run_and_report


def test_table3_linreg_divergence(benchmark, suite):
    def checks(res):
        threads = res.column("threads")
        measured = res.column("measured FS %")
        modeled = res.column("modeled FS %")
        # Modeled declines with threads...
        assert modeled[-1] < modeled[0] * 0.75
        # ...roughly tracking 1/threads:
        ratio = modeled[0] / modeled[-1]
        t_ratio = threads[-1] / threads[0]
        assert ratio > t_ratio * 0.3
        # ...while the measured effect stays material.
        assert min(measured) > 10

    run_and_report(benchmark, suite.run_table3, checks)
