"""Table II — DFT: measured vs modeled FS overhead.

Paper claim: the heaviest FS of the three kernels (~32–37%), modeled
close to measured, roughly flat across threads.
"""

from benchmarks.conftest import run_and_report


def test_table2_dft_overheads(benchmark, suite):
    def checks(res):
        measured = res.column("measured FS %")
        modeled = res.column("modeled FS %")
        for m, mod in zip(measured, modeled):
            assert abs(m - mod) < 12, f"model must track measurement ({m} vs {mod})"
        assert min(modeled) > 15, "DFT is the FS-heaviest kernel"
        assert max(modeled) - min(modeled) < 10  # flat across threads

    run_and_report(benchmark, suite.run_table2, checks)
