"""Table IV — heat: LR-predicted vs fully-modeled FS cases.

Paper claim: predictions from 20 chunk runs match the full model's
counts closely, at a small fraction of the evaluation cost.
"""

from benchmarks.conftest import run_and_report


def test_table4_heat_prediction(benchmark, suite):
    def checks(res):
        for row in res.rows:
            pred_fs, model_fs = row[1], row[4]
            if model_fs:
                rel = abs(pred_fs - model_fs) / model_fs
                assert rel < 0.2, f"prediction off by {rel:.0%} at T={row[0]}"
            pred_pct, model_pct = row[3], row[6]
            assert abs(pred_pct - model_pct) < 8

    run_and_report(benchmark, suite.run_table4, checks)
