"""Extension — shared-cache and bus contention terms (paper Section VI).

The paper's future work: add shared-cache and bus interference to the
cost model.  This bench exercises both extensions on a streaming kernel
and checks the structural claims: contention is zero for cache-resident,
compute-bound loops and grows with thread count and traffic once the
shared resources saturate.
"""

from repro.analysis.report import ExperimentResult
from repro.costmodels import ContentionModel, ProcessorModel
from repro.machine import paper_machine
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
)


def stream_nest(n: int) -> ParallelLoopNest:
    a = ArrayDecl.create("sa", DOUBLE, (n,))
    b = ArrayDecl.create("sb", DOUBLE, (n,))
    i = AffineExpr.var("i")
    stmt = Assign(
        ArrayRef(b, (i,), is_write=True),
        BinOp("*", LoadExpr(ArrayRef(a, (i,))), Const(1.5, DOUBLE)),
    )
    return ParallelLoopNest(
        "stream.i", Loop.create("i", 0, n, [stmt]), "i",
        schedule=Schedule("static", None),
    )


def run_extension() -> ExperimentResult:
    machine = paper_machine()
    contention = ContentionModel(machine, bus_bytes_per_cycle=8.0)
    processor = ProcessorModel(machine)
    res = ExperimentResult(
        "Extension contention",
        "streaming copy: shared-L3 pressure and bus utilization vs threads",
        ("array doubles", "threads", "L3 pressure", "bus util",
         "contention (Mcycles)"),
    )
    for n in (50_000, 2_000_000):
        nest = stream_nest(n)
        per_iter = processor.cycles_per_iter(nest)
        for threads in (2, 12, 48):
            est = contention.estimate(
                nest, threads, machine_cycles_per_iter=per_iter
            )
            res.add_row(
                n, threads, round(est.l3_pressure, 3),
                round(est.bus_utilization, 2), est.total / 1e6,
            )
    return res


def test_extension_contention(benchmark):
    result = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    print()
    print(result.to_text())
    rows = result.rows
    small = [r for r in rows if r[0] == 50_000]
    big = [r for r in rows if r[0] == 2_000_000]
    # Cache-resident streams see no shared-cache contention.
    assert all(r[2] < 1.0 for r in small)
    # The 32 MB stream overwhelms one socket's L3.
    assert any(r[2] > 1.0 for r in big)
    # Bus utilization grows with thread count for the big stream.
    utils = [r[3] for r in big]
    assert utils == sorted(utils)
