"""Extension — do the model's verdicts transfer across machines?

A compile-time model is only useful if its *decisions* (which chunk,
whether to pad) survive a change of target machine even when the
absolute numbers move.  This bench runs the chunk-size optimizer for the
linreg kernel on the paper's 2012 48-core server and on a modern
single-socket desktop and checks decision stability, then verifies both
decisions on the matching simulators.
"""

from repro.analysis.report import ExperimentResult
from repro.kernels import linear_regression
from repro.machine import desktop_machine, paper_machine
from repro.sim import MulticoreSimulator
from repro.transform import ChunkSizeOptimizer

THREADS = 8
CANDIDATES = (1, 2, 4, 8)


def run_extension():
    machines = {
        "2012 server (48c)": paper_machine(),
        "desktop (8c)": desktop_machine(),
    }
    res = ExperimentResult(
        "Extension portability",
        f"linreg chunk recommendation across machines (T={THREADS})",
        ("machine", "recommended chunk", "sim time chunk=1 (ms)",
         "sim time recommended (ms)", "speedup"),
    )
    recs = {}
    for name, machine in machines.items():
        k = linear_regression(THREADS, tasks=96, total_points=480)
        rec = ChunkSizeOptimizer(machine, use_predictor=False).recommend(
            k.nest, THREADS, candidates=CANDIDATES
        )
        sim = MulticoreSimulator(machine)
        naive = sim.run(k.nest, THREADS, chunk=1)
        chosen = sim.run(k.nest, THREADS, chunk=rec.best_chunk)
        recs[name] = (rec, naive, chosen)
        res.add_row(
            name, rec.best_chunk,
            naive.seconds * 1e3, chosen.seconds * 1e3,
            f"{naive.cycles / chosen.cycles:.2f}x",
        )
    return res, recs


def test_extension_portability(benchmark):
    res, recs = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    print()
    print(res.to_text())
    for name, (rec, naive, chosen) in recs.items():
        # The decision transfers: a larger-than-1 chunk wins everywhere,
        # and actually speeds up the simulated execution on that machine.
        assert rec.best_chunk > 1, f"{name}: expected chunk > 1"
        assert chosen.cycles < naive.cycles, f"{name}: fix must help"
