"""Cold-vs-warm engine sweep benchmark (``make bench-sweep``).

Runs the same what-if grid twice through one result store: the cold
pass computes every point on the worker pool, the warm pass must be
served entirely from the content-addressed cache.  Wall times, cache
counters and the speedup land in a JSON report (default
``BENCH_engine.json``) so CI and the calibration notes can track the
engine's two headline numbers — parallel throughput and warm-cache
latency — over time.

Run:  REPRO_CACHE_DIR=/tmp/c python benchmarks/bench_engine_sweep.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.engine import Engine, ResultStore, default_cache_dir
from repro.kernels import linear_regression
from repro.machine import paper_machine
from repro.model import WhatIfSweep
from repro.obs import get_registry

THREADS = (2, 4, 8)
CHUNKS = (1, 2, 4, 8)


def _counter(name: str) -> float:
    return get_registry().snapshot()["counters"].get(name, 0.0)


def run(jobs: int, out: str) -> int:
    machine = paper_machine()
    kernel = linear_regression(8, tasks=120, total_points=240)
    sweep = WhatIfSweep(machine, predictor_runs=6)

    store = ResultStore(default_cache_dir())
    store.clear()  # guaranteed-cold first pass

    def one_pass(label: str, n_jobs: int):
        engine = Engine(jobs=n_jobs, store=store)
        hits0 = _counter("engine_cache_hits_total")
        t0 = time.perf_counter()
        result = sweep.sweep(
            kernel.nest, threads=THREADS, chunks=CHUNKS, engine=engine
        )
        wall = time.perf_counter() - t0
        hits = _counter("engine_cache_hits_total") - hits0
        print(f"[bench-sweep] {label:<6} jobs={n_jobs} "
              f"{wall:.2f}s  cache hits {hits:.0f}/{len(result.points)}")
        return result, wall, hits

    cold, cold_s, cold_hits = one_pass("cold", jobs)
    warm, warm_s, warm_hits = one_pass("warm", 1)

    n = len(cold.points)
    ok = warm == cold and cold_hits == 0 and warm_hits == n
    report = {
        "grid": {"threads": THREADS, "chunks": CHUNKS, "points": n},
        "jobs": jobs,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_hits": warm_hits,
        "store": str(store.root),
        "summary": {
            "points": n,
            "cold_s": round(cold_s, 2),
            "warm_s": round(warm_s, 2),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
            "identical": warm == cold,
        },
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(f"[bench-sweep] wrote {out}")
    if not ok:
        print("[bench-sweep] FAILED: warm pass was not fully cached "
              "or results diverged", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", "-j", type=int, default=4)
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    return run(args.jobs, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
