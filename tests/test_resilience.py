"""Tests for the resilience layer: taxonomy, budgets, ladder, faults.

Covers the robustness contract documented in docs/RESILIENCE.md:

* the structured error taxonomy (stable codes, exit codes, MRO
  backwards compatibility, pickling across process boundaries);
* resource budgets with *pre-run* cost estimation;
* the graceful-degradation ladder (exact → regression → analytic) and
  its ``resilience_fallbacks_total`` accounting;
* the fault-injection harness (``REPRO_FAULTS`` plans) and the
  instrumented sites that consume it;
* partial-result semantics (failure isolation, the circuit breaker);
* the ``repro-fs doctor`` self-check;
* the end-to-end acceptance scenario: a sweep grid containing an
  unparsable kernel, budget-degraded points and an injected worker
  crash completes under ``--keep-going`` with structured failures and
  degraded-but-present results — and dies with the first failure's
  stable code under ``--fail-fast``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.frontend import FrontendError, parse_c_source
from repro.kernels import heat_source
from repro.machine import paper_machine, tiny_machine
from repro.model import FalseSharingModel, WhatIfSweep
from repro.obs import get_registry
from repro.resilience import (
    ERROR_CODES,
    EXIT_CODES,
    Budget,
    BudgetExceededError,
    CircuitOpenError,
    EngineError,
    FailurePolicy,
    FailureReport,
    FaultInjectedError,
    FaultPlan,
    ModelError,
    ReproError,
    SourceSpan,
    UsageError,
    analyze_with_ladder,
    error_from_dict,
    estimate_cost,
    fault_point,
    install_plan,
    wants_corruption,
)
from tests.conftest import make_copy_nest


def _counter_value(name: str, **labels) -> float:
    return get_registry().counter(name).labels(**labels).value


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class TestTaxonomy:
    def test_codes_are_well_formed_and_described(self):
        import re

        for code, description in ERROR_CODES.items():
            assert re.fullmatch(r"REPRO-[UFMREX]\d{3}", code), code
            assert description, f"{code} has no description"

    def test_every_category_has_an_exit_code(self):
        for category in ("usage", "frontend", "model", "resource", "engine"):
            assert EXIT_CODES[category] in (2, 3, 4, 5)

    def test_backwards_compatible_mro(self):
        # Pre-taxonomy call sites caught ValueError/RuntimeError; the
        # structured classes must keep those bases.
        assert issubclass(ModelError, ValueError)
        assert issubclass(UsageError, ValueError)
        assert issubclass(FrontendError, ValueError)
        assert issubclass(EngineError, RuntimeError)
        with pytest.raises(ValueError):
            raise ModelError("still a ValueError")
        with pytest.raises(RuntimeError):
            raise EngineError("still a RuntimeError")

    def test_exit_codes_by_class(self):
        assert ModelError("m").exit_code == 4
        assert BudgetExceededError("b").exit_code == 4  # resource
        assert EngineError("e").exit_code == 5
        assert UsageError("u").exit_code == 2
        assert FrontendError("f").exit_code == 3

    def test_one_line_rendering(self):
        err = ModelError(
            "bad trip count", hint="check the loop bounds",
            span=SourceSpan(file="k.c", line=3, column=7),
        )
        line = err.one_line()
        assert line.startswith("error[REPRO-M100] k.c:3:7: bad trip count")
        assert "hint: check the loop bounds" in line

    def test_to_dict_round_trip(self):
        err = FrontendError(
            "parse failed", code="REPRO-F001",
            span=SourceSpan(file="bad.c", line=2), context={"stage": "parse"},
        )
        clone = error_from_dict(err.to_dict())
        assert clone.code == "REPRO-F001"
        assert clone.category == "frontend"
        assert clone.span is not None and clone.span.line == 2
        assert clone.context == {"stage": "parse"}

    def test_pickling_preserves_structure(self):
        # Engine jobs cross process boundaries; their errors must too.
        err = BudgetExceededError(
            "over budget", code="REPRO-R001", context={"guard": "steps"}
        )
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is BudgetExceededError
        assert clone.code == "REPRO-R001"
        assert clone.context == {"guard": "steps"}
        assert clone.exit_code == err.exit_code

    def test_instance_code_overrides_class_code(self):
        err = ModelError("x", code="REPRO-M102")
        assert err.code == "REPRO-M102"
        assert ModelError.code == "REPRO-M100"


class TestSourceSpan:
    def test_str_forms(self):
        assert str(SourceSpan(file="a.c", line=4, column=2)) == "a.c:4:2"
        assert str(SourceSpan(file="a.c", line=4)) == "a.c:4"
        assert str(SourceSpan(file="a.c")) == "a.c"

    def test_from_parse_message(self):
        span, text = SourceSpan.from_parse_message("k.c:12:5: before: {")
        assert span == SourceSpan(file="k.c", line=12, column=5)
        assert "before" in text
        span, text = SourceSpan.from_parse_message("no location here")
        assert span is None and text == "no location here"


# ---------------------------------------------------------------------------
# Budgets and cost estimation
# ---------------------------------------------------------------------------


class TestBudget:
    def test_validation(self):
        with pytest.raises(UsageError):
            Budget(max_steps=0)
        with pytest.raises(UsageError):
            Budget(deadline_s=-1.0)
        with pytest.raises(UsageError):
            Budget(max_state_bytes=-5)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_steps=10).unlimited

    def test_steps_guard_fires_before_running(self, small_machine):
        nest = make_copy_nest(n=1024)
        estimate = estimate_cost(nest, 4, small_machine)
        assert estimate.steps == 256  # 1024 iterations / 4 threads
        with pytest.raises(BudgetExceededError) as exc_info:
            Budget(max_steps=100).check_estimate(estimate, where="copy.i")
        assert exc_info.value.code == "REPRO-R001"
        assert exc_info.value.context["guard"] == "steps"

    def test_state_guard(self, small_machine):
        nest = make_copy_nest(n=64)
        estimate = estimate_cost(nest, 4, small_machine)
        with pytest.raises(BudgetExceededError) as exc_info:
            Budget(max_state_bytes=16).check_estimate(estimate)
        assert exc_info.value.code == "REPRO-R003"

    def test_deadline_guard(self):
        budget = Budget(deadline_s=1e-9)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.check_deadline("test")
        assert exc_info.value.code == "REPRO-R002"
        assert Budget(deadline_s=3600.0).remaining_s() > 0

    def test_key_dict_round_trip(self):
        budget = Budget(deadline_s=2.5, max_steps=100)
        clone = Budget.from_key_dict(budget.to_key_dict())
        assert clone.max_steps == 100 and clone.deadline_s == 2.5
        assert Budget.from_key_dict(None) is None
        assert Budget.from_key_dict({}) is None
        # The pinned absolute deadline must NOT leak into cache keys.
        assert "deadline_at" not in budget.to_key_dict()

    def test_estimate_matches_exact_analysis(self, small_machine):
        nest = make_copy_nest(n=256)
        estimate = estimate_cost(nest, 4, small_machine)
        result = FalseSharingModel(small_machine).analyze(nest, 4)
        assert estimate.steps == result.steps_evaluated

    def test_analysis_rejects_over_budget_upfront(self, small_machine):
        nest = make_copy_nest(n=4096)
        model = FalseSharingModel(small_machine)
        with pytest.raises(BudgetExceededError):
            model.analyze(nest, 4, budget=Budget(max_steps=8))


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


class TestLadder:
    def test_exact_when_unbudgeted(self, small_machine):
        nest = make_copy_nest(n=128)
        outcome = analyze_with_ladder(small_machine, nest, 4, prefer="exact")
        assert outcome.fidelity == "exact"
        assert not outcome.degraded
        exact = FalseSharingModel(small_machine).analyze(nest, 4)
        assert outcome.fs_cases == float(exact.fs_cases)

    def test_falls_back_to_regression(self, small_machine):
        nest = make_copy_nest(n=1024, chunk=4)
        before = _counter_value(
            "resilience_fallbacks_total", level="regression"
        )
        outcome = analyze_with_ladder(
            small_machine, nest, 4, prefer="exact",
            budget=Budget(max_steps=64),
        )
        assert outcome.fidelity == "regression"
        assert outcome.requested == "exact"
        assert outcome.degraded
        assert "over budget" in outcome.degradation
        after = _counter_value(
            "resilience_fallbacks_total", level="regression"
        )
        assert after == before + 1

    def test_falls_back_to_analytic(self, small_machine):
        # chunk so large every chunk run exceeds the budget: not even a
        # one-run regression prefix fits, only the closed form remains.
        nest = make_copy_nest(n=1024, chunk=256)
        before = _counter_value("resilience_fallbacks_total", level="analytic")
        outcome = analyze_with_ladder(
            small_machine, nest, 4, prefer="exact", budget=Budget(max_steps=8)
        )
        assert outcome.fidelity == "analytic"
        assert outcome.degraded
        after = _counter_value("resilience_fallbacks_total", level="analytic")
        assert after == before + 1

    def test_analytic_is_an_upper_bound(self, small_machine):
        nest = make_copy_nest(n=256)
        exact = analyze_with_ladder(small_machine, nest, 4, prefer="exact")
        bound = analyze_with_ladder(small_machine, nest, 4, prefer="analytic")
        assert bound.fs_cases >= exact.fs_cases
        assert bound.fs_write_fraction == 1.0  # conservative all-write split

    def test_ladder_never_raises_for_budget_reasons(self, small_machine):
        nest = make_copy_nest(n=4096)
        outcome = analyze_with_ladder(
            small_machine, nest, 8, prefer="exact",
            budget=Budget(max_steps=1),
        )
        assert outcome.fidelity in ("regression", "analytic")

    def test_model_errors_still_propagate(self, small_machine):
        nest = make_copy_nest(n=64)
        with pytest.raises(ModelError):
            analyze_with_ladder(
                small_machine, nest, 0, prefer="exact"  # invalid threads
            )
        with pytest.raises(ValueError):
            analyze_with_ladder(small_machine, nest, 4, prefer="bogus")


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_env_syntax(self):
        plan = FaultPlan.parse(
            "frontend.parse:raise:match=bad.c,engine.job:latency:delay=0.01"
        )
        assert len(plan.specs) == 2
        assert plan.specs[0].site == "frontend.parse"
        assert plan.specs[0].match == "bad.c"
        assert plan.specs[1].delay_s == 0.01

    def test_malformed_specs_rejected(self):
        with pytest.raises(UsageError):
            FaultPlan.parse("no-action")
        with pytest.raises(UsageError):
            FaultPlan.parse("site:explode")
        with pytest.raises(UsageError):
            FaultPlan.parse("site:raise:times=banana")

    def test_raise_action_fires(self):
        with install_plan(FaultPlan.parse("my.site:raise")):
            with pytest.raises(FaultInjectedError) as exc_info:
                fault_point("my.site", label="x")
            assert exc_info.value.code == "REPRO-X901"

    def test_match_filters_by_label(self):
        with install_plan(FaultPlan.parse("my.site:raise:match=bad")):
            fault_point("my.site", label="good-kernel")  # no fire
            with pytest.raises(FaultInjectedError):
                fault_point("my.site", label="bad-kernel")

    def test_times_bounds_firings(self):
        with install_plan(FaultPlan.parse("my.site:raise:times=2")):
            for _ in range(2):
                with pytest.raises(FaultInjectedError):
                    fault_point("my.site")
            fault_point("my.site")  # budget exhausted: no fire

    def test_deterministic_probability(self):
        plan = FaultPlan.parse("my.site:raise:p=0.5")
        spec = plan.specs[0]
        first = spec.should_fire("my.site", "some-label")
        for _ in range(5):
            assert spec.should_fire("my.site", "some-label") == first
        # p=0 never fires, p=1 always fires.
        assert not FaultPlan.parse("s:raise:p=0").specs[0].should_fire("s", "x")
        assert FaultPlan.parse("s:raise:p=1").specs[0].should_fire("s", "x")

    def test_env_plan_resolution(self, monkeypatch):
        from repro.resilience.faults import active_plan

        monkeypatch.setenv("REPRO_FAULTS", "env.site:raise")
        plan = active_plan()
        assert plan is not None and plan.specs[0].site == "env.site"
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert active_plan() is None

    def test_no_plan_is_a_noop(self):
        fault_point("any.site", label="whatever")
        assert not wants_corruption("any.site")

    def test_frontend_parse_site(self):
        with install_plan(FaultPlan.parse("frontend.parse:raise")):
            with pytest.raises(FaultInjectedError):
                parse_c_source(heat_source(6, 20))


class TestStoreFaults:
    def test_corrupt_on_get_is_a_miss(self, tmp_path):
        from repro.engine.store import ResultStore

        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"v": 1}, kind="test")
        with install_plan(FaultPlan.parse("store.get:corrupt")):
            assert store.get(key) is None  # garbled, dropped, miss
        assert store.get(key) is None  # entry was unlinked

    def test_corrupt_on_put_then_get_recovers(self, tmp_path):
        from repro.engine.store import ResultStore

        store = ResultStore(tmp_path)
        key = "ef" * 32
        with install_plan(FaultPlan.parse("store.put:corrupt")):
            store.put(key, {"v": 2}, kind="test")
        assert store.get(key) is None  # torn write reads as a miss
        store.put(key, {"v": 2}, kind="test")
        assert store.get(key) == {"v": 2}


# ---------------------------------------------------------------------------
# Partial results and the circuit breaker
# ---------------------------------------------------------------------------


class TestFailureReport:
    def test_from_exception_structured(self):
        report = FailureReport.from_exception(
            ModelError("boom", code="REPRO-M102"),
            label="whatif:k:t4c2", kind="sweep.point",
            point={"threads": 4, "chunk": 2},
        )
        assert report.code == "REPRO-M102"
        assert report.point == {"threads": 4, "chunk": 2}
        assert "[REPRO-M102] whatif:k:t4c2: boom" in report.one_line()

    def test_from_exception_unstructured(self):
        report = FailureReport.from_exception(
            KeyError("oops"), label="x", kind="k"
        )
        assert report.code == "REPRO-X000"
        assert "KeyError" in report.message

    def test_dict_round_trip(self):
        report = FailureReport(
            label="a", kind="b", code="REPRO-E102", message="died",
            attempts=3, retry_history=("died", "died"),
            point={"threads": 2},
        )
        assert FailureReport.from_dict(report.to_dict()) == report


class TestFailurePolicy:
    def test_keep_going_collects(self):
        policy = FailurePolicy(keep_going=True, max_failure_rate=1.0)
        policy.record_success()
        policy.record_failure(
            FailureReport(label="p", kind="k", code="REPRO-M100", message="m")
        )
        assert len(policy.failures) == 1
        assert policy.evaluated == 2
        assert policy.failure_rate == 0.5

    def test_fail_fast_reraises_cause(self):
        policy = FailurePolicy(keep_going=False)
        cause = ModelError("original")
        report = FailureReport.from_exception(cause, label="p", kind="k")
        with pytest.raises(ModelError, match="original"):
            policy.record_failure(report, cause=cause)

    def test_circuit_breaker_trips(self):
        policy = FailurePolicy(
            keep_going=True, max_failure_rate=0.5, min_evaluated=4
        )
        report = FailureReport(
            label="p", kind="k", code="REPRO-M100", message="m"
        )
        policy.record_success()
        policy.record_failure(report)  # 1/2 = 50%, under min_evaluated
        policy.record_failure(report)  # 2/3 = 66%, still under min
        with pytest.raises(CircuitOpenError) as exc_info:
            policy.record_failure(report)  # 3/4 = 75% > 50%: trip
        assert exc_info.value.code == "REPRO-E201"
        assert exc_info.value.context["failures"] == 3

    def test_breaker_disabled_at_one(self):
        policy = FailurePolicy(keep_going=True, max_failure_rate=1.0)
        report = FailureReport(
            label="p", kind="k", code="REPRO-M100", message="m"
        )
        for _ in range(20):
            policy.record_failure(report)
        assert len(policy.failures) == 20

    def test_validation(self):
        with pytest.raises(UsageError):
            FailurePolicy(max_failure_rate=1.5)
        with pytest.raises(UsageError):
            FailurePolicy(min_evaluated=0)


class TestSweepPartialResults:
    def test_serial_sweep_isolates_bad_points(self, small_machine):
        # A tight budget plus keep-going: every point completes (the
        # ladder degrades rather than failing), failures stay empty.
        nest = make_copy_nest(n=256)
        sweep = WhatIfSweep(
            small_machine, use_predictor=False, predictor_runs=4
        )
        policy = FailurePolicy(keep_going=True, max_failure_rate=1.0)
        result = sweep.sweep(
            nest, threads=(2, 4), chunks=(1, 8),
            budget=Budget(max_steps=16), policy=policy,
        )
        assert len(result.points) == 4
        assert result.failures == ()
        assert len(result.degraded_points) >= 1

    def test_engine_sweep_isolates_injected_failures(self, small_machine):
        from repro.engine import Engine

        nest = make_copy_nest(n=256, name="copyfail.i")
        sweep = WhatIfSweep(small_machine, predictor_runs=4)
        policy = FailurePolicy(keep_going=True, max_failure_rate=1.0)
        with install_plan(
            FaultPlan.parse("engine.job:raise:match=t4c8")
        ):
            result = sweep.sweep(
                nest, threads=(2, 4), chunks=(1, 8),
                engine=Engine(jobs=1, use_cache=False), policy=policy,
            )
        assert len(result.points) == 3
        assert len(result.failures) == 1
        assert result.failures[0].code == "REPRO-X901"
        assert result.failures[0].point == {"threads": 4, "chunk": 8}


# ---------------------------------------------------------------------------
# Doctor
# ---------------------------------------------------------------------------


class TestDoctor:
    def test_all_checks_pass(self):
        from repro.resilience.doctor import run_doctor

        results = run_doctor()
        assert len(results) >= 7
        failed = [c for c in results if not c.ok]
        assert not failed, "\n".join(c.one_line() for c in failed)

    def test_cli_doctor_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out


# ---------------------------------------------------------------------------
# End-to-end acceptance scenario (the ISSUE's contract)
# ---------------------------------------------------------------------------


@pytest.fixture
def grid_files(tmp_path):
    good = tmp_path / "good.c"
    good.write_text(heat_source(6, 130))
    bad = tmp_path / "bad.c"
    bad.write_text("void broken( { this is not C ;;;\n")
    return str(good), str(bad)


class TestAcceptance:
    def test_keep_going_sweep_survives_everything(
        self, grid_files, monkeypatch, capsys
    ):
        from repro.cli import main

        good, bad = grid_files
        # Inject a worker crash for exactly one grid point; run with 2
        # workers so the crash is isolated by the pool, not by pytest.
        monkeypatch.setenv("REPRO_FAULTS", "engine.job:crash:match=t4c8")
        rc = main([
            "sweep", good, bad,
            "--threads-list", "2,4", "--chunks-list", "1,8",
            "--exact", "--max-iters", "200", "--jobs", "2",
            "--keep-going", "--no-cache",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        # (a) the unparsable kernel is one isolated frontend failure...
        assert "[REPRO-F001]" in captured.err
        # (b) ...the crashed worker another, engine-coded one...
        assert "[REPRO-E102]" in captured.err
        assert "2 of" in captured.err and "failed (isolated)" in captured.err
        # (c) ...and over-budget points degraded to the regression level
        # instead of failing.
        assert "-> regression" in captured.out
        assert "exact analysis over budget" in captured.out
        assert "best:" in captured.out
        # The degradations are visible in metrics, not only in prose.
        assert _counter_value(
            "resilience_fallbacks_total", level="regression"
        ) >= 1

    def test_fail_fast_dies_with_first_structured_code(
        self, grid_files, monkeypatch, capsys
    ):
        from repro.cli import main

        good, bad = grid_files
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_LOG", raising=False)
        rc = main([
            "sweep", good, bad,
            "--threads-list", "2,4", "--chunks-list", "1,8",
            "--fail-fast", "--no-cache",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_CODES["frontend"] == 3
        assert "[REPRO-F001]" in captured.err

    def test_debug_env_reraises(self, grid_files, monkeypatch):
        from repro.cli import main

        _, bad = grid_files
        monkeypatch.setenv("REPRO_LOG", "debug")
        with pytest.raises(FrontendError):
            main(["analyze", bad])

    def test_frontend_error_carries_span(self, grid_files):
        _, bad = grid_files
        with open(bad, encoding="utf-8") as fh:
            source = fh.read()
        with pytest.raises(FrontendError) as exc_info:
            parse_c_source(source)
        err = exc_info.value
        assert err.code == "REPRO-F001"
        assert err.span is not None and err.span.line == 1
