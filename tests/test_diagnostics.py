"""Unit tests for FS diagnostics (hot lines, thread-pair matrix)."""

import pytest

from repro.kernels import build_linreg_nest
from repro.machine import paper_machine
from repro.model import FalseSharingModel, diagnose
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def model(machine):
    return FalseSharingModel(machine)


class TestPairMatrix:
    def test_pair_counts_sum_to_cases(self, model):
        r = model.analyze(make_copy_nest(n=128), 4, chunk=1)
        assert sum(r.stats.fs_by_pair.values()) == r.fs_cases

    def test_no_self_pairs(self, model):
        r = model.analyze(make_copy_nest(n=128), 4, chunk=1)
        assert all(w != a for (w, a) in r.stats.fs_by_pair)

    def test_chunk1_conflicts_are_adjacent(self, model):
        """Under schedule(static,1) neighbouring iterations run on
        neighbouring threads: conflicts concentrate on |Δthread| == 1."""
        r = model.analyze(make_copy_nest(n=256), 4, chunk=1)
        d = diagnose(r)
        assert d.adjacency_share > 0.5

    def test_matrix_shape(self, model):
        r = model.analyze(make_copy_nest(n=128), 4, chunk=1)
        d = diagnose(r)
        assert d.pair_matrix.shape == (4, 4)
        assert d.pair_matrix.sum() == r.fs_cases


class TestHotLines:
    def test_hot_lines_attributed_to_arrays(self, model):
        r = model.analyze(build_linreg_nest(48, 8), 4, chunk=1)
        d = diagnose(r)
        assert d.hot_lines
        assert all(hl.array == "tid_args" for hl in d.hot_lines)
        assert all(hl.offset_in_array >= 0 for hl in d.hot_lines)

    def test_hot_lines_sorted_desc(self, model):
        r = model.analyze(build_linreg_nest(48, 8), 4, chunk=1)
        d = diagnose(r)
        counts = [hl.fs_cases for hl in d.hot_lines]
        assert counts == sorted(counts, reverse=True)

    def test_top_lines_limit(self, model):
        r = model.analyze(build_linreg_nest(48, 8), 4, chunk=1)
        d = diagnose(r, top_lines=3)
        assert len(d.hot_lines) <= 3


class TestReportText:
    def test_text_mentions_victims_and_share(self, model):
        r = model.analyze(build_linreg_nest(48, 8), 4, chunk=1)
        text = diagnose(r).to_text()
        assert "tid_args" in text
        assert "adjacent-thread share" in text

    def test_no_fs_diagnosis(self, model):
        r = model.analyze(make_copy_nest(n=64), 2, chunk=8)
        d = diagnose(r)
        assert d.adjacency_share == 0.0
        assert not d.hot_lines
