"""Unit tests for the φ/mask false-sharing detector (Section III-D)."""

import numpy as np
import pytest

from repro.model.detector import FSDetector


def det(threads=2, lines=64, mode="invalidate"):
    return FSDetector(threads, lines, mode=mode)


class TestPhiCounting:
    def test_write_then_remote_read_counts_one(self):
        d = det()
        assert d.access(0, 100, True) == 0   # first write: no FS
        assert d.access(1, 100, False) == 1  # remote modified -> 1 case
        assert d.stats.fs_read_cases == 1
        assert d.stats.fs_write_cases == 0

    def test_write_then_remote_write_counts_one(self):
        d = det()
        d.access(0, 100, True)
        assert d.access(1, 100, True) == 1
        assert d.stats.fs_write_cases == 1

    def test_read_read_no_fs(self):
        d = det()
        d.access(0, 100, False)
        assert d.access(1, 100, False) == 0

    def test_disjoint_lines_no_fs(self):
        d = det()
        d.access(0, 100, True)
        assert d.access(1, 200, True) == 0
        assert d.stats.fs_cases == 0

    def test_mask_excludes_own_state(self):
        d = det()
        d.access(0, 100, True)
        # Same thread re-writing its own modified line: no FS.
        assert d.access(0, 100, True) == 0

    def test_per_line_and_per_thread_attribution(self):
        d = det()
        d.access(0, 100, True)
        d.access(1, 100, False)
        assert d.stats.fs_by_line[100] == 1
        assert d.stats.fs_by_thread[1] == 1


class TestInvalidateSemantics:
    def test_write_invalidates_remote_copies(self):
        d = det(threads=3)
        d.access(0, 100, False)
        d.access(1, 100, False)
        d.access(2, 100, True)  # invalidates 0 and 1
        assert d.stats.invalidations == 2
        assert d.holders_of(100) == 0b100
        assert d.writers_of(100) == 0b100

    def test_read_downgrades_writer(self):
        d = det()
        d.access(0, 100, True)
        d.access(1, 100, False)
        assert d.stats.downgrades == 1
        assert d.writers_of(100) == 0
        assert d.holders_of(100) == 0b11

    def test_pingpong_counts_each_transfer(self):
        d = det()
        d.access(0, 100, True)
        for _ in range(5):
            assert d.access(1, 100, True) == 1
            assert d.access(0, 100, True) == 1

    def test_modified_is_exclusive(self):
        d = det(threads=4)
        for t in range(4):
            d.access(t, 100, True)
        # Only the last writer holds the line.
        assert d.holders_of(100) == 0b1000
        assert d.cache_state(0) == []


class TestLiteralSemantics:
    def test_counts_only_on_insertion(self):
        d = det(mode="literal")
        d.access(0, 100, True)
        assert d.access(1, 100, False) == 1  # insertion -> counted
        # Hit in own state: literal mode does not re-evaluate phi.
        assert d.access(1, 100, False) == 0

    def test_multiple_writers_accumulate(self):
        d = det(threads=4, mode="literal")
        d.access(0, 100, True)
        d.access(1, 100, True)
        d.access(2, 100, True)
        # Thread 3 inserts: three remote modified copies -> 3 cases.
        assert d.access(3, 100, True) == 3

    def test_no_invalidation_in_literal_mode(self):
        d = det(mode="literal")
        d.access(0, 100, True)
        d.access(1, 100, True)
        assert d.stats.invalidations == 0
        assert d.holders_of(100) == 0b11


class TestEviction:
    def test_eviction_clears_directory_bits(self):
        d = det(threads=1, lines=2)
        d.access(0, 1, True)
        d.access(0, 2, True)
        d.access(0, 3, True)  # evicts line 1
        assert d.stats.evictions == 1
        assert d.holders_of(1) == 0
        assert d.writers_of(1) == 0

    def test_evicted_line_refetch_is_cold(self):
        d = det(threads=2, lines=1)
        d.access(0, 1, True)
        d.access(0, 2, True)  # evicts 1; writer bit cleared
        assert d.access(1, 1, False) == 0  # no stale writer state


class TestBlockProcessing:
    def test_block_equals_single_access_stream(self):
        """process_block must agree with the one-at-a-time API."""
        rng = np.random.default_rng(42)
        steps, refs, threads = 40, 3, 4
        lines = [rng.integers(0, 12, size=(steps, refs)) for _ in range(threads)]
        writes = np.array([False, True, True])

        d_block = det(threads=threads, lines=8)
        d_block.process_block([m.astype(np.int64) for m in lines], writes)

        d_single = det(threads=threads, lines=8)
        for s in range(steps):
            for t in range(threads):
                for k in range(refs):
                    d_single.access(t, int(lines[t][s, k]), bool(writes[k]))

        assert d_block.stats.fs_cases == d_single.stats.fs_cases
        assert d_block.stats.fs_read_cases == d_single.stats.fs_read_cases
        assert d_block.stats.invalidations == d_single.stats.invalidations
        assert d_block.stats.fs_by_line == d_single.stats.fs_by_line

    def test_ragged_blocks(self):
        d = det(threads=2, lines=8)
        lines = [
            np.array([[1], [2], [3]], dtype=np.int64),
            np.array([[1]], dtype=np.int64),  # thread 1 idles after step 0
        ]
        d.process_block(lines, np.array([True]))
        assert d.stats.steps == 3
        assert d.stats.accesses == 4


class TestValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            FSDetector(2, 8, mode="bogus")

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            FSDetector(0, 8)


class TestStatsMerge:
    def test_merge_accumulates_everything(self):
        a = det(threads=2)
        a.access(0, 1, True)
        a.access(1, 1, False)  # 1 read-FS
        b = det(threads=2)
        b.access(0, 2, True)
        b.access(1, 2, True)  # 1 write-FS

        merged = a.stats
        merged.merge(b.stats)
        assert merged.fs_cases == 2
        assert merged.fs_read_cases == 1
        assert merged.fs_write_cases == 1
        assert merged.accesses == 4
        assert merged.fs_by_line == {1: 1, 2: 1}
        assert merged.fs_by_pair[(0, 1)] == 2

    def test_merge_empty_is_identity(self):
        from repro.model.detector import FSStats

        a = det()
        a.access(0, 1, True)
        a.access(1, 1, True)
        before = (a.stats.fs_cases, a.stats.accesses)
        a.stats.merge(FSStats())
        assert (a.stats.fs_cases, a.stats.accesses) == before

    def test_merge_disjoint_counters_unions_keys(self):
        """Counters with non-overlapping keys merge to their union."""
        from collections import Counter

        from repro.model.detector import FSStats

        a = FSStats(
            fs_cases=3, misses=2,
            fs_by_line=Counter({10: 3}),
            fs_by_pair=Counter({(0, 1): 3}),
        )
        b = FSStats(
            fs_cases=5, invalidations=4,
            fs_by_line=Counter({20: 5}),
            fs_by_pair=Counter({(1, 0): 5}),
        )
        a.merge(b)
        assert a.fs_cases == 8
        assert a.misses == 2 and a.invalidations == 4
        assert a.fs_by_line == {10: 3, 20: 5}
        assert a.fs_by_pair == {(0, 1): 3, (1, 0): 5}

    def test_merge_overlapping_counters_add(self):
        """Shared line/pair/thread keys accumulate, never overwrite."""
        from collections import Counter

        from repro.model.detector import FSStats

        a = FSStats(
            fs_cases=2,
            fs_by_thread=Counter({1: 2}),
            fs_by_line=Counter({10: 2}),
            fs_by_pair=Counter({(0, 1): 2}),
        )
        b = FSStats(
            fs_cases=7,
            fs_by_thread=Counter({1: 4, 0: 3}),
            fs_by_line=Counter({10: 7}),
            fs_by_pair=Counter({(0, 1): 4, (1, 0): 3}),
        )
        a.merge(b)
        assert a.fs_by_thread == {1: 6, 0: 3}
        assert a.fs_by_line == {10: 9}
        assert a.fs_by_pair == {(0, 1): 6, (1, 0): 3}
        # conflict matrix total always equals the case total
        assert sum(a.fs_by_pair.values()) == a.fs_cases == 9

    def test_merge_preserves_read_write_split(self):
        """Read-FS and write-FS cases merge independently and the two
        directions always sum to the total."""
        a = det(threads=2)
        a.access(0, 1, True)
        a.access(1, 1, False)  # read-FS on thread 1
        b = det(threads=2)
        b.access(1, 2, True)
        b.access(0, 2, True)  # write-FS on thread 0

        a.stats.merge(b.stats)
        assert a.stats.fs_read_cases == 1
        assert a.stats.fs_write_cases == 1
        assert a.stats.fs_cases == a.stats.fs_read_cases + a.stats.fs_write_cases


class TestPairMatrix:
    def test_pair_keys_are_writer_then_accessor(self):
        """fs_by_pair keys are (writer, accessor) — direction matters."""
        d = det(threads=3)
        d.access(0, 5, True)   # t0 writes line 5
        d.access(1, 5, True)   # t1 hits t0's dirty copy -> (0, 1)
        d.access(2, 5, False)  # t2 reads t1's dirty copy -> (1, 2)
        assert d.stats.fs_by_pair[(0, 1)] == 1
        assert d.stats.fs_by_pair[(1, 2)] == 1
        assert (1, 0) not in d.stats.fs_by_pair
        assert (2, 1) not in d.stats.fs_by_pair
        assert sum(d.stats.fs_by_pair.values()) == d.stats.fs_cases == 2

    def test_multiple_writers_each_get_a_row(self):
        """In literal mode several remote Modified states can each
        contribute a case for one access; each writer gets its row."""
        d = det(threads=3, mode="literal")
        d.access(0, 7, True)
        d.access(1, 7, True)   # insert sees t0        -> (0, 1)
        d.access(2, 7, False)  # insert sees t0 and t1 -> (0, 2), (1, 2)
        assert d.stats.fs_by_pair[(0, 1)] == 1
        assert d.stats.fs_by_pair[(0, 2)] == 1
        assert d.stats.fs_by_pair[(1, 2)] == 1
        assert sum(d.stats.fs_by_pair.values()) == d.stats.fs_cases == 3

    def test_read_vs_write_split_in_pair_accounting(self):
        """The split classifies by the *accessor's* direction."""
        d = det(threads=2)
        d.access(0, 9, True)
        d.access(1, 9, False)  # read case (0, 1)
        assert d.stats.fs_read_cases == 1
        assert d.stats.fs_write_cases == 0
        d.access(1, 9, True)   # upgrade: the downgrade left no writer -> no FS
        assert d.stats.fs_cases == 1
        d.access(0, 9, True)   # t1 became the writer -> write case (1, 0)
        assert d.stats.fs_write_cases == 1
        assert d.stats.fs_by_pair[(1, 0)] == 1
        assert sum(d.stats.fs_by_pair.values()) == d.stats.fs_cases == 2


class TestStatsPublish:
    def test_publish_pushes_scalars_into_registry(self):
        from repro.obs import get_registry

        registry = get_registry()
        registry.reset()
        d = det(threads=2)
        d.access(0, 1, True)
        d.access(1, 1, False)
        d.stats.publish(kernel="unit", threads=2)
        snap = registry.snapshot()
        assert snap["counters"][
            'fs_cases{kernel="unit",threads="2"}'
        ] == d.stats.fs_cases
        assert snap["counters"][
            'misses{kernel="unit",threads="2"}'
        ] == d.stats.misses
        registry.reset()

    def test_publish_accumulates_across_runs(self):
        from repro.obs import get_registry

        registry = get_registry()
        registry.reset()
        for _ in range(3):
            d = det(threads=2)
            d.access(0, 1, True)
            d.access(1, 1, True)
            d.stats.publish(kernel="unit")
        snap = registry.snapshot()
        assert snap["counters"]['fs_cases{kernel="unit"}'] == 3.0
        registry.reset()
