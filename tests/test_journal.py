"""Unit and property tests for the durable job journal.

The journal is the crash-safety keystone of the service (PR 8): every
row a client ever saw must survive a SIGKILL, and replaying the same
segments twice — or segments with duplicated/torn tails, the two
signatures of a crash mid-write — must produce identical ledgers.
Hypothesis drives the idempotence properties over random record
streams and random byte-level truncations.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.journal import (
    Journal,
    JobLedger,
    _frame,
    replay_records,
)


def _rowdoc(i: int) -> dict:
    return {"type": "cell", "n": i, "threads": 2, "chunk": 1}


class TestRoundTrip:
    def test_admit_rows_crash_terminal_round_trip(self, tmp_path):
        j = Journal(tmp_path, fsync=False)
        j.record_admit("job1", "public", {"threads": [2]}, cells_total=4,
                       created_at=123.0, requeues=1)
        j.record_rows("job1", 0, [_rowdoc(0), _rowdoc(1)])
        j.record_rows("job1", 2, [_rowdoc(2)])
        j.record_crashes("job1", 2)
        j.record_cancel("job1")
        j.record_terminal("job1", "failed", {"code": "REPRO-E105"})
        j.close()

        ledgers = Journal(tmp_path, fsync=False).replay()
        led = ledgers["job1"]
        assert led.tenant == "public"
        assert led.request == {"threads": [2]}
        assert led.cells_total == 4
        assert led.requeues == 1
        assert led.rows == [_rowdoc(0), _rowdoc(1), _rowdoc(2)]
        assert led.crashes == 2
        assert led.cancelled is True
        assert led.status == "failed"
        assert led.error == {"code": "REPRO-E105"}
        assert led.terminal

    def test_replay_twice_is_identical(self, tmp_path):
        j = Journal(tmp_path, fsync=False)
        j.record_admit("a", "t", {}, 2, 1.0)
        j.record_rows("a", 0, [_rowdoc(0)])
        j.close()
        reader = Journal(tmp_path, fsync=False)
        assert reader.replay() == reader.replay()


class TestCorruptionTolerance:
    def _seed(self, root: Path) -> Journal:
        j = Journal(root, fsync=False)
        j.record_admit("a", "t", {}, 3, 1.0)
        j.record_rows("a", 0, [_rowdoc(0)])
        j.record_rows("a", 1, [_rowdoc(1)])
        j.close()
        return j

    def test_torn_tail_is_tolerated_silently(self, tmp_path):
        j = self._seed(tmp_path)
        seg = j.active_path
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-7])  # crash mid-append of the last record

        reader = Journal(tmp_path, fsync=False)
        led = reader.replay()["a"]
        assert led.rows == [_rowdoc(0)]  # prefix, never garbage
        assert reader.last_replay.torn_tail is True
        assert reader.last_replay.corrupt_records == 0

    def test_midfile_corruption_skips_and_counts(self, tmp_path):
        j = self._seed(tmp_path)
        seg = j.active_path
        lines = seg.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000 {broken\n"  # second record garbled
        seg.write_bytes(b"".join(lines))

        reader = Journal(tmp_path, fsync=False)
        led = reader.replay()["a"]
        # The rows record at offset 0 is gone; the offset-1 record is a
        # gap and must be dropped rather than mis-offset.
        assert led.rows == []
        assert reader.last_replay.corrupt_records == 1
        assert reader.last_replay.torn_tail is False

    def test_duplicated_tail_changes_nothing(self, tmp_path):
        j = self._seed(tmp_path)
        seg = j.active_path
        baseline = Journal(tmp_path, fsync=False).replay()
        raw = seg.read_bytes()
        last_line = raw.splitlines(keepends=True)[-1]
        seg.write_bytes(raw + last_line)  # record flushed twice
        assert Journal(tmp_path, fsync=False).replay() == baseline


class TestOffsets:
    def test_overlapping_rows_apply_only_new_suffix(self):
        ledgers = replay_records(iter([
            {"type": "admit", "job": "a", "tenant": "t"},
            {"type": "rows", "job": "a", "offset": 0,
             "rows": [_rowdoc(0), _rowdoc(1)]},
            {"type": "rows", "job": "a", "offset": 1,
             "rows": [_rowdoc(1), _rowdoc(2)]},
        ]))
        assert ledgers["a"].rows == [_rowdoc(0), _rowdoc(1), _rowdoc(2)]

    def test_gapped_rows_record_is_dropped(self):
        ledgers = replay_records(iter([
            {"type": "admit", "job": "a", "tenant": "t"},
            {"type": "rows", "job": "a", "offset": 5,
             "rows": [_rowdoc(5)]},
        ]))
        assert ledgers["a"].rows == []

    def test_records_for_unadmitted_jobs_are_ignored(self):
        ledgers = replay_records(iter([
            {"type": "rows", "job": "ghost", "offset": 0,
             "rows": [_rowdoc(0)]},
            {"type": "terminal", "job": "ghost", "status": "done"},
        ]))
        assert ledgers == {}

    def test_crash_counts_max_merge(self):
        ledgers = replay_records(iter([
            {"type": "admit", "job": "a", "tenant": "t"},
            {"type": "crash", "job": "a", "count": 3},
            {"type": "crash", "job": "a", "count": 1},  # stale duplicate
        ]))
        assert ledgers["a"].crashes == 3


class TestCompaction:
    def test_compaction_drops_terminal_keeps_live(self, tmp_path):
        j = Journal(tmp_path, fsync=False)
        j.record_admit("dead", "t", {}, 1, 1.0)
        j.record_terminal("dead", "done")
        j.record_admit("live", "t", {"chunks": [4]}, 2, 2.0)
        j.record_rows("live", 0, [_rowdoc(0)])
        j.record_crashes("live", 1)
        before = j.replay()

        carried = j.compact(before)
        assert carried == 1
        assert len(j._segments()) == 1  # history replaced by snapshot

        after = Journal(tmp_path, fsync=False).replay()
        assert "dead" not in after
        assert after["live"] == before["live"]

    def test_segment_size_triggers_rotation(self, tmp_path):
        j = Journal(tmp_path, fsync=False, max_segment_bytes=512)
        j.record_admit("a", "t", {}, 1, 1.0)
        j.record_terminal("a", "done")
        for i in range(30):
            j.record_admit(f"j{i}", "t", {}, 1, 1.0)
            j.record_terminal(f"j{i}", "done")
        j.close()
        # Rotation compacted away most of the terminal history: one
        # bounded segment remains (holding only the records appended
        # since the last rotation) and replay still works.
        reader = Journal(tmp_path, fsync=False)
        ledgers = reader.replay()
        assert all(led.terminal for led in ledgers.values())
        assert len(reader._segments()) == 1
        assert reader.active_path.stat().st_size < 1024


# -- property tests -----------------------------------------------------------

@st.composite
def record_streams(draw) -> list[dict]:
    """A plausible journal history for 1-3 jobs with correct offsets."""
    records: list[dict] = []
    for jn in range(draw(st.integers(1, 3))):
        job = f"job{jn}"
        records.append({"type": "admit", "job": job, "tenant": "t",
                        "request": {}, "cells_total": 8,
                        "created_at": float(jn)})
        offset = 0
        for _ in range(draw(st.integers(0, 4))):
            n = draw(st.integers(1, 3))
            rows = [{"type": "cell", "job": job, "n": offset + k}
                    for k in range(n)]
            records.append({"type": "rows", "job": job,
                            "offset": offset, "rows": rows})
            offset += n
        if draw(st.booleans()):
            records.append({"type": "crash", "job": job,
                            "count": draw(st.integers(1, 4))})
        if draw(st.booleans()):
            records.append({"type": "terminal", "job": job,
                            "status": draw(st.sampled_from(
                                ["done", "failed", "cancelled"]))})
    return records


class TestReplayProperties:
    @settings(max_examples=60, deadline=None)
    @given(records=record_streams(), data=st.data())
    def test_truncated_stream_replays_to_a_prefix(self, records, data):
        """Chopping the byte stream anywhere — mid-record included —
        yields each job's rows as an exact prefix of the full replay,
        never a duplicate, never garbage."""
        blob = b"".join(_frame(r) for r in records)
        cut = data.draw(st.integers(0, len(blob)), label="cut")
        full = replay_records(iter(records))
        with tempfile.TemporaryDirectory() as root:
            seg = Path(root) / "journal-00000001.ndjson"
            seg.write_bytes(blob[:cut])
            reader = Journal(root, fsync=False)
            partial = reader.replay()
            assert reader.last_replay.corrupt_records == 0
        for job_id, led in partial.items():
            whole = full[job_id].rows
            assert led.rows == whole[: len(led.rows)]

    @settings(max_examples=60, deadline=None)
    @given(records=record_streams(), data=st.data())
    def test_duplicating_any_line_is_a_no_op(self, records, data):
        """Re-appending any previously written record — the duplicated
        tail a crash between write and fsync can leave — changes
        nothing on replay."""
        dup = data.draw(st.integers(0, len(records) - 1), label="dup")
        blob = b"".join(_frame(r) for r in records)
        blob += _frame(records[dup])
        baseline = replay_records(iter(records))
        with tempfile.TemporaryDirectory() as root:
            seg = Path(root) / "journal-00000001.ndjson"
            seg.write_bytes(blob)
            assert Journal(root, fsync=False).replay() == baseline

    @settings(max_examples=30, deadline=None)
    @given(records=record_streams())
    def test_replay_is_idempotent(self, records):
        """Folding the same records twice (pure function) is stable,
        and replaying a replayed-and-compacted journal round-trips the
        live jobs exactly."""
        once = replay_records(iter(records))
        twice = replay_records(iter(records))
        assert once == twice
        with tempfile.TemporaryDirectory() as root:
            j = Journal(root, fsync=False)
            for rec in records:
                j.append(rec)
            j.compact(j.replay())
            after = Journal(root, fsync=False).replay()
        live = {k: v for k, v in once.items() if not v.terminal}
        assert after == live


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
