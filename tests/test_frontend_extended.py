"""Extended frontend coverage: higher-dimensional arrays, nested
structs, member arrays, multiple functions and dialect corner cases."""

import pytest

from repro.frontend import FrontendError, parse_c_source


class Test3DArrays:
    SRC = """
#define A 4
#define B 6
#define C 8
double vol[A][B][C];
void sweep(void) {
    int i, j, k;
    for (i = 0; i < A; i++) {
        for (j = 0; j < B; j++) {
            #pragma omp parallel for schedule(static,1)
            for (k = 0; k < C; k++) {
                vol[i][j][k] = vol[i][j][k] + 1.0;
            }
        }
    }
}
"""

    def test_three_level_nest(self):
        nest = parse_c_source(self.SRC)[0].nest
        assert nest.loop_vars() == ("i", "j", "k")
        assert nest.parallel_depth() == 2
        assert nest.trip_counts() == (4, 6, 8)

    def test_3d_strides(self):
        nest = parse_c_source(self.SRC)[0].nest
        ref = nest.innermost_accesses()[0]
        off = ref.offset_expr()
        assert off.coeff("i") == 6 * 8 * 8
        assert off.coeff("j") == 8 * 8
        assert off.coeff("k") == 8


class TestNestedStructs:
    SRC = """
#define N 16
typedef struct { double re; double im; } cplx;
typedef struct { cplx val; int tag; } cell;
cell grid[N];
void touch(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) {
        grid[i].val.im = grid[i].val.re;
    }
}
"""

    def test_nested_field_paths(self):
        nest = parse_c_source(self.SRC)[0].nest
        read, write = nest.innermost_accesses()
        assert read.field_path == ("val", "re")
        assert write.field_path == ("val", "im")
        # cell: cplx(16) + int(4) -> padded to 24; im at offset 8.
        assert write.offset_expr().const == 8
        assert write.offset_expr().coeff("i") == 24


class TestMemberArrays:
    SRC = """
#define N 8
typedef struct { double vals[4]; double sum; } bucket;
bucket buckets[N];
void fold(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) {
        buckets[i].sum = buckets[i].vals[2];
    }
}
"""

    def test_fixed_member_array_offset(self):
        nest = parse_c_source(self.SRC)[0].nest
        read, write = nest.innermost_accesses()
        # vals[2] at byte 16; element size 40.
        assert read.offset_expr().const == 16
        assert read.offset_expr().coeff("i") == 40
        assert write.offset_expr().const == 32

    def test_variable_member_array_subscript(self):
        src = self.SRC.replace("vals[2]", "vals[i - i]")  # affine, zero
        nest = parse_c_source(src)[0].nest
        read = nest.innermost_accesses()[0]
        assert read.offset_expr().const == 0


class TestTaggedStructs:
    SRC = """
#define N 8
struct pt { double x; double y; };
struct pt pts[N];
void go(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) {
        pts[i].y = pts[i].x;
    }
}
"""

    def test_struct_tag_reference(self):
        nest = parse_c_source(self.SRC)[0].nest
        read, write = nest.innermost_accesses()
        assert write.offset_expr().const == 8


class TestMultipleFunctions:
    SRC = """
#define N 16
double a[N];
double b[N];
void first(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) { a[i] = 1.0; }
}
void second(void) {
    int i;
    #pragma omp parallel for schedule(static,4)
    for (i = 0; i < N; i++) { b[i] = a[i]; }
}
"""

    def test_kernels_from_both_functions(self):
        ks = parse_c_source(self.SRC)
        assert [k.function for k in ks] == ["first", "second"]
        assert ks[1].nest.schedule.chunk == 4


class TestDialectCorners:
    def test_scalar_accumulator_in_body(self):
        src = """
#define N 16
double a[N];
void f(void) {
    int i;
    double acc;
    #pragma omp parallel for
    for (i = 0; i < N; i++) {
        acc = a[i] + 1.0;
        a[i] = acc * 2.0;
    }
}
"""
        nest = parse_c_source(src)[0].nest
        accs = nest.innermost_accesses()
        # Scalar acc generates no memory traffic: load a[i], store a[i].
        assert [(r.array.name, r.is_write) for r in accs] == [
            ("a", False), ("a", True)
        ]

    def test_float_arrays(self):
        src = """
#define N 32
float v[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) { v[i] = v[i] * 0.5; }
}
"""
        nest = parse_c_source(src)[0].nest
        ref = nest.innermost_accesses()[0]
        assert ref.offset_expr().coeff("i") == 4  # float stride

    def test_prefix_increment(self):
        src = """
#define N 8
double a[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; ++i) { a[i] = 0.0; }
}
"""
        assert parse_c_source(src)[0].nest.trip_counts() == (8,)

    def test_extra_macros_override_sizes(self):
        src = """
double a[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) { a[i] = 0.0; }
}
"""
        nest = parse_c_source(src, extra_macros={"N": 24})[0].nest
        assert nest.trip_counts() == (24,)

    def test_undefined_struct_rejected(self):
        src = """
struct mystery a[8];
void f(void) { }
"""
        with pytest.raises(FrontendError, match="undefined struct"):
            parse_c_source(src)

    def test_unparsable_type_rejected(self):
        # An unknown typedef name is a *parse* error in C (the grammar
        # needs the typedef); it must surface as a FrontendError, not a
        # raw pycparser exception.
        with pytest.raises(FrontendError, match="parse error"):
            parse_c_source("mystery_t a[8];\nvoid f(void) { }\n")

    def test_negative_constant_in_bound(self):
        src = """
#define N 8
double a[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N - -2; i++) { a[i - 2] = 0.0; }
}
"""
        # N - -2 = 10; exercising unary minus in affine lowering.
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (10,)


class TestSplitDirectives:
    SRC = """
#define N 32
double a[N];
void f(void) {
    int i;
    #pragma omp parallel private(i)
    {
        #pragma omp for schedule(static,2)
        for (i = 0; i < N; i++) {
            a[i] = a[i] * 2.0;
        }
    }
}
"""

    def test_parallel_region_with_inner_for(self):
        ks = parse_c_source(self.SRC)
        assert len(ks) == 1
        nest = ks[0].nest
        assert nest.parallel_var == "i"
        assert nest.schedule.chunk == 2

    def test_region_private_clause_merged(self):
        nest = parse_c_source(self.SRC)[0].nest
        assert "i" in nest.private

    def test_parallel_region_without_for_ok(self):
        src = """
double x[4];
void f(void) {
    #pragma omp parallel
    {
        x[0] = 1.0;
    }
}
"""
        # A parallel region with no worksharing loop: nothing to model.
        assert parse_c_source(src) == []
