"""Unit tests for parallelization-level selection."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
)
from repro.kernels import build_heat_nest
from repro.machine import paper_machine
from repro.transform import ParallelizationAdvisor
from tests.conftest import make_nested_nest


@pytest.fixture(scope="module")
def advisor():
    return ParallelizationAdvisor(paper_machine())


class TestLevelChoice:
    def test_heat_prefers_outer_level(self, advisor):
        """Row-parallel heat: one worksharing region, no per-row
        barriers, line-aligned blocks — the model must prefer it over
        the FS-heavy inner level the paper's benchmark provokes."""
        nest = build_heat_nest(10, 130, chunk=1)
        plan = advisor.plan(nest, 4)
        assert plan.best_var == "i"
        outer = next(s for s in plan.scores if s.var == "i")
        inner = next(s for s in plan.scores if s.var == "j")
        assert outer.wall_cycles < inner.wall_cycles
        assert outer.fs_cases < inner.fs_cases

    def test_all_levels_scored(self, advisor):
        plan = advisor.plan(make_nested_nest(rows=4, cols=32), 4)
        assert [s.var for s in plan.scores] == ["i", "j"]
        assert all(s.legal for s in plan.scores)

    def test_illegal_level_flagged(self, advisor):
        """A recurrence over i leaves only j legal."""
        a = ArrayDecl.create("w", DOUBLE, (64, 64))
        i, j = AffineExpr.var("i"), AffineExpr.var("j")
        stmt = Assign(
            ArrayRef(a, (i, j), is_write=True),
            BinOp("+", LoadExpr(ArrayRef(a, (i - 1, j))), Const(1.0, DOUBLE)),
        )
        inner = Loop.create("j", 0, 64, [stmt])
        outer = Loop.create("i", 1, 64, [inner])
        nest = ParallelLoopNest("wave.j", outer, "j")
        plan = advisor.plan(nest, 4)
        by_var = {s.var: s for s in plan.scores}
        assert not by_var["i"].legal
        assert by_var["i"].blockers
        assert by_var["j"].legal
        assert plan.best_var == "j"

    def test_no_legal_level(self, advisor):
        """A full recurrence on a 1-D loop: nothing to parallelize."""
        a = ArrayDecl.create("w1", DOUBLE, (64,))
        i = AffineExpr.var("i")
        stmt = Assign(
            ArrayRef(a, (i,), is_write=True),
            BinOp("+", LoadExpr(ArrayRef(a, (i - 1,))), Const(1.0, DOUBLE)),
        )
        nest = ParallelLoopNest("chain.i", Loop.create("i", 1, 64, [stmt]), "i")
        plan = advisor.plan(nest, 4)
        assert plan.best_var is None
        with pytest.raises(ValueError):
            _ = plan.best

    def test_best_property(self, advisor):
        plan = advisor.plan(make_nested_nest(rows=4, cols=32), 4)
        assert plan.best.var == plan.best_var
