"""Unit tests for C → IR lowering."""

import pytest

from repro.frontend import FrontendError, parse_c_source
from repro.ir import DOUBLE, StructType

SIMPLE = """
#define N 64
double a[N];
double b[N];

void copy(void) {
    int i;
    #pragma omp parallel for schedule(static,1)
    for (i = 0; i < N; i++) {
        b[i] = a[i] + 1.0;
    }
}
"""


class TestSimpleKernel:
    def test_one_kernel_found(self):
        ks = parse_c_source(SIMPLE)
        assert len(ks) == 1
        assert ks[0].function == "copy"

    def test_loop_shape(self):
        nest = parse_c_source(SIMPLE)[0].nest
        assert nest.trip_counts() == (64,)
        assert nest.parallel_var == "i"
        assert nest.schedule.chunk == 1

    def test_accesses(self):
        nest = parse_c_source(SIMPLE)[0].nest
        accs = nest.innermost_accesses()
        assert [(r.array.name, r.is_write) for r in accs] == [
            ("a", False), ("b", True)
        ]


class TestLoopForms:
    def test_le_condition(self):
        src = SIMPLE.replace("i < N", "i <= 62")
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (63,)

    def test_step_increment(self):
        src = SIMPLE.replace("i++", "i += 2")
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (32,)

    def test_i_equals_i_plus_c(self):
        src = SIMPLE.replace("i++", "i = i + 4")
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (16,)

    def test_decl_in_init(self):
        src = SIMPLE.replace("int i;", "").replace(
            "for (i = 0;", "for (int i = 0;"
        )
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (64,)

    def test_macro_bound_arith(self):
        src = SIMPLE.replace("i < N", "i < N - 1")
        nest = parse_c_source(src)[0].nest
        assert nest.trip_counts() == (63,)

    def test_downward_loop_rejected(self):
        src = SIMPLE.replace("i++", "i--").replace("i < N", "i > 0")
        with pytest.raises(FrontendError):
            parse_c_source(src)


class TestInnerParallel:
    SRC = """
#define R 4
#define C 32
double g[R][C];
void sweep(void) {
    int i, j;
    for (i = 0; i < R; i++) {
        #pragma omp parallel for schedule(static,2)
        for (j = 0; j < C; j++) {
            g[i][j] = g[i][j] * 0.5;
        }
    }
}
"""

    def test_nest_rooted_at_outer_loop(self):
        nest = parse_c_source(self.SRC)[0].nest
        assert nest.loop_vars() == ("i", "j")
        assert nest.parallel_var == "j"
        assert nest.parallel_depth() == 1
        assert nest.schedule.chunk == 2

    def test_2d_subscripts(self):
        nest = parse_c_source(self.SRC)[0].nest
        read, write = nest.innermost_accesses()
        assert read.offset_expr().coeff("i") == 32 * 8
        assert read.offset_expr().coeff("j") == 8
        assert write.is_write


class TestStructsAndPointers:
    SRC = """
#define N 8
#define M 4
typedef struct { double x; double y; } point_t;
typedef struct { point_t *points; long long sx; } args_t;
args_t tasks[N];

void run(void) {
    int i, j;
    #pragma omp parallel for private(i,j) schedule(static,1)
    for (j = 0; j < N; j++) {
        for (i = 0; i < M; i++) {
            tasks[j].sx += tasks[j].points[i].x;
        }
    }
}
"""

    def test_struct_field_access(self):
        nest = parse_c_source(self.SRC)[0].nest
        accs = nest.innermost_accesses()
        # load points[i].x, read sx, write sx
        names = [(r.array.name, r.field_path, r.is_write) for r in accs]
        assert names == [
            ("tasks.points", ("x",), False),
            ("tasks", ("sx",), False),
            ("tasks", ("sx",), True),
        ]

    def test_synthetic_array_extent_from_loop(self):
        nest = parse_c_source(self.SRC)[0].nest
        points = next(a for a in nest.arrays() if a.name == "tasks.points")
        assert points.concrete_dims() == (8, 4)

    def test_struct_offsets_correct(self):
        nest = parse_c_source(self.SRC)[0].nest
        sx_write = nest.innermost_accesses()[2]
        # args_t: pointer (8 bytes) then sx at offset 8; element size 16
        off = sx_write.offset_expr()
        assert off.const == 8
        assert off.coeff("j") == 16


class TestExpressions:
    def test_calls_lowered(self):
        src = """
#define N 16
double out[N];
void f(void) {
    int k;
    #pragma omp parallel for schedule(static,1)
    for (k = 0; k < N; k++) {
        out[k] = cos(0.1 * k) + sin(0.1 * k);
    }
}
"""
        nest = parse_c_source(src)[0].nest
        counts = nest.innermost().stmts()[0].rhs.op_counts()
        assert counts["call"] == 2

    def test_nonaffine_subscript_rejected(self):
        src = """
#define N 16
double a[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) { a[i*i] = 0.0; }
}
"""
        with pytest.raises(FrontendError, match="affine|not affine|non-affine"):
            parse_c_source(src)

    def test_undeclared_identifier_rejected(self):
        src = """
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < 4; i++) { mystery[i] = 0.0; }
}
"""
        with pytest.raises(FrontendError, match="undeclared"):
            parse_c_source(src)

    def test_pragma_not_followed_by_for_rejected(self):
        src = """
void f(void) {
    int x;
    #pragma omp parallel for
    x = 1;
}
"""
        with pytest.raises(FrontendError, match="followed by a for"):
            parse_c_source(src)


class TestMultipleKernels:
    def test_two_parallel_loops(self):
        src = """
#define N 8
double a[N]; double b[N];
void f(void) {
    int i;
    #pragma omp parallel for
    for (i = 0; i < N; i++) { a[i] = 1.0; }
    #pragma omp parallel for
    for (i = 0; i < N; i++) { b[i] = a[i]; }
}
"""
        ks = parse_c_source(src)
        assert len(ks) == 2

    def test_sequential_loops_not_extracted(self):
        src = """
#define N 8
double a[N];
void f(void) {
    int i;
    for (i = 0; i < N; i++) { a[i] = 1.0; }
}
"""
        assert parse_c_source(src) == []
