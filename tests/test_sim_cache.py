"""Unit tests for the simulator's set-associative MESI caches."""

import pytest

from repro.sim import E, M, PrivateCache, S


class TestGeometry:
    def test_fully_associative(self):
        c = PrivateCache(16, 0)
        assert c.num_sets == 1 and c.ways == 16

    def test_set_associative(self):
        c = PrivateCache(16, 4)
        assert c.num_sets == 4 and c.ways == 4

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError):
            PrivateCache(10, 4)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            PrivateCache(12, 4)  # 3 sets


class TestMESIStates:
    def test_touch_and_state(self):
        c = PrivateCache(8, 0)
        c.touch(100, E)
        assert c.state(100) == E

    def test_set_state(self):
        c = PrivateCache(8, 0)
        c.touch(100, E)
        c.set_state(100, M)
        assert c.state(100) == M

    def test_set_state_requires_presence(self):
        c = PrivateCache(8, 0)
        with pytest.raises(KeyError):
            c.set_state(1, M)

    def test_invalidate(self):
        c = PrivateCache(8, 0)
        c.touch(100, M)
        assert c.invalidate(100)
        assert c.state(100) is None
        assert not c.invalidate(100)

    def test_downgrade_m_and_e(self):
        c = PrivateCache(8, 0)
        c.touch(1, M)
        c.touch(2, E)
        c.touch(3, S)
        assert c.downgrade(1) and c.state(1) == S
        assert c.downgrade(2) and c.state(2) == S
        assert not c.downgrade(3)


class TestReplacement:
    def test_lru_within_set(self):
        c = PrivateCache(4, 2)  # 2 sets of 2 ways
        # Lines 0,2,4 all map to set 0.
        assert c.touch(0, E) is None
        assert c.touch(2, E) is None
        assert c.touch(4, E) == 0  # evicts LRU of set 0

    def test_touch_refreshes(self):
        c = PrivateCache(4, 2)
        c.touch(0, E)
        c.touch(2, E)
        c.touch(0, E)  # 0 becomes MRU in its set
        assert c.touch(4, E) == 2

    def test_sets_are_independent(self):
        c = PrivateCache(4, 2)
        c.touch(0, E)  # set 0
        c.touch(1, E)  # set 1
        c.touch(2, E)  # set 0
        c.touch(3, E)  # set 1
        assert c.occupancy() == 4  # no evictions

    def test_conflict_misses_in_set_assoc_only(self):
        """Same working set: set-associative conflicts, fully-assoc fits."""
        sa = PrivateCache(8, 2)  # 4 sets of 2
        fa = PrivateCache(8, 0)
        # Three lines in one set (stride = num_sets).
        lines = [0, 4, 8]
        evicted_sa = [sa.touch(l, E) for l in lines]
        evicted_fa = [fa.touch(l, E) for l in lines]
        assert any(e is not None for e in evicted_sa)
        assert all(e is None for e in evicted_fa)

    def test_lines_listing(self):
        c = PrivateCache(8, 0)
        c.touch(1, M)
        c.touch(2, S)
        assert sorted(c.lines()) == [(1, M), (2, S)]
