"""Coverage for small public surfaces not exercised elsewhere."""

import pytest

from repro.analysis import ExperimentResult, render_all
from repro.frontend import parse_c_source
from repro.ir import emit_nest
from repro.kernels import heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor
from repro.sim import MulticoreSimulator
from tests.conftest import make_copy_nest


class TestKernelInstance:
    def test_with_chunk_copies(self):
        k = heat_diffusion(rows=6, cols=130)
        k2 = k.with_chunk(16)
        assert k2.nest.schedule.chunk == 16
        assert k.nest.schedule.chunk == 1  # original untouched
        assert k2.source == k.source       # source retains its own chunk


class TestStrideEmission:
    def test_strided_loop_round_trips(self):
        from repro.ir import (
            AffineExpr, ArrayDecl, ArrayRef, Assign, Const, DOUBLE, Loop,
            ParallelLoopNest, Schedule,
        )

        a = ArrayDecl.create("sa", DOUBLE, (64,))
        i = AffineExpr.var("i")
        stmt = Assign(ArrayRef(a, (i,), is_write=True), Const(0.0, DOUBLE))
        nest = ParallelLoopNest(
            "stride.i", Loop.create("i", 0, 64, [stmt], step=4), "i",
            schedule=Schedule("static", 2),
        )
        src = emit_nest(nest)
        assert "i += 4" in src
        (kernel,) = parse_c_source(src)
        assert kernel.nest.trip_counts() == (16,)
        assert kernel.nest.innermost().step == 4


class TestResultExtras:
    def test_sim_memory_cycles(self):
        r = MulticoreSimulator(paper_machine()).run(make_copy_nest(n=64), 2)
        assert r.memory_cycles == pytest.approx(r.per_thread_cycles.max())

    def test_prediction_speedup_metric(self):
        model = FalseSharingModel(paper_machine())
        pred = FalseSharingPredictor(model, n_runs=4).predict(
            make_copy_nest(n=1024), 4, chunk=1
        )
        # Sampling 4 of 256 chunk runs is a ~64x iteration saving.
        assert pred.speedup_iterations > 10

    def test_render_all_markdown(self):
        r = ExperimentResult("T", "demo", ("a",))
        r.add_row(1)
        out = render_all([r], markdown=True)
        assert out.startswith("### T: demo")

    def test_format_cell_negative_values(self):
        from repro.analysis import format_cell

        assert format_cell(-1234567) == "-1,234,567"
        assert format_cell(-3.14159) == "-3.142"
        assert format_cell(-0.001234) == "-0.001234"


class TestEmptyBlocksInSim:
    def test_sim_empty_env_thread(self):
        """Threads with no work (chunk covers the trip) simulate cleanly."""
        nest = make_copy_nest(n=8, chunk=8)
        r = MulticoreSimulator(paper_machine()).run(nest, 4)
        assert r.counters.accesses == 16
        assert (r.per_thread_cycles[1:] == 0).all()
