"""Unit tests for the mini C preprocessor."""

import pytest

from repro.frontend import PRAGMA_MARKER, PreprocessError, preprocess


class TestDefines:
    def test_integer_macro(self):
        r = preprocess("#define N 42\nint a[N];\n")
        assert r.macros == {"N": 42}
        assert "int a[42];" in r.source

    def test_macro_arithmetic(self):
        r = preprocess("#define N 10\n#define HALF (N/2)\nint a[HALF];\n")
        assert r.macros["HALF"] == 5

    def test_extra_macros_take_precedence(self):
        r = preprocess("#define N 42\nint a[N];\n", extra_macros={"N": 7})
        assert "int a[7];" in r.source

    def test_word_boundary_substitution(self):
        r = preprocess("#define N 5\nint NN = N;\n")
        assert "int NN = 5;" in r.source  # NN untouched

    def test_nonint_macro_rejected(self):
        with pytest.raises(PreprocessError):
            preprocess('#define S "hello"\n')

    def test_chained_macros(self):
        r = preprocess("#define A 3\n#define B A\nint x[B];\n")
        assert r.macros["B"] == 3


class TestPragmas:
    def test_omp_pragma_becomes_marker(self):
        src = "#pragma omp parallel for\nfor(;;);\n"
        r = preprocess(src)
        assert f"{PRAGMA_MARKER}(0);" in r.source
        assert r.pragmas[0] == "omp parallel for"

    def test_macro_substitution_inside_pragma(self):
        src = "#define C 4\n#pragma omp parallel for schedule(static,C)\n"
        r = preprocess(src)
        assert "schedule(static,4)" in r.pragmas[0]

    def test_non_omp_pragma_dropped(self):
        r = preprocess("#pragma once\nint x;\n")
        assert not r.pragmas
        assert PRAGMA_MARKER not in r.source

    def test_multiple_pragmas_numbered(self):
        src = "#pragma omp parallel for\n#pragma omp for\n"
        r = preprocess(src)
        assert set(r.pragmas) == {0, 1}


class TestLineStructure:
    def test_line_count_preserved(self):
        src = "#include <stdio.h>\n#define N 2\nint a[N];\n#pragma omp for\n"
        r = preprocess(src)
        assert r.source.count("\n") == src.count("\n")

    def test_includes_blanked(self):
        r = preprocess("#include <math.h>\nint x;\n")
        assert "include" not in r.source

    def test_comments_stripped(self):
        r = preprocess("int x; // a comment\n/* block\ncomment */int y;\n")
        assert "comment" not in r.source
        assert "int y;" in r.source
        # Block comments preserve line structure.
        assert r.source.count("\n") == 3

    def test_comment_with_directive_inside(self):
        r = preprocess("/* #define N 4 */\nint x;\n")
        assert "N" not in r.macros


class TestFunctionLikeMacros:
    def test_function_like_macro_rejected_clearly(self):
        with pytest.raises(PreprocessError, match="unsupported"):
            preprocess("#define SQ(x) ((x)*(x))\n")
