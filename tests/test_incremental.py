"""Tests for :mod:`repro.engine.incremental` — manifest + reuse reports.

Two contracts:

* **manifest skipping** (``repro-fs sweep --since-manifest``): touch one
  kernel of two and only its cells recompute — the untouched kernel is
  skipped outright, and the sweep's reuse line says so.  A missing,
  unreadable or corrupt manifest degrades to a full sweep with a
  warning, never an error.
* **reuse accounting**: :class:`ReuseReport` classifies every outcome
  by provenance (compute / mem / disk / dedupe / skip / failed) and its
  ``to_dict`` block is what sweep and experiment summaries embed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import (
    MANIFEST_SCHEMA_VERSION,
    Job,
    Manifest,
    ReuseReport,
    default_manifest_path,
    reuse_from_outcomes,
)
from repro.engine.pool import JobOutcome
from repro.kernels import heat_source


def _outcome(**kw) -> JobOutcome:
    job = Job("engine.test.echo", {"value": kw.pop("value", 0)})
    kw.setdefault("result", {"value": 0})
    return JobOutcome(job=job, **kw)


# ---------------------------------------------------------------------------
# ReuseReport
# ---------------------------------------------------------------------------


class TestReuseReport:
    def test_record_classifies_by_tier(self):
        report = reuse_from_outcomes([
            _outcome(),
            _outcome(from_cache=True, cache_tier="mem"),
            _outcome(from_cache=True, cache_tier="disk"),
            _outcome(from_cache=True, cache_tier="dedupe"),
            _outcome(from_cache=True),  # legacy row: no tier -> dedupe
            _outcome(result=None, error="boom"),
        ])
        assert report.total == 6
        assert report.computed == 1
        assert (report.mem_hits, report.disk_hits) == (1, 1)
        assert report.deduped == 2
        assert report.failed == 1
        assert report.reused == 4

    def test_skip_and_fraction(self):
        report = ReuseReport()
        report.skip(3)
        report.record(_outcome())
        assert report.total == 4
        assert report.skipped_unchanged == 3
        assert report.fraction == 0.75
        assert ReuseReport().fraction == 0.0

    def test_merge_adds_every_bucket(self):
        a = ReuseReport(total=2, computed=1, mem_hits=1)
        b = ReuseReport(total=3, disk_hits=1, failed=1, deduped=1)
        a.merge(b)
        assert a.total == 5
        assert (a.computed, a.mem_hits, a.disk_hits) == (1, 1, 1)
        assert (a.deduped, a.failed) == (1, 1)

    def test_to_dict_schema(self):
        doc = ReuseReport(total=4, computed=1, mem_hits=2,
                          skipped_unchanged=1).to_dict()
        assert doc == {
            "total": 4, "computed": 1, "mem_hits": 2, "disk_hits": 0,
            "deduped": 0, "skipped_unchanged": 1, "failed": 0,
            "reused": 3, "fraction": 0.75,
        }

    def test_one_line(self):
        line = ReuseReport(total=4, mem_hits=3, computed=1).one_line()
        assert line == ("75% reused (mem 3 / disk 0 / dedupe 0 / skip 0) "
                        "of 4 cells")


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


class TestManifest:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = Manifest()
        manifest.update("/src/a.c", "nest_a", "digest-1")
        manifest.update("/src/a.c", "nest_b", "digest-2")
        manifest.update("/src/b.c", "nest_a", "digest-3")
        manifest.save(path)
        loaded = Manifest.load(path)
        assert loaded.warning is None
        assert loaded.files == manifest.files
        assert len(loaded) == 3
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA_VERSION

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "manifest.json"
        Manifest({"/a.c": {"n": "d"}}).save(path)
        assert not list(tmp_path.glob(".tmp-manifest-*"))

    def test_unchanged_and_replace(self):
        manifest = Manifest()
        manifest.update("/a.c", "n", "d1")
        assert manifest.unchanged("/a.c", "n", "d1")
        assert not manifest.unchanged("/a.c", "n", "d2")
        assert not manifest.unchanged("/b.c", "n", "d1")
        manifest.replace_file("/a.c", {"other": "d9"})
        assert not manifest.unchanged("/a.c", "n", "d1")
        assert manifest.unchanged("/a.c", "other", "d9")

    def test_missing_manifest_degrades_with_warning(self, tmp_path):
        loaded = Manifest.load(tmp_path / "absent.json")
        assert loaded.files == {}
        assert "not found" in loaded.warning

    def test_corrupt_json_degrades_with_warning(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ this is not json")
        loaded = Manifest.load(path)
        assert loaded.files == {}
        assert "corrupt" in loaded.warning

    def test_wrong_schema_degrades_with_warning(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"schema": 999, "files": {}}))
        assert "corrupt" in Manifest.load(path).warning

    def test_malformed_files_block_degrades(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(
            {"schema": MANIFEST_SCHEMA_VERSION, "files": {"/a.c": "nope"}}
        ))
        assert "corrupt" in Manifest.load(path).warning

    def test_unreadable_path_degrades_with_warning(self, tmp_path):
        loaded = Manifest.load(tmp_path)  # a directory: OSError on read
        assert loaded.files == {}
        assert "unreadable" in loaded.warning

    def test_default_path_follows_cache_dir(self):
        root = os.environ["REPRO_CACHE_DIR"]  # conftest isolates this
        assert default_manifest_path() == Path(root) / "manifest.json"


# ---------------------------------------------------------------------------
# CLI: sweep --since-manifest
# ---------------------------------------------------------------------------


@pytest.fixture
def two_kernels(tmp_path):
    k1 = tmp_path / "k1.c"
    k2 = tmp_path / "k2.c"
    k1.write_text(heat_source(6, 130))
    k2.write_text(heat_source(6, 258))
    return str(k1), str(k2)


def _sweep(*files, extra=()):
    return main(["sweep", *files, "--threads-list", "2,4",
                 "--chunks-list", "1", "--since-manifest", *extra])


class TestSinceManifestCLI:
    def test_edit_one_kernel_recomputes_only_it(self, two_kernels, capsys):
        k1, k2 = two_kernels

        # Run 1: no manifest yet -> warning + full sweep, manifest written.
        assert _sweep(k1, k2) == 0
        captured = capsys.readouterr()
        assert "not found" in captured.err
        assert captured.out.count("configurations") == 2
        assert "manifest ->" in captured.out

        # Run 2: nothing changed -> every cell skipped outright.
        assert _sweep(k1, k2) == 0
        out = capsys.readouterr().out
        assert out.count("unchanged since manifest") == 2
        assert "configurations" not in out
        assert "100% reused" in out

        # Run 3: touch k2 -> only its cells recompute.
        with open(k2, "w") as fh:
            fh.write(heat_source(8, 258))
        assert _sweep(k1, k2) == 0
        out = capsys.readouterr().out
        assert out.count("unchanged since manifest") == 1
        assert out.count("configurations") == 1
        assert "50% reused" in out

        report = json.loads(default_manifest_path().read_text())
        assert set(report["files"]) == {os.path.abspath(k1),
                                        os.path.abspath(k2)}

    def test_corrupt_manifest_degrades_to_full_sweep(self, two_kernels,
                                                     tmp_path, capsys):
        k1, _ = two_kernels
        manifest = tmp_path / "broken.json"
        manifest.write_text("not json at all")
        assert _sweep(k1, extra=(str(manifest),)) == 0
        captured = capsys.readouterr()
        assert "corrupt" in captured.err
        assert "configurations" in captured.out
        # ...and the manifest was rewritten for the next run.
        assert _sweep(k1, extra=(str(manifest),)) == 0
        out = capsys.readouterr().out
        assert "unchanged since manifest" in out

    def test_without_flag_no_manifest_is_written(self, two_kernels, capsys):
        k1, _ = two_kernels
        assert main(["sweep", k1, "--threads-list", "2",
                     "--chunks-list", "1"]) == 0
        assert "manifest" not in capsys.readouterr().out
        assert not default_manifest_path().exists()
