"""Unit tests for experiment drivers and report rendering (tiny scale)."""

import pytest

from repro.analysis import (
    ExperimentResult,
    ExperimentSuite,
    PAPER_EXPECTATIONS,
    format_cell,
    render_all,
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(scale="tiny")


class TestFormatting:
    def test_format_cell(self):
        assert format_cell(1234567) == "1,234,567"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(0) == "0"
        assert format_cell("x") == "x"

    def test_result_rendering(self):
        r = ExperimentResult("Table X", "demo", ("a", "b"))
        r.add_row(1, 2.5)
        text = r.to_text()
        assert "Table X" in text and "2.5" in text
        md = r.to_markdown()
        assert md.startswith("### Table X")

    def test_row_arity_checked(self):
        r = ExperimentResult("T", "t", ("a", "b"))
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_column_extraction(self):
        r = ExperimentResult("T", "t", ("a", "b"))
        r.add_row(1, 10)
        r.add_row(2, 20)
        assert r.column("b") == [10, 20]

    def test_render_all(self):
        r1 = ExperimentResult("A", "x", ("c",))
        r2 = ExperimentResult("B", "y", ("c",))
        out = render_all([r1, r2])
        assert "A: x" in out and "B: y" in out


class TestTableDrivers:
    def test_table1_shape_and_agreement(self, suite):
        res = suite.run_table1()
        assert res.columns[0] == "threads"
        assert len(res.rows) == len(suite.scale.threads)
        measured = res.column("measured FS %")
        modeled = res.column("modeled FS %")
        for m, mod in zip(measured, modeled):
            assert m > 0 and mod > 0

    def test_table2_dft_heavier_than_heat(self, suite):
        heat = suite.run_table1()
        dft = suite.run_table2()
        assert max(heat.column("modeled FS %")) < max(dft.column("modeled FS %")) + 15

    def test_table3_linreg_modeled_declines(self, suite):
        res = suite.run_table3()
        modeled = res.column("modeled FS %")
        assert modeled[-1] < modeled[0]

    def test_table4_prediction_close_to_model(self, suite):
        res = suite.run_table4()
        for row in res.rows:
            pred_fs, model_fs = row[1], row[4]
            if model_fs:
                assert abs(pred_fs - model_fs) / model_fs < 0.25

    def test_table6_runs(self, suite):
        res = suite.run_table6()
        assert len(res.rows) == len(suite.scale.threads)


class TestFigureDrivers:
    def test_fig2_time_decreases(self, suite):
        res = suite.run_fig2()
        times = res.column("time (ms)")
        assert times[-1] < times[0]

    def test_fig6_linear(self, suite):
        res = suite.run_fig6()
        assert any("R^2" in n for n in res.notes)
        series = res.column("cumulative FS cases")
        assert series == sorted(series)

    def test_fig8_columns(self, suite):
        res = suite.run_fig8()
        assert res.columns == ("threads", "measured %", "modeled %", "predicted %")
        assert len(res.rows) == len(suite.scale.threads)


class TestSuitePlumbing:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            ExperimentSuite(scale="galactic")

    def test_expectations_cover_all_experiments(self, suite):
        ids = {
            "Fig. 2", "Fig. 6", "Table I", "Table II", "Table III",
            "Table IV", "Table V", "Table VI", "Fig. 8", "Fig. 9",
        }
        assert ids <= set(PAPER_EXPECTATIONS)


class TestSupplementaryDrivers:
    def test_victims_table(self, suite):
        res = suite.run_supp_victims()
        rows = {r[0]: r for r in res.rows}
        assert rows["heat"][1] == "b"
        assert rows["dft"][1] in ("out_re", "out_im")
        assert rows["linreg"][1] == "tid_args"

    def test_baseline_table(self, suite):
        res = suite.run_supp_baseline()
        for row in res.rows:
            _, rt_events, model_cases, pred_cases, rt_acc, pred_acc = row
            assert rt_events > 0 and model_cases > 0
            assert pred_acc < rt_acc

    def test_mitigation_table(self, suite):
        res = suite.run_supp_mitigation()
        assert len(res.rows) == 2
        for row in res.rows:
            assert row[3] < row[2]  # every fix must beat the baseline

    def test_run_supplementary_bundle(self, suite):
        out = suite.run_supplementary()
        assert [r.experiment for r in out] == [
            "Supp. victims", "Supp. baseline", "Supp. mitigation"
        ]
