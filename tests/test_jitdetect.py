"""JIT-tier contracts: the event-stream kernel is bit-identical to the
reference detector in both modes (run interpreted via the forced-python
escape hatch, so the automaton is exercised with or without numba),
state export/import round-trips exactly, compile failures demote to the
fast engine losslessly, and the guarded import keeps the no-dependency
path green.  Compiled legs are skipped when numba is absent."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model import jitdetect
from repro.model.detector import FSDetector
from repro.model.fastdetect import (
    MIN_FAST_EVENTS,
    make_detector,
    resolve_engine,
)
from repro.model.jitdetect import JitFSDetector, jit_available, warmup_jit
from repro.resilience.errors import ModelError
from tests.test_fastdetect import (
    _SCALARS,
    _full_state,
    _random_blocks,
    _run_blocks,
)

requires_numba = pytest.mark.skipif(
    not jitdetect.NUMBA_AVAILABLE, reason="numba not installed"
)


@pytest.fixture
def forced_python_kernel(monkeypatch):
    """Run the jit automaton interpreted (no numba needed)."""
    monkeypatch.setattr(jitdetect, "_FORCE_PYTHON_KERNEL", True)


def _big_block(rng, T, refs, steps):
    """One block guaranteed past MIN_FAST_EVENTS so the kernel engages."""
    return tuple(
        rng.integers(0, 24, size=(steps, refs)).astype(np.int64)
        for _ in range(T)
    )


class TestKernelEquivalence:
    """JitFSDetector ≡ FSDetector on arbitrary traces, both modes."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        T=st.integers(1, 4),
        cap=st.sampled_from([4, 8, 32]),
        refs=st.integers(1, 3),
        mode=st.sampled_from(["invalidate", "literal"]),
        streaming=st.booleans(),
    )
    @settings(
        max_examples=40, deadline=None,
        # The fixture only flips an idempotent module flag; not
        # resetting it between examples is harmless.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_trace_equivalence(
        self, forced_python_kernel, seed, T, cap, refs, mode, streaming
    ):
        rng = np.random.default_rng(seed)
        writes = rng.random(refs) < 0.4
        order = list(range(T))
        rng.shuffle(order)
        blocks = _random_blocks(
            rng, T, refs, n_blocks=int(rng.integers(1, 4)),
            max_steps=120, streaming=streaming,
        )
        ref = _run_blocks(FSDetector(T, cap, mode=mode), blocks, writes, order)
        jit = _run_blocks(
            JitFSDetector(T, cap, mode=mode), blocks, writes, order
        )
        assert ref == jit

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_eviction_regime_equivalence(self, forced_python_kernel, seed):
        rng = np.random.default_rng(seed)
        T, cap, refs = 3, 8, 2
        writes = np.array([True, False])
        blocks = _random_blocks(
            rng, T, refs, n_blocks=3, max_steps=200, streaming=True
        )
        ref_d = FSDetector(T, cap)
        jit_d = JitFSDetector(T, cap)
        for mats in blocks:
            ref_d.process_block(mats, writes)
            jit_d.process_block(mats, writes)
            assert _full_state(ref_d) == _full_state(jit_d)
        assert ref_d.stats.evictions > 0

    def test_kernel_engages_on_large_blocks(self, forced_python_kernel):
        rng = np.random.default_rng(3)
        d = JitFSDetector(4, 16)
        d.process_block(
            _big_block(rng, 4, 2, MIN_FAST_EVENTS), np.array([True, False])
        )
        assert d.jit_blocks == 1
        assert d.stats.accesses == 4 * MIN_FAST_EVENTS * 2

    def test_tiny_blocks_use_inherited_paths(self, forced_python_kernel):
        d = JitFSDetector(2, 8)
        mats = (np.zeros((3, 1), dtype=np.int64),) * 2
        d.process_block(mats, np.array([True]))
        assert d.jit_blocks == 0  # below MIN_FAST_EVENTS
        assert d.stats.accesses == 6

    def test_bad_thread_order_rejected(self, forced_python_kernel):
        d = JitFSDetector(2, 8)
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            d.process_block(
                _big_block(rng, 2, 2, MIN_FAST_EVENTS),
                np.array([True, False]),
                thread_order=[1, 1],
            )

    def test_ragged_blocks_equivalent(self, forced_python_kernel):
        """Threads with different row counts (clipped tails) must match
        the reference interleaving exactly."""
        rng = np.random.default_rng(11)
        writes = np.array([True, False])
        mats = tuple(
            rng.integers(0, 20, size=(steps, 2)).astype(np.int64)
            for steps in (150, 97, 150)
        )
        ref_d = FSDetector(3, 8)
        jit_d = JitFSDetector(3, 8)
        ref_d.process_block(mats, writes)
        jit_d.process_block(mats, writes)
        assert jit_d.jit_blocks == 1
        assert _full_state(ref_d) == _full_state(jit_d)


class TestStateRoundTrip:
    """export_state/import_state carry the complete detector state."""

    def test_roundtrip_preserves_future(self, forced_python_kernel):
        rng = np.random.default_rng(5)
        writes = np.array([True, False])
        warm = _big_block(rng, 3, 2, 300)
        cont = _big_block(rng, 3, 2, 250)

        serial = FSDetector(3, 8)
        serial.process_block(warm, writes)
        state = serial.export_state()

        resumed = JitFSDetector(3, 8)
        resumed.import_state(state)
        assert resumed.state_fingerprint() == serial.state_fingerprint()

        serial.process_block(cont, writes)
        base = tuple(getattr(serial.stats, n) for n in _SCALARS)
        resumed.process_block(cont, writes)
        # import_state leaves stats at zero: only the continuation's
        # deltas accrue, and they equal the serial continuation's.
        warm_only = FSDetector(3, 8)
        warm_only.process_block(warm, writes)
        warm_base = tuple(getattr(warm_only.stats, n) for n in _SCALARS)
        for name, total, before in zip(_SCALARS, base, warm_base):
            assert getattr(resumed.stats, name) == total - before, name
        assert resumed.state_fingerprint() == serial.state_fingerprint()

    def test_import_validates(self):
        d = FSDetector(2, 4)
        with pytest.raises(ModelError):
            d.import_state({"version": 1, "stacks": [[[1], [True]]]})
        too_deep = [[list(range(9)), [False] * 9], [[], []]]
        with pytest.raises(ModelError):
            d.import_state({"version": 1, "stacks": too_deep})
        dupes = [[[3, 3], [False, False]], [[], []]]
        with pytest.raises(ModelError):
            d.import_state({"version": 1, "stacks": dupes})


class TestDemotion:
    """A failing kernel demotes to the fast engine, losing nothing."""

    def test_kernel_failure_demotes_and_rolls_back(self, monkeypatch):
        monkeypatch.setattr(jitdetect, "_KERNEL_FAILED", None)
        monkeypatch.setattr(jitdetect, "_COMPILE_SECONDS", None)

        def boom(*args):
            raise RuntimeError("simulated compile failure")

        monkeypatch.setattr(jitdetect, "_get_kernel", lambda: boom)

        rng = np.random.default_rng(9)
        writes = np.array([True, False])
        block = _big_block(rng, 3, 8, 300)

        ref = FSDetector(3, 8)
        jit = JitFSDetector(3, 8)
        ref.process_block(block, writes)
        jit.process_block(block, writes)  # raises inside → demote → fast

        assert jit.jit_blocks == 0
        assert jitdetect._KERNEL_FAILED is not None
        assert not jit_available()
        # No double counting from the rolled-back attempt.
        assert _full_state(ref) == _full_state(jit)

    def test_demoted_tier_resolves_to_fast(self, monkeypatch):
        monkeypatch.setattr(
            jitdetect, "_KERNEL_FAILED", RuntimeError("already demoted")
        )
        assert not jit_available()
        assert resolve_engine("jit", "invalidate", 4) == "fast"
        assert warmup_jit() is None


class TestGuardedImport:
    def test_make_detector_jit_never_fails(self):
        """engine="jit" must build a working detector on every install."""
        d = make_detector("jit", 2, 8)
        d.access(0, 1, True)
        fs = d.access(1, 1, True)
        assert fs == 1

    def test_warmup_forced_python(self, forced_python_kernel):
        assert warmup_jit() == 0.0


@requires_numba
class TestCompiled:
    """Legs that exercise the real numba-compiled kernel."""

    def test_compiled_equivalence_smoke(self):
        rng = np.random.default_rng(21)
        writes = np.array([True, False])
        blocks = [_big_block(rng, 4, 2, 400) for _ in range(3)]
        ref_d = FSDetector(4, 16)
        jit_d = JitFSDetector(4, 16)
        for mats in blocks:
            ref_d.process_block(mats, writes)
            jit_d.process_block(mats, writes)
        assert jit_d.jit_blocks == len(blocks)
        assert _full_state(ref_d) == _full_state(jit_d)

    def test_compile_time_recorded(self):
        assert warmup_jit() is not None
        assert jitdetect.jit_compile_seconds() is not None

    def test_auto_resolves_to_jit(self):
        assert resolve_engine("auto", "invalidate", 8) == "jit"
        assert resolve_engine("jit", "invalidate", 8) == "jit"
