"""Unit tests for OpenMP pragma parsing."""

import pytest

from repro.frontend import PragmaError, parse_omp_pragma


class TestParallelFor:
    def test_combined(self):
        p = parse_omp_pragma("omp parallel for")
        assert p.is_parallel_for

    def test_for_only(self):
        p = parse_omp_pragma("omp for")
        assert p.is_for and not p.is_parallel

    def test_private(self):
        p = parse_omp_pragma("omp parallel for private(i, j)")
        assert p.private == ("i", "j")

    def test_schedule_static_chunk(self):
        p = parse_omp_pragma("omp parallel for schedule(static, 16)")
        assert p.schedule.kind == "static" and p.schedule.chunk == 16

    def test_schedule_static_no_chunk(self):
        p = parse_omp_pragma("omp parallel for schedule(static)")
        assert p.schedule.chunk is None

    def test_num_threads(self):
        p = parse_omp_pragma("omp parallel for num_threads(8)")
        assert p.num_threads == 8

    def test_everything_together(self):
        p = parse_omp_pragma(
            "omp parallel for private(i,j) schedule(static,1) num_threads(4)"
        )
        assert p.is_parallel_for
        assert p.private == ("i", "j")
        assert p.schedule.chunk == 1
        assert p.num_threads == 4


class TestRejections:
    def test_dynamic_schedule_rejected(self):
        with pytest.raises(PragmaError, match="static"):
            parse_omp_pragma("omp parallel for schedule(dynamic, 4)")

    def test_guided_rejected(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("omp for schedule(guided)")

    def test_symbolic_chunk_rejected(self):
        with pytest.raises(PragmaError, match="integer"):
            parse_omp_pragma("omp for schedule(static, CHUNK)")

    def test_zero_chunk_rejected(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("omp for schedule(static, 0)")

    def test_bad_num_threads(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("omp parallel for num_threads(n)")

    def test_private_requires_args(self):
        with pytest.raises(PragmaError):
            parse_omp_pragma("omp parallel for private")


class TestNonLoopPragmas:
    def test_not_omp(self):
        assert parse_omp_pragma("pack(1)") is None

    def test_omp_barrier_passthrough(self):
        p = parse_omp_pragma("omp barrier")
        assert p is not None and not p.is_parallel_for

    def test_unknown_clauses_recorded(self):
        p = parse_omp_pragma("omp parallel for reduction(+:s)")
        assert p.is_parallel_for
        assert any("reduction" in u for u in p.unknown)
