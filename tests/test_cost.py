"""Unit tests for Eq. (1) integration and Eq. (5) percentages."""

import pytest

from repro.costmodels import TotalCostModel
from repro.machine import paper_machine
from repro.model import (
    FalseSharingModel,
    fs_overhead_percent,
    measured_fs_percent,
    predicted_fs_percent,
)
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def model(machine):
    return FalseSharingModel(machine)


class TestMeasuredPercent:
    def test_basic(self):
        assert measured_fs_percent(10.0, 9.0) == pytest.approx(10.0)

    def test_no_difference(self):
        assert measured_fs_percent(5.0, 5.0) == 0.0

    def test_negative_when_nfs_slower(self):
        assert measured_fs_percent(5.0, 6.0) < 0

    def test_rejects_zero_tfs(self):
        with pytest.raises(ValueError):
            measured_fs_percent(0.0, 1.0)


class TestModeledPercent:
    def test_positive_for_fs_loop(self, machine, model):
        nest = make_copy_nest(n=128)
        r_fs = model.analyze(nest, 4, chunk=1)
        r_nfs = model.analyze(nest, 4, chunk=8)
        rep = fs_overhead_percent(r_fs, r_nfs, machine, nest)
        assert 0 < rep.percent < 100
        assert rep.fs_cases > rep.nfs_cases

    def test_zero_when_equal(self, machine, model):
        nest = make_copy_nest(n=128)
        r = model.analyze(nest, 4, chunk=8)
        rep = fs_overhead_percent(r, r, machine, nest)
        assert rep.percent == 0.0

    def test_thread_mismatch_rejected(self, machine, model):
        nest = make_copy_nest(n=128)
        r2 = model.analyze(nest, 2, chunk=1)
        r4 = model.analyze(nest, 4, chunk=1)
        with pytest.raises(ValueError):
            fs_overhead_percent(r2, r4, machine, nest)

    def test_shared_total_model_accepted(self, machine, model):
        nest = make_copy_nest(n=128)
        tm = TotalCostModel(machine)
        r_fs = model.analyze(nest, 4, chunk=1)
        r_nfs = model.analyze(nest, 4, chunk=8)
        a = fs_overhead_percent(r_fs, r_nfs, machine, nest, tm)
        b = fs_overhead_percent(r_fs, r_nfs, machine, nest)
        assert a.percent == pytest.approx(b.percent)

    def test_report_str(self, machine, model):
        nest = make_copy_nest(n=128)
        r_fs = model.analyze(nest, 4, chunk=1)
        r_nfs = model.analyze(nest, 4, chunk=8)
        text = str(fs_overhead_percent(r_fs, r_nfs, machine, nest))
        assert "T=4" in text and "%" in text


class TestPredictedPercent:
    def test_matches_modeled_when_counts_match(self, machine, model):
        nest = make_copy_nest(n=128)
        r_fs = model.analyze(nest, 4, chunk=1)
        r_nfs = model.analyze(nest, 4, chunk=8)
        tm = TotalCostModel(machine)
        ref_cycles = tm.breakdown(nest, num_threads=4).total
        pct = predicted_fs_percent(
            float(r_fs.fs_cases), float(r_nfs.fs_cases), r_fs, machine, ref_cycles
        )
        modeled = fs_overhead_percent(r_fs, r_nfs, machine, nest).percent
        assert pct == pytest.approx(modeled, rel=0.01)

    def test_zero_prediction(self, machine, model):
        nest = make_copy_nest(n=128)
        r = model.analyze(nest, 4, chunk=1)
        assert predicted_fs_percent(0.0, 0.0, r, machine, 1e6) == 0.0
