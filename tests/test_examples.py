"""Smoke tests: the shipped examples must run to completion.

Each example is executed as a subprocess (the way a user runs it); the
faster ones run in every test session, the heavier ones are marked slow
so ``pytest -m "not slow"`` stays quick.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"

FAST = [
    "quickstart.py",
    "trace_and_replay.py",
    "reproduce_table.py",
]
SLOW = [
    "compiler_pipeline.py",
    "diagnose_custom_kernel.py",
    "pad_shared_structs.py",
    "tune_openmp_schedule.py",
    "whatif_landscape.py",
]


def run_example(name: str, cwd: Path) -> subprocess.CompletedProcess:
    # The subprocess does not inherit this test run's import path (the
    # repo installs from src/), so propagate it explicitly: otherwise
    # `import repro` fails for users running from a source checkout.
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=cwd,
        env=env,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name, tmp_path):
    proc = run_example(name, tmp_path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{name} produced no output"


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_examples_run(name, tmp_path):
    proc = run_example(name, tmp_path)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW), (
        "new example files must be added to FAST or SLOW above"
    )
