"""Unit tests for memory-trace recording and replay."""

import numpy as np
import pytest

from repro.kernels import heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from repro.sim import (
    iter_trace_accesses,
    load_trace,
    record_trace,
    replay_fs_detection,
)
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestRecordLoad:
    def test_round_trip_metadata(self, machine, tmp_path):
        nest = make_copy_nest(n=64)
        path = tmp_path / "copy.npz"
        meta = record_trace(nest, 2, machine, path, chunk=1)
        trace = load_trace(path)
        assert trace.meta == meta
        assert trace.meta.num_threads == 2
        assert trace.meta.write_mask == (False, True)
        assert trace.meta.steps_per_thread == (32, 32)
        assert trace.meta.total_accesses == 128

    def test_addresses_match_generator(self, machine, tmp_path):
        nest = make_copy_nest(n=64)
        path = tmp_path / "copy.npz"
        record_trace(nest, 2, machine, path, chunk=1)
        trace = load_trace(path)
        # Thread 0 loads a[0], a[2], ...: stride 16 bytes.
        a_col = trace.addresses[0][:, 0]
        assert ((a_col[1:] - a_col[:-1]) == 16).all()

    def test_array_map_recorded(self, machine, tmp_path):
        nest = make_copy_nest(n=64)
        path = tmp_path / "copy.npz"
        meta = record_trace(nest, 2, machine, path)
        names = [a[0] for a in meta.arrays]
        assert names == ["a", "b"]
        assert all(size == 512 for _, _, size in meta.arrays)

    def test_max_steps_prefix(self, machine, tmp_path):
        nest = make_copy_nest(n=64)
        meta = record_trace(nest, 2, machine, tmp_path / "p.npz", max_steps=5)
        assert meta.steps_per_thread == (5, 5)

    def test_version_check(self, machine, tmp_path):
        import json

        nest = make_copy_nest(n=8)
        path = tmp_path / "v.npz"
        record_trace(nest, 2, machine, path)
        # Corrupt the version field.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        blob = json.loads(bytes(payload["meta_json"].tobytes()).decode())
        blob["version"] = 99
        payload["meta_json"] = np.frombuffer(
            json.dumps(blob).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestReplay:
    def test_interleaving_is_lockstep(self, machine, tmp_path):
        nest = make_copy_nest(n=16)
        path = tmp_path / "i.npz"
        record_trace(nest, 2, machine, path, chunk=1)
        trace = load_trace(path)
        triples = list(iter_trace_accesses(trace))
        # Step 0: thread 0's two refs then thread 1's two refs.
        assert [t for t, _, _ in triples[:4]] == [0, 0, 1, 1]
        assert [w for _, _, w in triples[:4]] == [False, True, False, True]

    def test_replay_matches_direct_model(self, machine, tmp_path):
        """Trace replay through the detector == direct model analysis."""
        k = heat_diffusion(rows=5, cols=258)
        path = tmp_path / "heat.npz"
        record_trace(k.nest, 4, machine, path, chunk=1)
        trace = load_trace(path)
        detector = replay_fs_detection(trace, machine.model_stack_lines)
        direct = FalseSharingModel(machine).analyze(k.nest, 4, chunk=1)
        assert detector.stats.fs_cases == direct.fs_cases
        assert detector.stats.fs_by_line == direct.stats.fs_by_line
