"""The analysis service (``repro.service``): tenants, queue, HTTP API.

The HTTP tests boot the real daemon (ephemeral port, in-thread via
``stop_event``) and drive it with the real ``ServiceClient`` — the
same path the CI smoke job and docs walkthrough use.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.resilience.errors import QuotaExceededError, UsageError
from repro.service import (
    JobQueue,
    JobRequest,
    ServeConfig,
    ServiceClient,
    ServiceClientError,
    TenantConfig,
    TenantRegistry,
    TokenBucket,
    serve,
)

KERNEL = """
#define N 64
double a[N];
double b[N];

void copy(void) {
    int i;
    #pragma omp parallel for schedule(static,1)
    for (i = 0; i < N; i++) {
        b[i] = a[i] + 1.0;
    }
}
"""


# ---------------------------------------------------------------------------
# Tenants + rate limiting
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(rate_per_s=2.0, burst=2,
                             clock=lambda: clock["t"])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock["t"] = 0.5  # one token accrues
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = {"t": 0.0}
        bucket = TokenBucket(rate_per_s=100.0, burst=3,
                             clock=lambda: clock["t"])
        clock["t"] = 60.0
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(UsageError):
            TokenBucket(rate_per_s=0, burst=1)
        with pytest.raises(UsageError):
            TokenBucket(rate_per_s=1, burst=0)


class TestTenantRegistry:
    def test_authenticate_by_key_and_keyless(self):
        reg = TenantRegistry([
            TenantConfig(name="alice", api_key="sk-a"),
            TenantConfig(name="public", api_key=None),
        ])
        assert reg.authenticate("sk-a").name == "alice"
        assert reg.authenticate(None).name == "public"
        assert reg.authenticate("sk-wrong") is None

    def test_keys_required_when_no_keyless_tenant(self):
        reg = TenantRegistry([TenantConfig(name="a", api_key="sk-a")])
        assert reg.authenticate(None) is None

    def test_duplicate_names_and_keys_rejected(self):
        with pytest.raises(UsageError) as exc:
            TenantRegistry([TenantConfig(name="a", api_key="x"),
                            TenantConfig(name="a", api_key="y")])
        assert exc.value.code == "REPRO-U102"
        with pytest.raises(UsageError):
            TenantRegistry([TenantConfig(name="a", api_key="x"),
                            TenantConfig(name="b", api_key="x")])
        with pytest.raises(UsageError):
            TenantRegistry([TenantConfig(name="a"), TenantConfig(name="b")])

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": [
            {"name": "alice", "api_key": "sk-a", "max_queued_jobs": 3},
        ]}), encoding="utf-8")
        reg = TenantRegistry.from_file(path)
        assert reg.authenticate("sk-a").max_queued_jobs == 3

    def test_from_file_rejects_junk(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(UsageError) as exc:
            TenantRegistry.from_file(bad)
        assert exc.value.code == "REPRO-U102"
        with pytest.raises(UsageError):
            TenantRegistry.from_file(tmp_path / "missing.json")
        shaped = tmp_path / "shaped.json"
        shaped.write_text('{"tenants": {}}', encoding="utf-8")
        with pytest.raises(UsageError):
            TenantRegistry.from_file(shaped)

    def test_unknown_tenant_fields_rejected(self):
        with pytest.raises(UsageError):
            TenantConfig.from_dict({"name": "a", "max_jobs": 1})


# ---------------------------------------------------------------------------
# Job requests
# ---------------------------------------------------------------------------


class TestJobRequest:
    def test_round_trip(self):
        req = JobRequest(source=KERNEL, threads=(2, 4), chunks=(1,),
                         macros={"N": 32}, deadline_s=5.0)
        clone = JobRequest.from_dict(req.to_dict())
        assert clone == req

    def test_rejects_malformed(self):
        for doc in (
            "not a dict",
            {"source": 42},
            {"source": KERNEL, "threads": []},
            {"source": KERNEL, "mode": "bogus"},
            {"source": KERNEL, "surprise": 1},
            {"source": ""},
        ):
            with pytest.raises(UsageError) as exc:
                JobRequest.from_dict(doc)
            assert exc.value.code == "REPRO-U101"

    def test_budget_built_only_when_asked(self):
        assert JobRequest(source=KERNEL).budget() is None
        budget = JobRequest(source=KERNEL, max_iters=100).budget()
        assert budget is not None and budget.max_steps == 100


# ---------------------------------------------------------------------------
# Queue admission (no HTTP)
# ---------------------------------------------------------------------------


def _queue(tenant: TenantConfig, **kwargs) -> JobQueue:
    from repro.engine import Engine

    return JobQueue(TenantRegistry([tenant]), Engine(jobs=1), **kwargs)


class TestAdmission:
    def test_queued_jobs_quota(self):
        tenant = TenantConfig(name="t", max_queued_jobs=1,
                              rate_per_s=1000, burst=1000)
        queue = _queue(tenant)  # workers never started: jobs stay queued
        queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                        chunks=(1,)))
        with pytest.raises(QuotaExceededError) as exc:
            queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                            chunks=(1,)))
        assert exc.value.code == "REPRO-R101"

    def test_rate_limit(self):
        tenant = TenantConfig(name="t", rate_per_s=0.001, burst=1)
        queue = _queue(tenant)
        queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                        chunks=(1,)))
        with pytest.raises(QuotaExceededError) as exc:
            queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                            chunks=(1,)))
        assert exc.value.code == "REPRO-R102"

    def test_cells_budget(self):
        tenant = TenantConfig(name="t", max_cells_per_job=2,
                              rate_per_s=1000, burst=1000)
        queue = _queue(tenant)
        with pytest.raises(QuotaExceededError) as exc:
            queue.submit(tenant, JobRequest(source=KERNEL,
                                            threads=(2, 4), chunks=(1, 2)))
        assert exc.value.code == "REPRO-R103"
        assert exc.value.context["quota"] == "cells"

    def test_steps_budget(self):
        tenant = TenantConfig(name="t", max_steps_per_job=1,
                              rate_per_s=1000, burst=1000)
        queue = _queue(tenant)
        with pytest.raises(QuotaExceededError) as exc:
            queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                            chunks=(1,)))
        assert exc.value.code == "REPRO-R103"
        assert exc.value.context["quota"] == "steps"

    def test_parse_errors_surface_at_submit(self):
        from repro.resilience.errors import ReproError

        tenant = TenantConfig(name="t", rate_per_s=1000, burst=1000)
        queue = _queue(tenant)
        with pytest.raises(ReproError) as exc:
            queue.submit(tenant, JobRequest(source="void f() { ??? }"))
        assert exc.value.code.startswith("REPRO-F")

    def test_queue_state_round_trip(self, tmp_path):
        tenant = TenantConfig(name="t", rate_per_s=1000, burst=1000)
        state = tmp_path / "queue.json"
        queue = _queue(tenant, state_path=state)
        job = queue.submit(tenant, JobRequest(source=KERNEL, threads=(2,),
                                              chunks=(1,)))
        assert queue.save_state() == state
        restored = _queue(tenant, state_path=state)
        assert restored.load_state() == 1
        clone = restored.get(job.id)
        assert clone is not None and clone.request == job.request
        assert not state.exists()  # consumed: no double-queue on crash loop


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    """A live daemon on an ephemeral port with two tenants."""
    tenants = tmp_path / "tenants.json"
    tenants.write_text(json.dumps({"tenants": [
        {"name": "alice", "api_key": "sk-alice",
         "rate_per_s": 1000, "burst": 1000},
        {"name": "bob", "api_key": "sk-bob",
         "rate_per_s": 1000, "burst": 1000},
    ]}), encoding="utf-8")
    config = ServeConfig(
        host="127.0.0.1", port=0, workers=1, concurrency=1, batch_cells=4,
        tenants_file=str(tenants), state_file=str(tmp_path / "state.json"),
        store_dir=str(tmp_path / "store"),
    )
    stop = threading.Event()
    bound: dict = {}
    ready = threading.Event()

    def _on_ready(server):
        bound["port"] = server.server_address[1]
        ready.set()

    thread = threading.Thread(
        target=serve, args=(config,),
        kwargs={"ready": _on_ready, "stop_event": stop}, daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=15), "daemon did not come up"
    client = ServiceClient(
        f"http://127.0.0.1:{bound['port']}", api_key="sk-alice",
        timeout_s=60,
    )
    client.wait_ready()
    yield client
    stop.set()
    thread.join(timeout=60)
    assert not thread.is_alive(), "daemon did not drain"


class TestHTTP:
    def test_submit_poll_results(self, service):
        job = service.submit(KERNEL, threads=[2, 4], chunks=[1, 2])
        assert job["cells"] == 4
        final = service.wait(job["id"])
        assert final["status"] == "done"
        assert final["cells"]["done"] == 4
        rows = service.results(job["id"])["rows"]
        cells = [r for r in rows if r["type"] == "cell"]
        assert len(cells) == 4
        assert all("fidelity" in c and "fs_share" in c for c in cells)
        assert rows[-1]["type"] == "summary"
        assert "best" in rows[-1]

    def test_streaming_ndjson(self, service):
        job = service.submit(KERNEL, threads=[2], chunks=[1, 2])
        rows = list(service.stream(job["id"]))
        assert [r["type"] for r in rows[:-1]] == ["cell"] * (len(rows) - 1)
        assert rows[-1]["type"] == "summary"

    def test_warm_resubmit_hits_cache(self, service):
        first = service.submit(KERNEL, threads=[2, 4], chunks=[1, 2])
        service.wait(first["id"])
        second = service.submit(KERNEL, threads=[2, 4], chunks=[1, 2])
        final = service.wait(second["id"])
        assert final["cells"]["from_cache"] == 4  # 100% cache-served
        assert service.metric_value(
            "service_cells_total", {"status": "from_cache"}
        ) >= 4

    def test_auth_required(self, service):
        anon = ServiceClient(service.base_url)  # no key, no key-less tenant
        with pytest.raises(ServiceClientError) as exc:
            anon.submit(KERNEL)
        assert exc.value.status == 401

    def test_tenant_isolation_404(self, service):
        job = service.submit(KERNEL, threads=[2], chunks=[1])
        bob = ServiceClient(service.base_url, api_key="sk-bob")
        for call in (lambda: bob.status(job["id"]),
                     lambda: bob.results(job["id"]),
                     lambda: bob.cancel(job["id"])):
            with pytest.raises(ServiceClientError) as exc:
                call()
            assert exc.value.status == 404
        # Owner still sees it.
        assert service.status(job["id"])["id"] == job["id"]

    def test_frontend_error_maps_to_422(self, service):
        with pytest.raises(ServiceClientError) as exc:
            service.submit("int x = banana;;; not C")
        assert exc.value.status == 422
        assert exc.value.code.startswith("REPRO-F")

    def test_malformed_body_maps_to_400(self, service):
        with pytest.raises(ServiceClientError) as exc:
            service.submit(KERNEL, mode="bogus")
        assert exc.value.status == 400
        assert exc.value.code == "REPRO-U101"

    def test_unknown_routes_404(self, service):
        with pytest.raises(ServiceClientError) as exc:
            service._json("GET", "/v1/nope")
        assert exc.value.status == 404

    def test_healthz_and_metrics(self, service):
        health = service.healthz()
        assert health["status"] == "ready" and health["tenants"] == 2
        assert health["reasons"] == []
        text = service.metrics()
        assert "# TYPE service_requests_total counter" in text
        assert service.metric_value(
            "service_requests_total",
            {"method": "GET", "route": "/healthz", "status": "200"},
        ) >= 1

    def test_cancel_queued_job(self, service):
        # Saturate the single worker with a real job, then cancel a
        # queued one behind it.
        running = service.submit(KERNEL, threads=[2, 4, 8],
                                 chunks=[1, 2, 4, 8])
        victim = service.submit(KERNEL, threads=[2], chunks=[1],
                                predictor_runs=9)
        out = service.cancel(victim["id"])
        assert out["status"] in ("cancelled", "queued", "running")
        final = service.wait(victim["id"])
        assert final["status"] == "cancelled"
        service.wait(running["id"])

    def test_job_listing_scoped_to_tenant(self, service):
        service.submit(KERNEL, threads=[2], chunks=[1])
        bob = ServiceClient(service.base_url, api_key="sk-bob")
        assert bob.jobs() == []
        assert len(service.jobs()) >= 1


class TestRateLimit429:
    def test_429_with_stable_code(self, tmp_path):
        tenants = tmp_path / "tenants.json"
        tenants.write_text(json.dumps({"tenants": [
            {"name": "slow", "api_key": "sk-slow",
             "rate_per_s": 0.001, "burst": 1},
        ]}), encoding="utf-8")
        config = ServeConfig(host="127.0.0.1", port=0, workers=1,
                             concurrency=1, tenants_file=str(tenants),
                             store_dir=str(tmp_path / "store"))
        stop = threading.Event()
        ready = threading.Event()
        bound: dict = {}

        def _on_ready(server):
            bound["port"] = server.server_address[1]
            ready.set()

        thread = threading.Thread(
            target=serve, args=(config,),
            kwargs={"ready": _on_ready, "stop_event": stop}, daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=15)
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{bound['port']}", api_key="sk-slow"
            )
            client.wait_ready()
            client.submit(KERNEL, threads=[2], chunks=[1])
            with pytest.raises(ServiceClientError) as exc:
                client.submit(KERNEL, threads=[2], chunks=[1])
            assert exc.value.status == 429
            assert exc.value.code == "REPRO-R102"
            # The registry is process-global, so other tests may have
            # tallied rejections too — presence and monotonicity are
            # what this endpoint guarantees.
            assert client.metric_value(
                "service_rejections_total", {"quota": "rate"}
            ) >= 1
        finally:
            stop.set()
            thread.join(timeout=60)


class TestDrain:
    def test_sigterm_style_drain_persists_queue(self, tmp_path):
        """A stop signal parks unfinished jobs in the state file; the
        next daemon generation restores and completes them warm."""
        state = tmp_path / "state.json"
        config = ServeConfig(
            host="127.0.0.1", port=0, workers=1, concurrency=1,
            batch_cells=1, state_file=str(state),
            store_dir=str(tmp_path / "store"),
        )

        def boot(cfg):
            stop = threading.Event()
            ready = threading.Event()
            bound: dict = {}

            def _on_ready(server):
                bound["port"] = server.server_address[1]
                ready.set()

            thread = threading.Thread(
                target=serve, args=(cfg,),
                kwargs={"ready": _on_ready, "stop_event": stop},
                daemon=True,
            )
            thread.start()
            assert ready.wait(timeout=15)
            client = ServiceClient(f"http://127.0.0.1:{bound['port']}",
                                   timeout_s=60)
            client.wait_ready()
            return client, stop, thread

        client, stop, thread = boot(config)
        # A backlog the single slow-ticking worker cannot finish
        # before the drain lands.
        ids = [
            client.submit(KERNEL, threads=[2, 4, 8], chunks=[1, 2, 4],
                          predictor_runs=3 + i)["id"]
            for i in range(6)
        ]
        stop.set()
        thread.join(timeout=60)
        assert not thread.is_alive()

        if not state.exists():
            pytest.skip("queue fully drained before the signal landed")
        persisted = json.loads(state.read_text(encoding="utf-8"))
        assert persisted["jobs"], "drain persisted an empty queue"
        parked = {j["id"] for j in persisted["jobs"]}
        assert parked <= set(ids)

        client2, stop2, thread2 = boot(config)
        try:
            restored = {j["id"] for j in client2.jobs()}
            assert parked <= restored
            for job_id in parked:
                final = client2.wait(job_id, timeout_s=90)
                assert final["status"] == "done"
        finally:
            stop2.set()
            thread2.join(timeout=60)
