"""Unit tests for the runtime (trace-based) FS detector baseline."""

import pytest

from repro.baselines import RuntimeFSDetector
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
)
from repro.kernels import build_linreg_nest, heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def detector(machine):
    return RuntimeFSDetector(machine)


def true_sharing_nest(n=32):
    """Every thread accumulates into s[0]: pure TRUE sharing."""
    s = ArrayDecl.create("s", DOUBLE, (8,))
    a = ArrayDecl.create("src", DOUBLE, (n,))
    i = AffineExpr.var("i")
    zero = AffineExpr.const_expr(0)
    stmt = Assign(
        ArrayRef(s, (zero,), is_write=True),
        LoadExpr(ArrayRef(a, (i,))),
        augmented="+",
    )
    return ParallelLoopNest(
        "reduce.i", Loop.create("i", 0, n, [stmt]), "i"
    )


class TestClassification:
    def test_copy_kernel_is_pure_false_sharing(self, detector):
        report = detector.run(make_copy_nest(n=128), 4, chunk=1)
        assert report.stats.false_sharing_events > 0
        assert report.stats.true_sharing_events == 0

    def test_reduction_is_pure_true_sharing(self, detector):
        report = detector.run(true_sharing_nest(), 4, chunk=1)
        assert report.stats.true_sharing_events > 0
        assert report.stats.false_sharing_events == 0

    def test_aligned_chunks_clean(self, detector):
        report = detector.run(make_copy_nest(n=128), 4, chunk=8)
        assert report.stats.sharing_events == 0

    def test_single_thread_clean(self, detector):
        report = detector.run(make_copy_nest(n=128), 1, chunk=1)
        assert report.stats.sharing_events == 0


class TestAgainstModel:
    def test_same_victims_as_model(self, detector, machine):
        nest = build_linreg_nest(48, 8)
        report = detector.run(nest, 4, chunk=1)
        model = FalseSharingModel(machine).analyze(nest, 4, chunk=1)
        assert report.victim_arrays()[0][0] == "tid_args"
        assert model.victim_arrays()[0].name == "tid_args"

    def test_event_counts_same_order_of_magnitude(self, detector, machine):
        """The runtime view (last-writer tracking) and the model's
        cache-state view count the same phenomenon: for a write-write
        ping-pong kernel they agree within a small factor."""
        nest = make_copy_nest(n=256)
        rt = detector.run(nest, 4, chunk=1)
        m = FalseSharingModel(machine).analyze(nest, 4, chunk=1)
        assert m.fs_cases > 0
        ratio = rt.stats.false_sharing_events / m.fs_cases
        assert 0.3 < ratio < 3.0

    def test_runtime_pays_full_trace_cost(self, detector):
        """The baseline's weakness the paper exploits: it must see every
        access — no prefix sampling."""
        k = heat_diffusion(rows=5, cols=258)
        report = detector.run(k.nest, 4, chunk=1)
        per_iter = len(k.nest.innermost_accesses())
        assert report.stats.accesses == k.nest.total_iterations() * per_iter


class TestPlumbing:
    def test_chunk_override(self, detector):
        nest = make_copy_nest(n=64, chunk=1)
        report = detector.run(nest, 2, chunk=8)
        assert report.chunk == 8
        assert nest.schedule.chunk == 1

    def test_max_steps_prefix(self, detector):
        report = detector.run(make_copy_nest(n=128), 4, chunk=1, max_steps=4)
        assert report.stats.accesses == 4 * 4 * 2  # steps x threads x refs

    def test_rejects_bad_threads(self, detector):
        with pytest.raises(ValueError):
            detector.run(make_copy_nest(), 0)

    def test_lines_with_fs_counted(self, detector):
        report = detector.run(make_copy_nest(n=128), 4, chunk=1)
        assert report.stats.lines_with_false_sharing > 0
        assert (
            report.stats.lines_with_false_sharing
            <= len(report.stats.fs_by_line) + 1
        )
