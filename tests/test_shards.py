"""Tests for :mod:`repro.engine.shards` — partitioned batch scheduling.

The headline property (a satellite of the sharded-sweep work): running
the same batch at ``--shards 1``, ``2`` and ``8`` produces identical
result sets *and* identical result-store contents — sharding is an
execution detail, never an identity one.  Around it: the pure
:func:`~repro.engine.shards.shard_of` placement function, deterministic
input-order merging, error propagation, per-shard metrics, the
``on_outcome`` locking contract and the :func:`make_engine` factory the
CLI/runner/service share.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    Engine,
    Job,
    MemCache,
    ResultStore,
    ShardedEngine,
    make_engine,
    shard_of,
)
from repro.obs import get_registry
from repro.resilience.errors import EngineError


def echo_job(value, label="echo") -> Job:
    return Job("engine.test.echo", {"value": value}, label=label)


def _store_contents(store: ResultStore) -> dict:
    return {path.stem: store.get(path.stem) for path in store._entries()}


def _inline_sharded(shards: int, store: ResultStore, **kw) -> ShardedEngine:
    """Thread-parallel sharded engine (no subprocesses) for fast tests."""
    return ShardedEngine(shards=shards, store=store, mem_cache=MemCache(),
                         inline=True, **kw)


class TestShardOf:
    def test_pure_and_in_range(self):
        keys = [echo_job(i).key() for i in range(64)]
        for shards in (1, 2, 3, 8):
            placed = [shard_of(k, shards) for k in keys]
            assert placed == [shard_of(k, shards) for k in keys]
            assert all(0 <= s < shards for s in placed)

    def test_single_shard_owns_everything(self):
        assert shard_of("f" * 64, 1) == 0
        assert shard_of("0" * 64, 0) == 0

    def test_spreads_across_shards(self):
        keys = [echo_job(i).key() for i in range(256)]
        used = {shard_of(k, 8) for k in keys}
        assert used == set(range(8))


class TestPartition:
    def test_preserves_input_order_within_buckets(self, tmp_path):
        engine = _inline_sharded(4, ResultStore(tmp_path))
        jobs = [echo_job(i) for i in range(32)]
        buckets = engine.partition(jobs)
        assert sorted(i for b in buckets for i in b) == list(range(32))
        for bucket in buckets:
            assert bucket == sorted(bucket)

    def test_duplicate_keys_share_a_shard(self, tmp_path):
        engine = _inline_sharded(8, ResultStore(tmp_path))
        jobs = [echo_job("same", label=f"dup{i}") for i in range(6)]
        buckets = engine.partition(jobs)
        assert sum(1 for b in buckets if b) == 1


class TestShardedRun:
    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.integers(min_value=0, max_value=9), max_size=24))
    def test_shard_count_never_changes_results_or_store(
        self, tmp_path_factory, values
    ):
        """--shards 1/2/8 → identical result sets, identical stores."""
        jobs = [echo_job(v, label=f"j{i}") for i, v in enumerate(values)]
        docs, stores = [], []
        root = tmp_path_factory.mktemp("shard-prop")
        for shards in (1, 2, 8):
            store = ResultStore(root / f"s{shards}")
            store.clear()  # hypothesis reuses the dir across examples
            outcomes = _inline_sharded(shards, store).run(jobs)
            assert [o.job.label for o in outcomes] == [j.label for j in jobs]
            docs.append(json.dumps([o.result for o in outcomes],
                                   sort_keys=True))
            stores.append(_store_contents(store))
        assert docs[0] == docs[1] == docs[2]
        assert stores[0] == stores[1] == stores[2]

    def test_outcomes_merge_in_input_order(self, tmp_path):
        engine = _inline_sharded(4, ResultStore(tmp_path))
        jobs = [echo_job(i) for i in range(16)]
        outcomes = engine.run(jobs)
        assert [o.result["value"] for o in outcomes] == list(range(16))

    def test_empty_batch(self, tmp_path):
        assert _inline_sharded(2, ResultStore(tmp_path)).run([]) == []

    def test_duplicate_jobs_dedupe_within_the_batch(self, tmp_path):
        engine = _inline_sharded(8, ResultStore(tmp_path))
        outcomes = engine.run(
            [echo_job("same", label=f"d{i}") for i in range(4)]
        )
        computed = [o for o in outcomes if not o.from_cache]
        deduped = [o for o in outcomes if o.cache_tier == "dedupe"]
        assert len(computed) == 1 and len(deduped) == 3

    def test_failure_surfaces_per_job_not_per_batch(self, tmp_path):
        engine = _inline_sharded(4, ResultStore(tmp_path), retries=0)
        bad = Job("engine.test.fail", {"message": "kaput"})
        outcomes = engine.run([echo_job("ok"), bad])
        assert outcomes[0].ok
        assert not outcomes[1].ok and "kaput" in outcomes[1].error

    def test_run_strict_raises_on_failure(self, tmp_path):
        engine = _inline_sharded(2, ResultStore(tmp_path), retries=0)
        with pytest.raises(EngineError):
            engine.run_strict([Job("engine.test.fail", {"message": "no"})])

    def test_on_outcome_fires_once_per_job(self, tmp_path):
        engine = _inline_sharded(4, ResultStore(tmp_path))
        seen = []  # plain list: the callback lock must make this safe
        jobs = [echo_job(i) for i in range(12)]
        engine.run(jobs, on_outcome=lambda o: seen.append(o.job.label))
        assert sorted(seen) == sorted(j.label for j in jobs)

    def test_shards_share_one_store_and_memory_tier(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ShardedEngine(shards=4, store=store, mem_cache=MemCache(),
                               inline=True)
        cold = engine.run([echo_job(i) for i in range(8)])
        assert all(not o.from_cache for o in cold)
        warm = engine.run([echo_job(i) for i in range(8)])
        assert all(o.cache_tier == "mem" for o in warm)
        for shard in engine.engines:
            assert shard.store is store
            assert shard.mem_cache is engine.mem_cache

    def test_close_and_reopen(self, tmp_path):
        engine = _inline_sharded(2, ResultStore(tmp_path))
        engine.run([echo_job(1)])
        engine.close()
        engine.close()  # idempotent
        engine.reopen()
        assert engine.run([echo_job(2)])[0].ok


class TestShardMetrics:
    def test_per_shard_counters_and_imbalance(self, tmp_path):
        engine = _inline_sharded(4, ResultStore(tmp_path))
        jobs = [echo_job(i) for i in range(32)]
        before = get_registry().snapshot()["counters"]
        engine.run(jobs)
        snap = get_registry().snapshot()
        dispatched = sum(
            value - before.get(key, 0.0)
            for key, value in snap["counters"].items()
            if key.startswith("engine_shard_jobs_total{")
        )
        assert dispatched == len(jobs)
        imbalance = snap["gauges"]["engine_shard_imbalance"]
        assert imbalance >= 0.0
        utils = [
            value for key, value in snap["gauges"].items()
            if key.startswith("engine_shard_utilization{")
        ]
        assert utils and all(0.0 <= u <= 1.0 for u in utils)


class TestMakeEngine:
    def test_single_shard_builds_plain_engine(self, tmp_path):
        engine = make_engine(jobs=2, shards=1, store=ResultStore(tmp_path))
        assert isinstance(engine, Engine)
        assert engine.jobs == 2

    def test_multi_shard_builds_sharded_engine(self, tmp_path):
        engine = make_engine(jobs=2, shards=4, store=ResultStore(tmp_path))
        assert isinstance(engine, ShardedEngine)
        assert engine.jobs == 8  # jobs are per shard
        engine.close(drain=False)

    def test_mem_cache_mb_sizes_the_memory_tier(self, tmp_path):
        engine = make_engine(store=ResultStore(tmp_path), mem_cache_mb=8)
        assert engine.mem_cache is not None
        assert engine.mem_cache.max_bytes == 8 * 2**20

    def test_mem_cache_mb_zero_disables_the_tier(self, tmp_path):
        engine = make_engine(store=ResultStore(tmp_path), mem_cache_mb=0)
        assert engine.mem_cache is None

    def test_explicit_mem_cache_wins(self, tmp_path):
        mem = MemCache(max_entries=3)
        engine = make_engine(store=ResultStore(tmp_path), mem_cache=mem,
                             mem_cache_mb=64)
        assert engine.mem_cache is mem

    def test_no_cache_disables_both_tiers(self):
        engine = make_engine(use_cache=False, shards=2)
        assert engine.store is None and engine.mem_cache is None
        engine.close(drain=False)
