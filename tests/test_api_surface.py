"""API-surface contracts: exports exist, are documented, and stay lazy.

Deliverable (e) requires doc comments on every public item; these
meta-tests enforce it mechanically for everything the packages export.
"""

import importlib
import inspect

import pytest

PACKAGES = (
    "repro",
    "repro.ir",
    "repro.frontend",
    "repro.machine",
    "repro.costmodels",
    "repro.model",
    "repro.sim",
    "repro.baselines",
    "repro.kernels",
    "repro.transform",
    "repro.analysis",
    "repro.util",
    "repro.obs",
)


def _public_objects():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            if name.startswith("__"):
                continue
            obj = getattr(pkg, name)
            out.append((pkg_name, name, obj))
    return out


class TestExports:
    @pytest.mark.parametrize(
        "pkg_name,name,obj",
        _public_objects(),
        ids=[f"{p}.{n}" for p, n, _ in _public_objects()],
    )
    def test_every_public_item_documented(self, pkg_name, name, obj):
        if isinstance(obj, (int, str, float, tuple, dict, frozenset)):
            return  # constants carry their docs in the module
        doc = inspect.getdoc(obj)
        assert doc and doc.strip(), f"{pkg_name}.{name} has no docstring"

    def test_all_lists_are_accurate(self):
        for pkg_name in PACKAGES:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"


class TestLazyTopLevel:
    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            _ = repro.definitely_not_a_thing

    def test_lazy_attributes_resolve_and_cache(self):
        import repro

        first = repro.FalseSharingModel
        second = repro.FalseSharingModel
        assert first is second

    def test_dir_includes_lazy_names(self):
        import repro

        assert "MulticoreSimulator" in dir(repro)

    def test_every_lazy_name_resolves(self):
        import repro

        for name in repro._LAZY:
            assert getattr(repro, name) is not None
