"""Worker-pool drain/cancellation (``WorkerPool.close``) and the
engine's ``should_stop`` cancellation hook — the shutdown half of the
service's SIGTERM contract."""

from __future__ import annotations

import signal
import threading

import pytest

from repro.engine import Engine, Job, WorkerPool, cancelled_outcome
from repro.resilience.errors import JobCancelledError


def echo_job(value) -> Job:
    return Job("engine.test.echo", {"value": value})


class TestCancelledOutcome:
    def test_shape(self):
        out = cancelled_outcome(echo_job(1), "unit test")
        assert not out.ok
        assert out.error_code == JobCancelledError.code == "REPRO-E104"
        assert out.attempts == 0
        assert "unit test" in out.error


class TestInlineClose:
    def test_closed_pool_cancels_everything(self):
        pool = WorkerPool(workers=1)
        pool.close()
        outs = pool.run([echo_job(i) for i in range(3)])
        assert [o.error_code for o in outs] == ["REPRO-E104"] * 3

    def test_reopen_restores_service(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.reopen()
        outs = pool.run([echo_job(7)])
        assert outs[0].ok and outs[0].result["value"] == 7

    def test_close_mid_batch_cancels_the_rest(self):
        pool = WorkerPool(workers=1)
        seen = []

        def watch(outcome):
            seen.append(outcome)
            if len(seen) == 2:
                pool.close()  # drain signal lands mid-batch

        outs = pool.run([echo_job(i) for i in range(5)], watch)
        assert outs[0].ok and outs[1].ok
        assert all(o.error_code == "REPRO-E104" for o in outs[2:])

    def test_close_is_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()
        assert pool.closing


class TestProcessPoolClose:
    def test_in_flight_finish_pending_cancel(self):
        pool = WorkerPool(workers=2)
        done = threading.Event()

        def watch(outcome):
            if not done.is_set():
                done.set()
                pool.close(drain=True)

        outs = pool.run([echo_job(i) for i in range(8)], watch)
        finished = [o for o in outs if o.ok]
        cancelled = [o for o in outs if o.error_code == "REPRO-E104"]
        assert finished, "the in-flight jobs should have completed"
        assert cancelled, "the queued tail should have been cancelled"
        assert len(finished) + len(cancelled) == 8


class TestSignalHandlers:
    def test_handle_signals_chains_previous(self):
        pool = WorkerPool(workers=1)
        hits = []
        previous = signal.signal(signal.SIGTERM, lambda s, f: hits.append(s))
        try:
            pool.handle_signals(signums=(signal.SIGTERM,))
            signal.raise_signal(signal.SIGTERM)
            assert pool.closing
            assert hits == [signal.SIGTERM]  # prior handler still ran
        finally:
            signal.signal(signal.SIGTERM, previous)


class TestEngineShouldStop:
    def test_stop_before_run_cancels_all(self):
        engine = Engine(jobs=1)
        outs = engine.run(
            [echo_job(i) for i in range(3)], should_stop=lambda: True
        )
        assert all(o.error_code == "REPRO-E104" for o in outs)

    def test_cache_hits_survive_late_stop(self):
        engine = Engine(jobs=1)
        assert all(o.ok for o in engine.run([echo_job(1)]))
        flag = {"stop": False}
        outs = engine.run(
            [echo_job(1), echo_job(2)],
            should_stop=lambda: flag["stop"],
            on_outcome=lambda o: flag.__setitem__("stop", True),
        )
        # First job was already cached before the stop signal; the
        # second (a miss) must not execute.
        assert outs[0].ok and outs[0].from_cache
        assert outs[1].error_code == "REPRO-E104"

    def test_cancelled_status_metric(self):
        from repro.obs import get_registry

        engine = Engine(jobs=1)
        engine.run([echo_job(99)], should_stop=lambda: True)
        counter = get_registry().counter(
            "engine_jobs_total", "engine jobs by terminal status"
        )
        cancelled = [
            c for c in counter.children()
            if c.labels.get("status") == "cancelled"
        ]
        assert cancelled and cancelled[0].value >= 1

    def test_engine_close_delegates_to_pool(self):
        engine = Engine(jobs=1)
        engine.close()
        assert engine.pool.closing
        outs = engine.run([echo_job(123)])
        # Cache miss + closed pool -> cancellation, not execution.
        assert outs[0].error_code == "REPRO-E104"
