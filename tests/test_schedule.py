"""Unit and property tests for static scheduling and lockstep enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.schedule import (
    IterationSpace,
    LockstepEnumerator,
    effective_chunk,
    static_chunk_positions,
)
from tests.conftest import make_copy_nest, make_nested_nest


class TestStaticChunkPositions:
    def test_round_robin_chunk1(self):
        assert static_chunk_positions(8, 2, 1, 0).tolist() == [0, 2, 4, 6]
        assert static_chunk_positions(8, 2, 1, 1).tolist() == [1, 3, 5, 7]

    def test_round_robin_chunk2(self):
        assert static_chunk_positions(10, 2, 2, 0).tolist() == [0, 1, 4, 5, 8, 9]
        assert static_chunk_positions(10, 2, 2, 1).tolist() == [2, 3, 6, 7]

    def test_thread_without_work(self):
        # chunk covers the whole trip: later threads get nothing.
        assert static_chunk_positions(4, 4, 4, 1).tolist() == []

    def test_empty_trip(self):
        assert static_chunk_positions(0, 4, 2, 0).tolist() == []

    def test_bad_args(self):
        with pytest.raises(ValueError):
            static_chunk_positions(4, 0, 1, 0)
        with pytest.raises(ValueError):
            static_chunk_positions(4, 2, 1, 5)

    @given(
        trip=st.integers(0, 300),
        threads=st.integers(1, 16),
        chunk=st.integers(1, 32),
    )
    @settings(max_examples=60)
    def test_partition_property(self, trip, threads, chunk):
        """Threads partition [0, trip) exactly: no loss, no overlap."""
        seen = []
        for t in range(threads):
            pos = static_chunk_positions(trip, threads, chunk, t)
            assert (np.diff(pos) > 0).all() if len(pos) > 1 else True
            seen.extend(pos.tolist())
        assert sorted(seen) == list(range(trip))


class TestEffectiveChunk:
    def test_explicit(self):
        assert effective_chunk(make_copy_nest(chunk=4), 2) == 4

    def test_default_blocks(self):
        nest = make_copy_nest(n=64).with_chunk(None)
        assert effective_chunk(nest, 4) == 16


class TestIterationSpace:
    def test_flat_nest(self):
        space = IterationSpace.of(make_copy_nest(n=64, chunk=1), 4)
        assert space.outer_total == 1
        assert space.parallel_trip == 64
        assert space.inner_total == 1
        assert space.steps_per_thread == 16
        assert space.total_chunk_runs == 16
        assert space.steps_per_chunk_run == 1

    def test_inner_parallel_nest(self):
        space = IterationSpace.of(make_nested_nest(rows=4, cols=32, chunk=2), 4)
        assert space.outer_total == 4
        assert space.parallel_trip == 32
        assert space.inner_total == 1
        # per outer run: 32/(4*2)=4 chunk runs -> 16 total
        assert space.total_chunk_runs == 16
        assert space.steps_per_chunk_run == 2


class TestLockstepEnumerator:
    def test_covers_iteration_space(self):
        nest = make_nested_nest(rows=3, cols=8, chunk=1)
        enum = LockstepEnumerator(nest, 2)
        points = set()
        for t in range(2):
            env = enum.env_block(t, 0, enum.thread_steps(t))
            for i, j in zip(env["i"].tolist(), env["j"].tolist()):
                points.add((i, j))
        assert points == {(i, j) for i in range(3) for j in range(8)}

    def test_thread_owns_round_robin_columns(self):
        nest = make_nested_nest(rows=1, cols=8, chunk=1)
        enum = LockstepEnumerator(nest, 4)
        env = enum.env_block(1, 0, enum.thread_steps(1))
        assert env["j"].tolist() == [1, 5]

    def test_outer_loop_sequences_after_parallel(self):
        nest = make_nested_nest(rows=2, cols=4, chunk=1)
        enum = LockstepEnumerator(nest, 2)
        env = enum.env_block(0, 0, enum.thread_steps(0))
        # Thread 0: (i=0, j=0), (i=0, j=2), (i=1, j=0), (i=1, j=2)
        assert env["i"].tolist() == [0, 0, 1, 1]
        assert env["j"].tolist() == [0, 2, 0, 2]

    def test_blocks_concatenate_to_full(self):
        nest = make_copy_nest(n=64, chunk=1)
        enum = LockstepEnumerator(nest, 2, block_steps=5)
        collected = {t: [] for t in range(2)}
        for start, envs in enum.blocks():
            for t, env in enumerate(envs):
                if env:
                    collected[t].extend(env["i"].tolist())
        full = enum.env_block(0, 0, enum.thread_steps(0))["i"].tolist()
        assert collected[0] == full

    def test_max_steps_truncation(self):
        nest = make_copy_nest(n=64, chunk=1)
        enum = LockstepEnumerator(nest, 2)
        steps = sum(
            len(envs[0]["i"]) for _, envs in enum.blocks(max_steps=7) if envs[0]
        )
        assert steps == 7

    def test_empty_env_beyond_work(self):
        nest = make_copy_nest(n=4, chunk=4)
        enum = LockstepEnumerator(nest, 4)
        # thread 1 has no work at all (chunk covers trip)
        assert enum.env_block(1, 0, 10) == {}

    def test_loop_lower_bound_and_step_respected(self):
        from repro.kernels import build_heat_nest

        nest = build_heat_nest(4, 20, chunk=1)
        enum = LockstepEnumerator(nest, 2)
        env = enum.env_block(0, 0, 5)
        assert env["i"][0] == 1  # starts at 1
        assert env["j"][0] == 1
