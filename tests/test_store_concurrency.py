"""Concurrent multi-process access to one shared ``ResultStore`` dir.

The analysis service points every engine worker — and, across
restarts, every daemon generation — at the same content-addressed
store, so two processes hammering one directory concurrently must
never corrupt an entry, serve a torn read, or evict more than the
``max_entries`` policy allows.  These tests drive real subprocesses
(not threads) against one store root and assert exactly that.
"""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import ResultStore, stable_hash

#: Worker script run in separate interpreters: hammer the shared store
#: with interleaved put/get traffic, print a JSON verdict.
_WORKER = r"""
import json, sys
from repro.engine import ResultStore, stable_hash

root, worker_id, rounds, n_keys = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
store = ResultStore(root)
torn = 0
wrong = 0
for r in range(rounds):
    for i in range(n_keys):
        key = stable_hash({"shared-key": i})
        # Every writer writes the SAME canonical value for a key, so
        # any reader must observe either a miss or that exact value.
        value = {"key_index": i, "payload": "x" * 64}
        store.put(key, value, kind="conc-test")
        seen = store.get(key)
        if seen is None:
            torn += 1          # miss is legal mid-replace, count it
        elif seen != value:
            wrong += 1         # a torn/corrupt read never is
print(json.dumps({"worker": worker_id, "torn": torn, "wrong": wrong}))
"""


def _run_workers(root: Path, n_workers: int, rounds: int, n_keys: int):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, str(root), str(i),
             str(rounds), str(n_keys)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        for i in range(n_workers)
    ]
    verdicts = []
    for p in procs:
        out, err = p.communicate(timeout=90)
        assert p.returncode == 0, f"worker died: {err}"
        verdicts.append(json.loads(out.strip().splitlines()[-1]))
    return verdicts


class TestConcurrentAccess:
    def test_two_processes_never_see_torn_entries(self, tmp_path):
        root = tmp_path / "shared-store"
        verdicts = _run_workers(root, n_workers=2, rounds=20, n_keys=8)
        assert all(v["wrong"] == 0 for v in verdicts), verdicts

    def test_store_is_intact_after_the_stampede(self, tmp_path):
        root = tmp_path / "shared-store"
        _run_workers(root, n_workers=2, rounds=15, n_keys=6)
        store = ResultStore(root)
        # Every key readable, every payload exactly canonical.
        for i in range(6):
            key = stable_hash({"shared-key": i})
            entry = store.get(key)
            assert entry == {"key_index": i, "payload": "x" * 64}
        # And every on-disk file is complete valid JSON (no .tmp- junk
        # left behind, no half-written entries).
        files = list(root.rglob("*.json"))
        assert len(files) == 6
        assert not list(root.rglob(".tmp-*"))
        for f in files:
            json.loads(f.read_text(encoding="utf-8"))


class TestAtomicReplace:
    def test_put_is_atomic_against_a_reader(self, tmp_path):
        """A reader polling during rapid rewrites sees only full values."""
        store = ResultStore(tmp_path / "s")
        key = stable_hash({"k": 1})
        stop = multiprocessing.Event()

        def reader(path, results):
            r = ResultStore(path)
            bad = 0
            for _ in range(400):
                entry = r.get(key)
                if entry is not None and set(entry) != {"v", "pad"}:
                    bad += 1
            results.put(bad)

        results = multiprocessing.Queue()
        proc = multiprocessing.Process(
            target=reader, args=(tmp_path / "s", results)
        )
        proc.start()
        try:
            for v in range(300):
                store.put(key, {"v": v, "pad": "y" * 128}, kind="conc")
        finally:
            stop.set()
            proc.join(timeout=60)
        assert results.get(timeout=10) == 0

    def test_overwrite_same_key_keeps_single_file(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = stable_hash({"k": "same"})
        for v in range(10):
            store.put(key, {"v": v}, kind="conc")
        files = list((tmp_path / "s").rglob("*.json"))
        assert len(files) == 1
        assert store.get(key) == {"v": 9}


class TestBoundedEviction:
    def test_concurrent_prune_never_double_evicts_below_cap(self, tmp_path):
        """Two capped stores pruning the same dir concurrently must end
        with exactly ``max_entries`` newest entries, never fewer."""
        cap = 5
        root = tmp_path / "capped"
        a = ResultStore(root, max_entries=cap)
        b = ResultStore(root, max_entries=cap)
        for i in range(20):
            # Interleave writers so each triggers prunes that race with
            # the other's view of the directory.
            (a if i % 2 == 0 else b).put(
                stable_hash({"evict": i}), {"i": i}, kind="conc"
            )
        survivors = list(root.rglob("*.json"))
        assert len(survivors) == cap
        fresh = ResultStore(root)
        present = [
            i for i in range(20)
            if fresh.get(stable_hash({"evict": i})) is not None
        ]
        assert len(present) == cap

    def test_prune_tolerates_entries_vanishing_underneath(self, tmp_path):
        """A prune racing a concurrent delete (file already gone) must
        not raise — the other process won that eviction."""
        root = tmp_path / "vanish"
        store = ResultStore(root, max_entries=None)
        keys = [stable_hash({"v": i}) for i in range(8)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i}, kind="conc")
        # Simulate the race: another process evicted half the entries
        # between this store's directory scan and its unlink pass.
        for key in keys[:4]:
            store._path(key).unlink()
        dropped = store.prune(2)
        assert dropped <= 4
        assert len(list(root.rglob("*.json"))) == 2
