"""Golden-value tests: exact FS counts pinned for the paper kernels.

The model is deterministic by design (a compile-time analysis must be).
These tests pin exact case counts at small sizes so any behavioural
change — a schedule tweak, a detector transition edit, a layout change —
is caught immediately rather than surfacing as a silent drift in
EXPERIMENTS.md.  If a change is *intended*, update the constants here
and the rationale in the commit that changes them.
"""

import pytest

from repro.kernels import dft, heat_diffusion, linear_regression, transpose
from repro.machine import paper_machine
from repro.model import FalseSharingModel

#: (kernel factory, threads, chunk) -> expected exact FS case count.
GOLDEN = {
    ("heat", 2, 1): 1343,
    ("heat", 4, 1): 1343,
    ("heat", 4, 64): 23,
    ("dft", 2, 1): 5952,
    ("dft", 4, 1): 5952,
    ("dft", 4, 16): 0,
    ("linreg", 2, 1): 11496,
    ("linreg", 4, 1): 17208,
    ("linreg", 4, 10): 5,
    ("transpose", 4, 1): 0,
}

FACTORIES = {
    "heat": lambda: heat_diffusion(rows=5, cols=514),
    "dft": lambda: dft(samples=4, freqs=768),
    "linreg": lambda: linear_regression(4, tasks=96, total_points=480),
    "transpose": lambda: transpose(rows=8, cols=256),
}


@pytest.fixture(scope="module")
def model():
    return FalseSharingModel(paper_machine())


@pytest.mark.parametrize(
    "kernel,threads,chunk",
    sorted(GOLDEN),
    ids=[f"{k}-T{t}-c{c}" for k, t, c in sorted(GOLDEN)],
)
def test_golden_fs_counts(model, kernel, threads, chunk):
    nest = FACTORIES[kernel]().nest
    result = model.analyze(nest, threads, chunk=chunk)
    assert result.fs_cases == GOLDEN[(kernel, threads, chunk)], (
        f"{kernel} at T={threads}, chunk={chunk}: FS count drifted to "
        f"{result.fs_cases}"
    )
