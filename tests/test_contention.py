"""Unit tests for the shared-cache and bus contention extensions."""

import pytest

from repro.costmodels import BusModel, ContentionModel, SharedCacheModel
from repro.machine import paper_machine
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestSharedCacheModel:
    def test_small_working_set_free(self, machine):
        model = SharedCacheModel(machine)
        nest = make_copy_nest(n=1024)  # 16 KB total: far below L3
        assert model.l3_pressure(nest, 12) < 0.01
        assert model.extra_cycles(nest, 12) == 0.0

    def test_overflow_costs(self, machine):
        model = SharedCacheModel(machine)
        big = make_copy_nest(n=2_000_000)  # 32 MB of streams
        assert model.l3_pressure(big, 12) > 1.0
        assert model.extra_cycles(big, 12) > 0.0

    def test_pressure_constant_within_socket(self, machine):
        """A fixed data set split among co-resident threads keeps the
        same combined footprint: pressure is thread-count-independent
        up to the socket size."""
        model = SharedCacheModel(machine)
        nest = make_copy_nest(n=500_000)
        assert model.l3_pressure(nest, 12) == pytest.approx(
            model.l3_pressure(nest, 2), rel=0.01
        )

    def test_pressure_drops_across_sockets(self, machine):
        """Beyond one socket the data splits across multiple L3s."""
        model = SharedCacheModel(machine, cores_per_socket=12)
        nest = make_copy_nest(n=480_000)
        assert model.l3_pressure(nest, 48) < model.l3_pressure(nest, 12)

    def test_rejects_bad_socket(self, machine):
        with pytest.raises(ValueError):
            SharedCacheModel(machine, cores_per_socket=0)


class TestBusModel:
    def test_compute_bound_loop_free(self, machine):
        model = BusModel(machine)
        nest = make_copy_nest(n=1024)
        # Plenty of compute per byte: below saturation.
        assert model.utilization(nest, 4, machine_cycles_per_iter=200.0) < 1.0
        assert model.extra_cycles(nest, 4, machine_cycles_per_iter=200.0) == 0.0

    def test_streaming_many_threads_saturates(self, machine):
        model = BusModel(machine, bytes_per_cycle=4.0)
        big = make_copy_nest(n=2_000_000)
        util = model.utilization(big, 48, machine_cycles_per_iter=2.0)
        assert util > 1.0
        assert model.extra_cycles(big, 48, machine_cycles_per_iter=2.0) > 0.0

    def test_fs_traffic_raises_utilization(self, machine):
        model = BusModel(machine)
        nest = make_copy_nest(n=4096)
        base = model.utilization(nest, 8, fs_cases=0.0)
        loaded = model.utilization(nest, 8, fs_cases=4096.0)
        assert loaded > base

    def test_rejects_bad_bandwidth(self, machine):
        with pytest.raises(ValueError):
            BusModel(machine, bytes_per_cycle=0.0)


class TestContentionModel:
    def test_combined_estimate(self, machine):
        model = ContentionModel(machine, bus_bytes_per_cycle=4.0)
        big = make_copy_nest(n=2_000_000)
        est = model.estimate(big, 12, machine_cycles_per_iter=2.0)
        assert est.total == est.shared_cache_cycles + est.bus_cycles
        assert est.l3_pressure > 1.0
        assert est.bus_utilization > 1.0
        assert est.shared_cache_cycles > 0.0

    def test_empty_loop(self, machine):
        model = ContentionModel(machine)
        nest = make_copy_nest(n=64)
        est = model.estimate(nest, 2)
        assert est.total == 0.0
