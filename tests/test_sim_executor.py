"""Unit tests for the multicore MESI simulator."""

import pytest

from repro.machine import paper_machine
from repro.sim import AccessCosts, MulticoreSimulator
from tests.conftest import make_copy_nest, make_nested_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def sim(machine):
    return MulticoreSimulator(machine)


class TestAccessCosts:
    def test_derivation(self, machine):
        c = AccessCosts.from_machine(machine)
        assert c.load_hit == machine.l1.latency_cycles
        assert c.load_remote_modified == machine.coherence.remote_fetch_cycles
        assert c.load_cold == machine.mem_latency_cycles
        # Marginal coherence cost of a dirty store miss = invalidate cost.
        assert (
            c.store_miss_remote_modified - c.store_miss_clean
            == machine.coherence.invalidate_cycles
        )


class TestBasicExecution:
    def test_all_accesses_counted(self, sim):
        nest = make_copy_nest(n=64)
        r = sim.run(nest, 2, chunk=1)
        # 64 iterations x (1 load + 1 store)
        assert r.counters.loads == 64
        assert r.counters.stores == 64
        assert r.steps == 32

    def test_fs_config_slower_than_aligned(self, sim):
        nest = make_copy_nest(n=512)
        t_fs = sim.run(nest, 4, chunk=1).cycles
        t_nfs = sim.run(nest, 4, chunk=8).cycles
        assert t_fs > t_nfs

    def test_coherence_events_only_with_sharing(self, sim):
        nest = make_copy_nest(n=512)
        r_fs = sim.run(nest, 4, chunk=1)
        r_nfs = sim.run(nest, 4, chunk=8)
        assert r_fs.counters.coherence_events > 0
        assert r_nfs.counters.coherence_events == 0

    def test_single_thread_no_coherence(self, sim):
        r = sim.run(make_copy_nest(n=256), 1, chunk=1)
        assert r.counters.coherence_events == 0
        assert r.counters.invalidations == 0

    def test_seconds_conversion(self, sim, machine):
        r = sim.run(make_copy_nest(n=64), 2, chunk=1)
        assert r.seconds == pytest.approx(
            r.cycles / (machine.freq_ghz * 1e9)
        )

    def test_rejects_bad_threads(self, sim):
        with pytest.raises(ValueError):
            sim.run(make_copy_nest(), 0)

    def test_per_thread_cycles_balanced(self, sim):
        r = sim.run(make_copy_nest(n=512), 4, chunk=1)
        per = r.per_thread_cycles
        assert per.max() < per.min() * 1.5  # balanced workload


class TestMESIBehaviour:
    def test_cold_misses_once_per_line(self, sim):
        nest = make_copy_nest(n=64)  # 8 lines per array
        r = sim.run(nest, 1, chunk=1)
        # Sequential: a and b each 8 lines; loads cold-miss at most 8 + prefetch
        assert r.counters.load_cold <= 8
        assert r.counters.load_cold >= 2  # at least stream heads

    def test_writes_invalidate_readers(self, sim):
        nest = make_nested_nest(rows=4, cols=32, chunk=1)
        r = sim.run(nest, 4)
        assert r.counters.invalidations > 0

    def test_prefetcher_reduces_time(self, machine):
        nest = make_copy_nest(n=4096, chunk=8)
        with_pf = MulticoreSimulator(machine, prefetcher=True).run(nest, 2)
        without = MulticoreSimulator(machine, prefetcher=False).run(nest, 2)
        assert with_pf.cycles < without.cycles
        assert with_pf.counters.load_prefetched > 0
        assert without.counters.load_prefetched == 0

    def test_fully_associative_mode(self, machine):
        nest = make_copy_nest(n=256)
        fa = MulticoreSimulator(machine, fully_associative=True).run(nest, 2)
        sa = MulticoreSimulator(machine, fully_associative=False).run(nest, 2)
        # Tiny working set: identical behaviour either way.
        assert fa.counters.coherence_events == sa.counters.coherence_events


class TestTimingComposition:
    def test_wall_clock_includes_startup(self, sim, machine):
        r = sim.run(make_copy_nest(n=64), 2, chunk=1)
        assert r.cycles > machine.overheads.parallel_startup_cycles

    def test_more_threads_less_wall_time_for_clean_loop(self, sim):
        nest = make_copy_nest(n=8192, chunk=8)
        t2 = sim.run(nest, 2).cycles
        t8 = sim.run(nest, 8).cycles
        assert t8 < t2


class TestTLBSimulation:
    def test_tiny_tlb_thrashes(self):
        """A TLB smaller than the page working set must keep missing."""
        from repro.machine import tiny_machine
        from tests.conftest import make_copy_nest

        machine = tiny_machine(num_cores=2, cache_lines=64)  # 8 TLB entries
        sim = MulticoreSimulator(machine)
        # 64 KB arrays: 16 pages each, 32 pages total >> 8 entries,
        # but sequential access touches each page once per pass.
        nest = make_copy_nest(n=8192, chunk=8)
        r = sim.run(nest, 2)
        assert r.counters.tlb_misses >= 16

    def test_large_tlb_quiet(self, sim):
        from tests.conftest import make_copy_nest

        r = sim.run(make_copy_nest(n=512, chunk=8), 2)
        # 2 arrays x 4 KiB: two pages per thread's view.
        assert r.counters.tlb_misses <= 8
