"""Unit tests for the full FS model driver (Section III)."""

import pytest

from repro.machine import paper_machine, tiny_machine
from repro.model import FalseSharingModel
from tests.conftest import make_copy_nest, make_nested_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def model(machine):
    return FalseSharingModel(machine)


class TestAnalyze:
    def test_chunk1_has_fs(self, model):
        r = model.analyze(make_copy_nest(n=64), 2, chunk=1)
        assert r.fs_cases > 0

    def test_line_aligned_chunks_have_none(self, model):
        r = model.analyze(make_copy_nest(n=64), 2, chunk=8)
        assert r.fs_cases == 0

    def test_single_thread_never_fs(self, model):
        r = model.analyze(make_copy_nest(n=64), 1, chunk=1)
        assert r.fs_cases == 0

    def test_fs_decreases_with_chunk(self, model):
        counts = [
            model.analyze(make_copy_nest(n=128), 4, chunk=c).fs_cases
            for c in (1, 2, 4, 8)
        ]
        assert counts[0] >= counts[1] >= counts[2] >= counts[3]
        assert counts[3] == 0

    def test_victims_identified(self, model):
        r = model.analyze(make_copy_nest(n=64), 2, chunk=1)
        victims = r.victim_arrays()
        assert victims[0].name == "b"  # only the written array false-shares

    def test_chunk_override_does_not_mutate(self, model):
        nest = make_copy_nest(n=64, chunk=1)
        model.analyze(nest, 2, chunk=8)
        assert nest.schedule.chunk == 1

    def test_steps_evaluated_full(self, model):
        nest = make_nested_nest(rows=2, cols=16)
        r = model.analyze(nest, 2, chunk=1)
        # All_num_iters / num_threads
        assert r.steps_evaluated == nest.total_iterations() // 2

    def test_series_recording(self, model):
        nest = make_copy_nest(n=64)
        r = model.analyze(nest, 2, chunk=1, record_series=True)
        assert r.per_chunk_run is not None
        assert len(r.per_chunk_run) == r.total_chunk_runs
        assert r.per_chunk_run[-1] == r.fs_cases
        # Cumulative: monotone non-decreasing.
        assert all(
            a <= b for a, b in zip(r.per_chunk_run, r.per_chunk_run[1:])
        )

    def test_max_chunk_runs_prefix(self, model):
        nest = make_copy_nest(n=64)
        r = model.analyze(nest, 2, chunk=1, max_chunk_runs=5, record_series=True)
        assert r.chunk_runs_evaluated == 5
        assert len(r.per_chunk_run) == 5

    def test_fs_cycles_split(self, machine, model):
        nest = make_copy_nest(n=64)
        r = model.analyze(nest, 2, chunk=1)
        expected = (
            r.fs_read_cases * machine.fs_read_penalty_cycles
            + r.fs_write_cases * machine.fs_write_penalty_cycles
        )
        assert r.fs_cycles(machine) == expected

    def test_rejects_bad_threads(self, model):
        with pytest.raises(ValueError):
            model.analyze(make_copy_nest(), 0)


class TestModes:
    def test_literal_mode_runs(self):
        m = FalseSharingModel(paper_machine(), mode="literal")
        r = m.analyze(make_copy_nest(n=64), 2, chunk=1)
        assert r.mode == "literal"
        assert r.fs_cases > 0

    def test_literal_counts_at_least_invalidate_for_pingpong(self):
        """Literal mode never invalidates, so modified copies accumulate
        and phi can count more cases per insertion than invalidate mode."""
        inv = FalseSharingModel(paper_machine(), mode="invalidate")
        lit = FalseSharingModel(paper_machine(), mode="literal")
        nest = make_copy_nest(n=128)
        r_inv = inv.analyze(nest, 4, chunk=1)
        r_lit = lit.analyze(nest, 4, chunk=1)
        assert r_lit.fs_cases > 0 and r_inv.fs_cases > 0


class TestCapacityEffects:
    def test_small_stack_evicts(self):
        machine = tiny_machine(num_cores=2, cache_lines=2)
        model = FalseSharingModel(machine)
        r = model.analyze(make_copy_nest(n=256), 2, chunk=1)
        assert r.stats.evictions > 0


class TestNumaCycles:
    def test_neutral_factor_matches_flat(self):
        machine = paper_machine()
        model = FalseSharingModel(machine)
        r = model.analyze(make_copy_nest(n=128), 4, chunk=1)
        assert r.fs_cycles_numa(machine, "contiguous") == pytest.approx(
            r.fs_cycles(machine)
        )
        assert r.fs_cycles_numa(machine, "scatter") == pytest.approx(
            r.fs_cycles(machine)
        )

    def test_cross_socket_factor_scales_scatter(self):
        import dataclasses

        base = paper_machine()
        machine = dataclasses.replace(
            base,
            cores_per_socket=2,
            coherence=dataclasses.replace(
                base.coherence, cross_socket_factor=2.0
            ),
        )
        model = FalseSharingModel(machine)
        r = model.analyze(make_copy_nest(n=128), 4, chunk=1)
        contiguous = r.fs_cycles_numa(machine, "contiguous")
        scatter = r.fs_cycles_numa(machine, "scatter")
        # chunk=1 conflicts are thread-adjacent: scatter crosses sockets.
        assert scatter > contiguous

    def test_zero_cases(self):
        machine = paper_machine()
        model = FalseSharingModel(machine)
        r = model.analyze(make_copy_nest(n=128), 4, chunk=8)
        assert r.fs_cycles_numa(machine) == 0.0
