"""Unit tests for the dependence analysis substrate."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    analyze_dependences,
    banerjee_test,
    gcd_test,
    siv_distance,
)
from repro.kernels import build_heat_nest, build_linreg_nest
from tests.conftest import make_copy_nest

I = AffineExpr.var("i")
A = ArrayDecl.create("a", DOUBLE, (128,))


def ref(idx, write=False, arr=A):
    return ArrayRef(arr, (idx,), is_write=write)


def nest_with(stmts, n=16):
    return ParallelLoopNest("t.i", Loop.create("i", 0, n, stmts), "i")


class TestGCDTest:
    def test_even_vs_odd_independent(self):
        assert not gcd_test(ref(2 * I), ref(2 * I + 1))

    def test_same_subscript_dependent(self):
        assert gcd_test(ref(I), ref(I, write=True))

    def test_offset_multiple_of_stride(self):
        assert gcd_test(ref(2 * I), ref(2 * I + 4))

    def test_constant_subscripts(self):
        c0 = AffineExpr.const_expr(0)
        c1 = AffineExpr.const_expr(1)
        assert gcd_test(ref(c0), ref(c0, write=True))
        assert not gcd_test(ref(c0), ref(c1, write=True))


class TestBanerjeeTest:
    def test_out_of_range_offset_independent(self):
        # a[i] vs a[i' + 100] with i, i' in [0, 15]: difference spans
        # [-115, -85]·8 bytes — never zero.
        assert not banerjee_test(ref(I), ref(I + 100), {"i": (0, 15)})

    def test_in_range_offset_possibly_dependent(self):
        assert banerjee_test(ref(I), ref(I + 4), {"i": (0, 15)})

    def test_unknown_bounds_conservative(self):
        assert banerjee_test(ref(I), ref(I + 1000), {})

    def test_empty_loop_independent(self):
        assert not banerjee_test(ref(I), ref(I), {"i": (5, 4)})


class TestSIVDistance:
    def test_unit_distance(self):
        assert siv_distance(ref(I, write=True), ref(I + 1), "i") == 1

    def test_zero_distance(self):
        assert siv_distance(ref(I), ref(I, write=True), "i") == 0

    def test_non_siv_returns_none(self):
        assert siv_distance(ref(I), ref(2 * I), "i") is None

    def test_fractional_distance_none(self):
        assert siv_distance(ref(2 * I), ref(2 * I + 1), "i") is None


class TestAnalyzeDependences:
    def test_copy_nest_parallelizable(self):
        report = analyze_dependences(make_copy_nest(n=64))
        assert report.parallelizable("i")

    def test_heat_parallelizable(self):
        nest = build_heat_nest(6, 34)
        report = analyze_dependences(nest)
        assert report.parallelizable("j")
        assert report.parallelizable("i")

    def test_linreg_accumulators_loop_independent(self):
        """`s[j] += ...` carries nothing on j across iterations."""
        nest = build_linreg_nest(8, 4)
        report = analyze_dependences(nest)
        assert report.parallelizable("j")
        # The RMW pairs show up as loop-independent dependences.
        assert any(d.carrier is None for d in report.dependences)

    def test_recurrence_blocks_parallelization(self):
        """a[i] = a[i-1] + 1: carried by i, distance 1."""
        stmt = Assign(
            ref(I, write=True),
            BinOp("+", LoadExpr(ref(I - 1)), Const(1.0, DOUBLE)),
        )
        report = analyze_dependences(nest_with([stmt]))
        assert not report.parallelizable("i")
        (dep,) = report.carried_by("i")
        assert abs(dep.distance) == 1

    def test_far_recurrence_still_carried(self):
        stmt = Assign(
            ref(I, write=True),
            BinOp("+", LoadExpr(ref(I - 5)), Const(1.0, DOUBLE)),
        )
        report = analyze_dependences(nest_with([stmt], n=32))
        assert not report.parallelizable("i")

    def test_shift_beyond_bounds_is_parallel(self):
        """a[i] = b[i + 64] with disjoint arrays: independent."""
        b = ArrayDecl.create("b", DOUBLE, (256,))
        stmt = Assign(ref(I, write=True), LoadExpr(ref(I + 64, arr=b)))
        report = analyze_dependences(nest_with([stmt], n=16))
        assert report.parallelizable("i")

    def test_true_sharing_reduction_detected(self):
        """s[0] += a[i]: every iteration writes the same element —
        output/flow dependence carried by i (non-SIV constant pair)."""
        s = ArrayDecl.create("s", DOUBLE, (1,))
        zero = AffineExpr.const_expr(0)
        stmt = Assign(
            ArrayRef(s, (zero,), is_write=True),
            LoadExpr(ref(I)),
            augmented="+",
        )
        report = analyze_dependences(nest_with([stmt]))
        # Constant subscripts collide at every iteration pair: the
        # reduction is carried by every loop and blocks parallelization.
        assert not report.parallelizable("i")
        deps = [d for d in report.dependences if d.source.array.name == "s"]
        assert deps, "the reduction dependence must be found"

    def test_dependence_str(self):
        stmt = Assign(
            ref(I, write=True),
            BinOp("+", LoadExpr(ref(I - 1)), Const(1.0, DOUBLE)),
        )
        report = analyze_dependences(nest_with([stmt]))
        assert "carried by i" in str(report.dependences[0]) or any(
            "carried by i" in str(d) for d in report.dependences
        )
