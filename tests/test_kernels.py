"""Unit tests for the evaluation kernels: builders, sources, invariants."""

import pytest

from repro.kernels import (
    build_dft_nest,
    build_heat_nest,
    build_linreg_nest,
    dft,
    dft_source,
    heat_diffusion,
    heat_source,
    linear_regression,
    linreg_source,
)
from repro.ir import validate_nest


class TestHeat:
    def test_nest_shape(self):
        k = heat_diffusion(rows=8, cols=66)
        assert k.nest.loop_vars() == ("i", "j")
        assert k.nest.parallel_var == "j"
        assert k.nest.trip_counts() == (6, 64)
        assert validate_nest(k.nest).ok

    def test_reference_nest_is_same(self):
        k = heat_diffusion(rows=8, cols=66)
        assert k.reference_nest is k.nest

    def test_five_point_stencil_accesses(self):
        k = heat_diffusion(rows=8, cols=66)
        accs = k.nest.innermost_accesses()
        assert sum(1 for a in accs if not a.is_write) == 5
        assert sum(1 for a in accs if a.is_write) == 1

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            build_heat_nest(2, 2)

    def test_paper_chunk_configs(self):
        k = heat_diffusion()
        assert (k.fs_chunk, k.nfs_chunk, k.pred_chunk_runs) == (1, 64, 20)

    def test_default_divisibility(self):
        """Parallel trip divides by threads*chunk for the paper sweep."""
        k = heat_diffusion()
        trip = k.nest.trip_counts()[k.nest.parallel_depth()]
        for T in (2, 4, 8, 16, 24, 32, 48):
            assert trip % (T * k.fs_chunk) == 0
            assert trip % (T * k.nfs_chunk) == 0


class TestDFT:
    def test_nest_shape(self):
        k = dft(samples=4, freqs=64)
        assert k.nest.loop_vars() == ("n", "k")
        assert k.nest.parallel_var == "k"
        assert validate_nest(k.nest).ok

    def test_rmw_accesses(self):
        k = dft(samples=4, freqs=64)
        accs = k.nest.innermost_accesses()
        out_re = [a for a in accs if a.array.name == "out_re"]
        assert [a.is_write for a in out_re] == [False, True]  # RMW pair

    def test_trig_calls_present(self):
        k = dft(samples=4, freqs=64)
        counts = k.nest.innermost().stmts()[0].rhs.op_counts()
        assert counts["call"] == 2

    def test_paper_chunk_configs(self):
        k = dft()
        assert (k.fs_chunk, k.nfs_chunk, k.pred_chunk_runs) == (1, 16, 50)


class TestLinreg:
    def test_inner_trip_is_points_over_threads(self):
        k = linear_regression(4, tasks=32, total_points=64)
        assert k.nest.trip_counts() == (32, 16)
        assert k.reference_nest.trip_counts() == (32, 64)

    def test_outer_parallelization(self):
        k = linear_regression(2, tasks=32, total_points=64)
        assert k.nest.parallel_var == "j"
        assert k.nest.parallel_depth() == 0

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divide evenly"):
            linear_regression(7, tasks=32, total_points=64)

    def test_struct_size_not_line_multiple(self):
        """The FS mechanism: 48-byte structs straddle 64-byte lines."""
        k = linear_regression(2, tasks=32, total_points=64)
        tid_args = next(a for a in k.nest.arrays() if a.name == "tid_args")
        assert tid_args.element.size == 48
        assert 64 % tid_args.element.size != 0

    def test_accumulator_access_pattern(self):
        k = linear_regression(2, tasks=32, total_points=64)
        accs = k.nest.innermost_accesses()
        writes = [a for a in accs if a.is_write]
        assert [a.field_path[0] for a in writes] == [
            "sx", "sxx", "sy", "syy", "sxy"
        ]

    def test_paper_chunk_configs(self):
        k = linear_regression(2)
        assert (k.fs_chunk, k.nfs_chunk, k.pred_chunk_runs) == (1, 10, 10)


class TestSourcesParse:
    """The C sources and the builders must agree (frontend integration)."""

    @pytest.mark.parametrize(
        "instance",
        [
            heat_diffusion(rows=6, cols=130),
            dft(samples=4, freqs=64),
            linear_regression(2, tasks=16, total_points=8),
        ],
        ids=["heat", "dft", "linreg"],
    )
    def test_frontend_matches_builder(self, instance):
        parsed = instance.frontend_nest()
        built = instance.nest
        assert parsed.loop_vars() == built.loop_vars()
        assert parsed.parallel_var == built.parallel_var
        assert parsed.trip_counts() == built.trip_counts()
        p_acc = parsed.innermost_accesses()
        b_acc = built.innermost_accesses()
        assert len(p_acc) == len(b_acc)
        for pa, ba in zip(p_acc, b_acc):
            assert pa.array.name == ba.array.name
            assert pa.is_write == ba.is_write
            assert pa.field_path == ba.field_path
            # Byte-identical affine offsets.
            assert pa.offset_expr() == ba.offset_expr()

    def test_sources_contain_pragma(self):
        assert "#pragma omp parallel for" in heat_source(8, 66)
        assert "#pragma omp parallel for" in dft_source(4, 64)
        assert "#pragma omp parallel for" in linreg_source(16, 8)


class TestTransposeNegativeControl:
    """The specificity check: transpose must NOT trigger the detector."""

    def test_zero_fs_at_chunk_one(self):
        from repro.kernels import transpose
        from repro.machine import paper_machine
        from repro.model import FalseSharingModel

        k = transpose(rows=8, cols=256)
        model = FalseSharingModel(paper_machine())
        for T in (2, 4, 8):
            r = model.analyze(k.nest, T, chunk=1)
            assert r.fs_cases == 0, (
                f"transpose must be FS-free at T={T}, got {r.fs_cases}"
            )

    def test_simulator_agrees(self):
        from repro.kernels import transpose
        from repro.machine import paper_machine
        from repro.sim import MulticoreSimulator

        k = transpose(rows=8, cols=256)
        s = MulticoreSimulator(paper_machine()).run(k.nest, 4, chunk=1)
        assert s.counters.coherence_events == 0

    def test_layout_sensitivity(self):
        """Shrinking the output rows below a line flips the verdict:
        48-byte rows straddle lines exactly like linreg's 48-byte
        structs, and the model must catch the difference."""
        from repro.kernels import transpose
        from repro.machine import paper_machine
        from repro.model import FalseSharingModel

        model = FalseSharingModel(paper_machine())
        aligned = model.analyze(transpose(rows=8, cols=256).nest, 4, chunk=1)
        straddling = model.analyze(transpose(rows=6, cols=256).nest, 4, chunk=1)
        assert aligned.fs_cases == 0
        assert straddling.fs_cases > straddling.steps_evaluated / 2

    def test_frontend_matches_builder(self):
        from repro.kernels import transpose

        k = transpose(rows=8, cols=64)
        parsed = k.frontend_nest()
        for pa, ba in zip(
            parsed.innermost_accesses(), k.nest.innermost_accesses()
        ):
            assert pa.offset_expr() == ba.offset_expr()
