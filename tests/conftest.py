"""Shared fixtures: miniature machines, nests and kernel instances.

Also installs a per-test wall-clock timeout guard (SIGALRM-based, no
third-party plugin needed) so a hung worker pool or an accidental
busy-loop cannot wedge the whole suite — a stuck test fails with a
diagnostic instead.  Tune with ``REPRO_TEST_TIMEOUT`` (seconds;
``0`` disables the guard).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
)
from repro.machine import paper_machine, tiny_machine


_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    """Fail any single test that runs longer than ``REPRO_TEST_TIMEOUT`` s.

    Uses ``SIGALRM``, so it only arms on POSIX main-thread runs (exactly
    the environments where a hung ``ProcessPoolExecutor`` would
    otherwise block forever).  Elsewhere it is a no-op.
    """
    if (
        _TEST_TIMEOUT_S <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):  # pragma: no cover - only fires on a hang
        pytest.fail(
            f"test exceeded the {_TEST_TIMEOUT_S:.0f}s wall-clock guard "
            f"(REPRO_TEST_TIMEOUT): {request.node.nodeid}",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Point the engine's result store at a per-test tmp dir.

    Keeps the suite from reading or polluting the developer's real
    ``~/.cache/repro``, and makes every test start cache-cold unless it
    builds its own :class:`repro.engine.ResultStore`.
    """
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("repro-cache"))
    )


@pytest.fixture
def machine():
    """The paper's 48-core machine."""
    return paper_machine()


@pytest.fixture
def small_machine():
    """A 4-core machine with 16-line caches (evictions observable)."""
    return tiny_machine(num_cores=4, cache_lines=16)


def make_copy_nest(
    n: int = 64, chunk: int = 1, parallel_var: str = "i", name: str = "copy.i"
) -> ParallelLoopNest:
    """``parallel for (i) b[i] = a[i] + 1`` — the simplest FS-prone loop."""
    a = ArrayDecl.create("a", DOUBLE, (n,))
    b = ArrayDecl.create("b", DOUBLE, (n,))
    i = AffineExpr.var("i")
    body = Assign(
        ArrayRef(b, (i,), is_write=True),
        BinOp("+", LoadExpr(ArrayRef(a, (i,))), Const(1.0, DOUBLE)),
    )
    loop = Loop.create("i", 0, n, [body])
    return ParallelLoopNest(
        name=name, root=loop, parallel_var=parallel_var,
        schedule=Schedule("static", chunk),
    )


def make_nested_nest(rows: int = 4, cols: int = 32, chunk: int = 1) -> ParallelLoopNest:
    """``for (i) parallel for (j) b[i][j] = a[i][j]`` — inner-parallel 2D."""
    a = ArrayDecl.create("a2", DOUBLE, (rows, cols))
    b = ArrayDecl.create("b2", DOUBLE, (rows, cols))
    i = AffineExpr.var("i")
    j = AffineExpr.var("j")
    body = Assign(
        ArrayRef(b, (i, j), is_write=True),
        LoadExpr(ArrayRef(a, (i, j))),
    )
    inner = Loop.create("j", 0, cols, [body])
    outer = Loop.create("i", 0, rows, [inner])
    return ParallelLoopNest(
        name="nested.j", root=outer, parallel_var="j",
        schedule=Schedule("static", chunk),
    )


@pytest.fixture
def copy_nest():
    return make_copy_nest()


@pytest.fixture
def nested_nest():
    return make_nested_nest()
