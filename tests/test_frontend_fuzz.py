"""Hypothesis fuzzing: the frontend never leaks internal exceptions.

The robustness contract for a compiler frontend is narrow but absolute:
*any* input — printable garbage, binary soup, pathological nesting,
truncated pragmas — either parses or raises a structured
:class:`~repro.frontend.FrontendError`.  ``IndexError``,
``AttributeError``, ``RecursionError`` or a hang are all bugs, no
matter how malformed the input was.

Each property also asserts that when a structured error *is* raised it
carries a registered ``REPRO-F…`` code, so the CLI's one-line
diagnostics stay meaningful under fire.

Deadline note: pycparser builds its parse tables on first use, which
can take longer than Hypothesis' default 200 ms deadline; deadlines are
disabled for the parse properties (the suite-wide alarm in conftest
still bounds true hangs).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import FrontendError, parse_c_source
from repro.frontend.pragmas import parse_omp_pragma
from repro.frontend.preprocess import preprocess
from repro.resilience import ERROR_CODES

# A generous but bounded alphabet: full printable ASCII plus newline,
# tab, NUL, a few non-ASCII codepoints — enough to hit tokenizer edge
# cases without drowning in astral-plane noise.
_text = st.text(
    alphabet=st.characters(
        codec="utf-8", max_codepoint=0x2FF
    ),
    max_size=200,
)

# C-ish fragments: shuffled keywords and punctuation that get much
# deeper into the parser than uniform noise does.
_c_soup = st.lists(
    st.sampled_from([
        "for", "(", ")", "{", "}", "[", "]", ";", "int", "double", "i",
        "a", "=", "+", "<", "++", "0", "N", "#define", "#pragma omp",
        "parallel", "schedule", "static", ",", "1", "\n", " ",
        "/*", "*/", "//", '"', "num_threads",
    ]),
    max_size=40,
).map(" ".join)


def _assert_structured(exc: FrontendError) -> None:
    assert exc.code in ERROR_CODES, f"unregistered code {exc.code}"
    assert exc.code.startswith("REPRO-F") or exc.code.startswith("REPRO-U")
    assert exc.one_line()  # renders without raising


class TestPreprocessFuzz:
    @settings(max_examples=200, deadline=1000)
    @given(_text)
    def test_arbitrary_text_never_leaks(self, source):
        try:
            result = preprocess(source)
        except FrontendError as exc:
            _assert_structured(exc)
        else:
            assert isinstance(result.source, str)
            assert isinstance(result.macros, dict)

    @settings(max_examples=100, deadline=1000)
    @given(_c_soup)
    def test_c_soup_never_leaks(self, source):
        try:
            preprocess(source)
        except FrontendError as exc:
            _assert_structured(exc)

    @settings(max_examples=100, deadline=1000)
    @given(st.text(alphabet="N()+-*/ 0123456789", max_size=40))
    def test_macro_values_never_leak(self, value):
        try:
            preprocess(f"#define N {value}\n")
        except FrontendError as exc:
            _assert_structured(exc)

    def test_exponent_bomb_is_rejected_fast(self):
        # 9**9**9**9 must not hang the preprocessor.
        with __import__("pytest").raises(FrontendError):
            preprocess("#define N 9**9**9**9\n")


class TestPragmaFuzz:
    @settings(max_examples=200, deadline=1000)
    @given(_text)
    def test_arbitrary_pragma_text_never_leaks(self, text):
        try:
            pragma = parse_omp_pragma(text)
        except FrontendError as exc:
            _assert_structured(exc)
        else:
            assert pragma is None or pragma.is_parallel_for or True

    @settings(max_examples=100, deadline=1000)
    @given(st.text(alphabet="schedul(,)staticdynamic0123456789 -", max_size=40))
    def test_schedule_clause_never_leaks(self, args):
        try:
            parse_omp_pragma(f"omp parallel for schedule({args})")
        except FrontendError as exc:
            _assert_structured(exc)


class TestParseFuzz:
    # parse_c_source drags in pycparser: slower, so fewer examples and
    # no per-example deadline (table construction on the first example).
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_c_soup)
    def test_c_soup_parses_or_raises_frontend_error(self, source):
        try:
            kernels = parse_c_source(source)
        except FrontendError as exc:
            _assert_structured(exc)
        else:
            assert isinstance(kernels, list)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_text)
    def test_arbitrary_text_parses_or_raises_frontend_error(self, source):
        try:
            parse_c_source(source)
        except FrontendError as exc:
            _assert_structured(exc)

    def test_truncated_kernel_has_span(self):
        import pytest

        with pytest.raises(FrontendError) as exc_info:
            parse_c_source("void f(void) { int i;\nfor (i = 0; i <")
        err = exc_info.value
        assert err.code.startswith("REPRO-F")
        # pycparser's location survives into the structured span.
        assert err.span is None or err.span.line >= 1
