"""Prometheus text-exposition export (``repro.obs.prometheus``)."""

from __future__ import annotations

import math

import pytest

from repro.obs import PROMETHEUS_CONTENT_TYPE, to_prometheus, write_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import _fmt


def _parse_samples(text: str) -> dict[str, float]:
    """name{labels} -> value for every non-comment line."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        out[metric] = float(value)
    return out


class TestScalars:
    def test_counter_and_gauge_render(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs by status").labels(status="ok").inc(3)
        reg.gauge("queue_depth", "queued jobs").set(7)
        text = to_prometheus(reg)
        assert "# HELP jobs_total jobs by status" in text
        assert "# TYPE jobs_total counter" in text
        assert "# TYPE queue_depth gauge" in text
        samples = _parse_samples(text)
        assert samples['jobs_total{status="ok"}'] == 3
        assert samples["queue_depth"] == 7

    def test_unlabeled_counter_has_no_braces(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "h").inc()
        samples = _parse_samples(to_prometheus(reg))
        assert samples == {"hits_total": 1.0}

    def test_declared_but_never_sampled_family_skipped(self):
        reg = MetricsRegistry()
        reg.counter("never_used_total", "declared only")
        assert "never_used_total" not in to_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", "w").labels(
            path='a"b\\c\nnext'
        ).inc()
        text = to_prometheus(reg)
        assert 'path="a\\"b\\\\c\\nnext"' in text

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total", "w").inc()
        text = to_prometheus(reg)
        assert "weird_name_total 1" in text


class TestHistograms:
    def test_buckets_are_cumulative_and_end_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "latency",
                             buckets=(0.1, 1.0, float("inf")))
        for v in (0.05, 0.5, 0.5, 10.0):
            hist.observe(v)
        samples = _parse_samples(to_prometheus(reg))
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="1"}'] == 3
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 4
        assert samples["lat_seconds_count"] == 4
        assert samples["lat_seconds_sum"] == pytest.approx(11.05)

    def test_inf_bucket_added_when_bounds_lack_it(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", "h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(5.0)  # beyond every explicit bound
        text = to_prometheus(reg)
        assert text.count('le="+Inf"') == 1
        samples = _parse_samples(text)
        assert samples['h_seconds_bucket{le="1"}'] == 1
        assert samples['h_seconds_bucket{le="+Inf"}'] == 2

    def test_labeled_histogram_keeps_le_last(self):
        reg = MetricsRegistry()
        reg.histogram(
            "d_seconds", "d", buckets=(1.0, float("inf"))
        ).labels(kind="x").observe(0.5)
        text = to_prometheus(reg)
        assert 'd_seconds_bucket{kind="x",le="1"} 1' in text
        assert 'd_seconds_sum{kind="x"} 0.5' in text


class TestValueFormatting:
    def test_integers_stay_integral(self):
        assert _fmt(3.0) == "3"
        assert _fmt(-2.0) == "-2"

    def test_floats_round_trip(self):
        assert float(_fmt(0.25)) == 0.25

    def test_specials(self):
        assert _fmt(float("nan")) == "NaN"
        assert _fmt(float("inf")) == "+Inf"
        assert _fmt(float("-inf")) == "-Inf"
        assert not math.isfinite(float("inf"))


class TestExportIntegration:
    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_write_metrics_prom_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("written_total", "w").inc(2)
        out = tmp_path / "metrics.prom"
        write_metrics(out, registry=reg)
        text = out.read_text(encoding="utf-8")
        assert "# TYPE written_total counter" in text
        assert "written_total 2" in text

    def test_every_line_is_well_formed(self):
        # Render the real process registry after some traffic and make
        # sure every line parses as comment or `name{labels} value`.
        import re

        from repro.obs import get_registry

        get_registry().counter("smoke_total", "s").labels(a="b").inc()
        get_registry().histogram("smoke_seconds", "s").observe(0.01)
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
        )
        for line in to_prometheus().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert sample_re.match(line), line
