"""Unit tests for model-guided mitigation (chunk optimizer, padding)."""

import pytest

from repro.kernels import build_linreg_nest, linear_regression
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from repro.transform import (
    ChunkSizeOptimizer,
    PaddingAdvisor,
    replace_array,
)
from repro.ir import ArrayDecl, DOUBLE, StructType
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestReplaceArray:
    def test_swaps_declaration_everywhere(self):
        nest = make_copy_nest(n=64)
        old_b = next(a for a in nest.arrays() if a.name == "b")
        new_b = ArrayDecl.create("b", DOUBLE, (64,))
        out = replace_array(nest, new_b)
        for ref in out.innermost_accesses():
            if ref.array.name == "b":
                assert ref.array is new_b
        # Original nest untouched.
        assert next(a for a in nest.arrays() if a.name == "b") is old_b

    def test_rejects_dimensionality_change(self):
        nest = make_copy_nest(n=64)
        with pytest.raises(ValueError):
            replace_array(nest, ArrayDecl.create("b", DOUBLE, (8, 8)))

    def test_untouched_when_name_absent(self):
        nest = make_copy_nest(n=64)
        out = replace_array(nest, ArrayDecl.create("zzz", DOUBLE, (4,)))
        assert out.innermost_accesses() == nest.innermost_accesses()


class TestChunkOptimizer:
    def test_recommends_larger_chunk_for_fs_loop(self, machine):
        opt = ChunkSizeOptimizer(machine, use_predictor=False)
        rec = opt.recommend(make_copy_nest(n=512), 4, candidates=(1, 2, 8))
        assert rec.best_chunk == 8  # line-aligned: no FS
        assert rec.improvement_percent(1) > 0

    def test_predictor_mode_agrees_with_full(self, machine):
        nest = make_copy_nest(n=512)
        full = ChunkSizeOptimizer(machine, use_predictor=False).recommend(
            nest, 4, candidates=(1, 8)
        )
        fast = ChunkSizeOptimizer(machine, use_predictor=True).recommend(
            nest, 4, candidates=(1, 8)
        )
        assert full.best_chunk == fast.best_chunk

    def test_candidates_pruned_to_trip(self, machine):
        opt = ChunkSizeOptimizer(machine, use_predictor=False)
        rec = opt.recommend(make_copy_nest(n=16), 4, candidates=(1, 2, 64))
        assert all(s.chunk in (1, 2) for s in rec.scores)

    def test_linreg_paper_motivation(self, machine):
        """Fig. 2's point: a bigger chunk beats chunk=1 for linreg."""
        nest = build_linreg_nest(tasks=64, ppt=16)
        opt = ChunkSizeOptimizer(machine, use_predictor=False)
        rec = opt.recommend(nest, 4, candidates=(1, 4, 8))
        assert rec.best_chunk > 1

    def test_scores_expose_fs_cases(self, machine):
        opt = ChunkSizeOptimizer(machine, use_predictor=False)
        rec = opt.recommend(make_copy_nest(n=256), 4, candidates=(1, 8))
        by_chunk = {s.chunk: s for s in rec.scores}
        assert by_chunk[1].fs_cases > by_chunk[8].fs_cases == 0


class TestPaddingAdvisor:
    def test_pads_linreg_struct_and_kills_fs(self, machine):
        nest = build_linreg_nest(tasks=64, ppt=8)
        advisor = PaddingAdvisor(machine)
        advices = advisor.advise(nest, 4)
        assert advices, "linreg should produce padding advice"
        adv = advices[0]
        assert adv.array == "tid_args"
        assert adv.element_bytes == 48
        assert adv.padded_bytes == 64
        assert adv.fs_after < adv.fs_before
        # Padded accumulators no longer share lines: model verifies ~0 FS
        # on the accumulator array; points loads never false-share.
        assert adv.fs_reduction_percent > 95.0

    def test_padded_struct_layout(self, machine):
        advisor = PaddingAdvisor(machine)
        s = StructType.create("s", [("a", DOUBLE), ("b", DOUBLE)])  # 16B
        padded = advisor.padded_struct(s)
        assert padded.size == 64
        assert padded.field_offset(("b",)) == 8  # original offsets kept

    def test_line_multiple_struct_unchanged(self, machine):
        advisor = PaddingAdvisor(machine)
        s = StructType.create("s", [("v", DOUBLE)] )
        padded8 = advisor.padded_struct(
            StructType.create("s8", [(f"v{i}", DOUBLE) for i in range(8)])
        )
        assert padded8.size == 64

    def test_no_advice_without_fs(self, machine):
        advisor = PaddingAdvisor(machine)
        nest = make_copy_nest(n=64, chunk=8)  # aligned: no FS
        assert advisor.advise(nest, 2) == []

    def test_scalar_array_not_padded(self, machine):
        advisor = PaddingAdvisor(machine)
        nest = make_copy_nest(n=64, chunk=1)  # FS on a scalar double array
        assert advisor.advise(nest, 2) == []

    def test_memory_cost_reported(self, machine):
        nest = build_linreg_nest(tasks=64, ppt=8)
        adv = PaddingAdvisor(machine).advise(nest, 4)[0]
        assert adv.extra_memory_bytes == 64 * (64 - 48)
