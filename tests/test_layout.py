"""Unit tests for the C struct layout engine (System-V x86-64 rules)."""

import pytest

from repro.ir.layout import (
    ArrayType,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    LONGLONG,
    PointerType,
    SHORT,
    StructType,
    align_up,
)


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(16, 8) == 16

    def test_rounds(self):
        assert align_up(17, 8) == 24

    def test_zero(self):
        assert align_up(0, 64) == 0

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestPrimitives:
    @pytest.mark.parametrize(
        "t,size", [(CHAR, 1), (SHORT, 2), (INT, 4), (LONG, 8), (DOUBLE, 8), (FLOAT, 4)]
    )
    def test_sizes(self, t, size):
        assert t.size == size
        assert t.alignment == size  # x86-64 self-alignment

    def test_float_flag(self):
        assert DOUBLE.is_float and FLOAT.is_float
        assert not INT.is_float and not LONG.is_float


class TestPointerAndArray:
    def test_pointer_is_8_bytes(self):
        p = PointerType(DOUBLE)
        assert p.size == 8 and p.alignment == 8

    def test_array_type(self):
        a = ArrayType(INT, 10)
        assert a.size == 40
        assert a.alignment == 4

    def test_array_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            ArrayType(INT, 0)


class TestStructLayout:
    def test_point_struct(self):
        pt = StructType.create("point", [("x", DOUBLE), ("y", DOUBLE)])
        assert pt.size == 16
        assert pt.alignment == 8
        assert pt.field_offset(("y",)) == 8

    def test_padding_between_members(self):
        # char then int: 3 bytes of padding before the int.
        s = StructType.create("s", [("c", CHAR), ("i", INT)])
        assert s.field_offset(("i",)) == 4
        assert s.size == 8

    def test_tail_padding(self):
        # int then char: tail-padded to 8 so arrays tile correctly? No —
        # alignment is max(4,1)=4, so size rounds to 8? 4+1=5 -> 8? No: to 8
        # only if alignment 8; here alignment 4 -> size 8.
        s = StructType.create("s", [("i", INT), ("c", CHAR)])
        assert s.alignment == 4
        assert s.size == 8

    def test_paper_lreg_args_struct(self):
        """The Phoenix linreg accumulator struct: 48 bytes on LP64."""
        pt = StructType.create("point_t", [("x", DOUBLE), ("y", DOUBLE)])
        s = StructType.create(
            "lreg_args",
            [
                ("points", PointerType(pt)),
                ("sx", LONGLONG),
                ("sxx", LONGLONG),
                ("sy", LONGLONG),
                ("syy", LONGLONG),
                ("sxy", LONGLONG),
            ],
        )
        assert s.size == 48
        assert s.field_offset(("sx",)) == 8
        assert s.field_offset(("sxy",)) == 40

    def test_nested_struct_offsets(self):
        inner = StructType.create("inner", [("a", INT), ("b", DOUBLE)])
        outer = StructType.create("outer", [("tag", CHAR), ("in_", inner)])
        assert inner.size == 16  # int + pad(4) + double
        assert outer.field_offset(("in_",)) == 8  # aligned to inner's 8
        assert outer.field_offset(("in_", "b")) == 16

    def test_member_array(self):
        s = StructType.create("s", [("arr", ArrayType(INT, 4)), ("d", DOUBLE)])
        assert s.field_offset(("d",)) == 16
        assert s.size == 24

    def test_field_lookup_error(self):
        s = StructType.create("s", [("a", INT)])
        with pytest.raises(KeyError):
            s.field("missing")

    def test_field_through_non_struct_fails(self):
        s = StructType.create("s", [("a", INT)])
        with pytest.raises(TypeError):
            s.field_offset(("a", "nope"))

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError):
            StructType.create("s", [("a", INT), ("a", DOUBLE)])

    def test_empty_struct_rejected(self):
        with pytest.raises(ValueError):
            StructType.create("s", [])

    def test_field_type(self):
        pt = StructType.create("p", [("x", DOUBLE)])
        s = StructType.create("s", [("p", pt)])
        assert s.field_type(("p", "x")) is DOUBLE

    def test_struct_not_float(self):
        s = StructType.create("s", [("x", DOUBLE)])
        assert not s.is_float
