"""Unit tests for thread-to-socket placement policies."""

import pytest

from repro.machine import pair_penalty_factory, socket_map, socket_of


class TestSocketOf:
    def test_contiguous_fills_sockets(self):
        assert socket_map(8, 4, "contiguous") == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_scatter_round_robins(self):
        assert socket_map(8, 4, "scatter") == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_single_socket_machine(self):
        assert socket_map(4, 12, "contiguous") == [0, 0, 0, 0]
        assert socket_map(4, 12, "scatter") == [0, 0, 0, 0]

    def test_paper_machine_topology(self):
        sockets = socket_map(48, 12, "contiguous")
        assert sockets[0] == 0 and sockets[11] == 0
        assert sockets[12] == 1 and sockets[47] == 3

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            socket_of(0, 8, 4, "diagonal")

    def test_bad_cores_per_socket(self):
        with pytest.raises(ValueError):
            socket_of(0, 8, 0, "contiguous")


class TestPairPenalty:
    def test_intra_socket_is_one(self):
        p = pair_penalty_factory(8, 4, "contiguous", 2.0)
        assert p(0, 3) == 1.0
        assert p(4, 7) == 1.0

    def test_cross_socket_scaled(self):
        p = pair_penalty_factory(8, 4, "contiguous", 2.0)
        assert p(3, 4) == 2.0
        assert p(0, 7) == 2.0

    def test_scatter_adjacent_cross(self):
        p = pair_penalty_factory(8, 4, "scatter", 3.0)
        assert p(0, 1) == 3.0
        assert p(0, 2) == 1.0

    def test_neutral_factor(self):
        p = pair_penalty_factory(8, 4, "scatter", 1.0)
        assert all(p(a, b) == 1.0 for a in range(8) for b in range(8))
