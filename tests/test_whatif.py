"""Unit tests for the what-if (threads × chunk) sweep."""

import pytest

from repro.kernels import build_linreg_nest
from repro.machine import paper_machine
from repro.model import WhatIfSweep
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def sweep():
    return WhatIfSweep(paper_machine(), predictor_runs=4)


class TestSweep:
    def test_grid_coverage(self, sweep):
        result = sweep.sweep(
            make_copy_nest(n=256), threads=(2, 4), chunks=(1, 2, 8)
        )
        assert len(result.points) == 6
        assert set(result.grid()) == {
            (t, c) for t in (2, 4) for c in (1, 2, 8)
        }

    def test_infeasible_points_skipped(self, sweep):
        result = sweep.sweep(
            make_copy_nest(n=16), threads=(2, 8), chunks=(1, 4, 16)
        )
        # chunk=16 infeasible at both; chunk=4 infeasible at T=8.
        assert (2, 16) not in result.grid()
        assert (8, 4) not in result.grid()
        assert (8, 1) in result.grid()

    def test_all_infeasible_raises(self, sweep):
        with pytest.raises(ValueError, match="no feasible"):
            sweep.sweep(make_copy_nest(n=4), threads=(8,), chunks=(16,))

    def test_best_avoids_fs_chunk(self, sweep):
        result = sweep.sweep(
            make_copy_nest(n=512), threads=(4,), chunks=(1, 8)
        )
        assert result.best_chunk_for(4).chunk == 8

    def test_fs_share_declines_with_chunk(self, sweep):
        result = sweep.sweep(
            build_linreg_nest(96, 16), threads=(4,), chunks=(1, 8)
        )
        grid = result.grid()
        assert grid[(4, 1)].fs_share > grid[(4, 8)].fs_share

    def test_full_model_mode_agrees(self):
        machine = paper_machine()
        fast = WhatIfSweep(machine, use_predictor=True, predictor_runs=8)
        slow = WhatIfSweep(machine, use_predictor=False)
        nest = make_copy_nest(n=256)
        f = fast.sweep(nest, threads=(4,), chunks=(1, 8))
        s = slow.sweep(nest, threads=(4,), chunks=(1, 8))
        for key in f.grid():
            assert f.grid()[key].fs_cases == pytest.approx(
                s.grid()[key].fs_cases, rel=0.1, abs=2
            )

    def test_rows_shape(self, sweep):
        result = sweep.sweep(make_copy_nest(n=64), threads=(2,), chunks=(1,))
        (row,) = result.to_rows()
        assert len(row) == 5

    def test_unknown_threads_query(self, sweep):
        result = sweep.sweep(make_copy_nest(n=64), threads=(2,), chunks=(1,))
        with pytest.raises(ValueError):
            result.best_chunk_for(16)
