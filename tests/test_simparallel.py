"""Segment-parallel simulation contracts: for every split, worker
count, failure and fallback, the merged counters, breakdowns, series
and end state are bit-identical to the serial walk."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.pool import WorkerPool
from repro.machine import tiny_machine
from repro.model import FalseSharingModel
from repro.model.detector import FSDetector, FSStats
from repro.model.ownership import OwnershipListGenerator
from repro.model.simparallel import (
    MIN_SEGMENT_RUNS,
    plan_segments,
    segment_eligible,
    simulate_segmented,
)
from repro.resilience.errors import ModelError
from repro.resilience.faults import FaultPlan, install_plan
from tests.conftest import make_copy_nest, make_nested_nest

_SCALARS = FSStats._SCALARS


def _serial(nest, T, cap, mode, record_series, max_steps=None,
            block_steps=64):
    """The model's serial walk, chunk-run series sampling included."""
    gen = OwnershipListGenerator(
        nest, T, line_size=64, block_steps=block_steps
    )
    det = FSDetector(T, cap, mode=mode)
    spr = gen.iteration_space.steps_per_chunk_run
    series = None
    if record_series:
        runs_per_block = max(1, block_steps // max(spr, 1))
        gen.enum.block_steps = runs_per_block * spr
        series = []
        for block in gen.blocks(max_steps):
            n = max((len(m) for m in block.lines), default=0)
            for off in range(0, n, spr):
                sub = tuple(m[off:off + spr] for m in block.lines)
                det.process_block(sub, gen.write_mask)
                series.append(det.stats.fs_cases)
    else:
        for block in gen.blocks(max_steps):
            det.process_block(block.lines, gen.write_mask)
    return det, series


def _parallel(nest, T, cap, mode, record_series, sim_jobs, bounds=None,
              max_steps=None, block_steps=64, pool=None):
    gen = OwnershipListGenerator(
        nest, T, line_size=64, block_steps=block_steps
    )
    det = FSDetector(T, cap, mode=mode)
    series = simulate_segmented(
        gen, det, sim_jobs=sim_jobs, engine="reference",
        max_steps=max_steps, record_series=record_series,
        pool=pool or WorkerPool(workers=1), segment_bounds=bounds,
    )
    return det, series


def _assert_identical(ref, par, ref_series, par_series):
    for name in _SCALARS:
        assert getattr(ref.stats, name) == getattr(par.stats, name), name
    assert ref.stats.fs_by_thread == par.stats.fs_by_thread
    assert ref.stats.fs_by_line == par.stats.fs_by_line
    assert ref.stats.fs_by_pair == par.stats.fs_by_pair
    assert ref.state_fingerprint() == par.state_fingerprint()
    assert ref_series == par_series


CASES = [
    pytest.param(make_copy_nest(n=4096, chunk=1), 4, 4, "invalidate",
                 id="copy-invalidate"),
    pytest.param(make_copy_nest(n=4096, chunk=1), 4, 4, "literal",
                 id="copy-literal"),
    pytest.param(make_copy_nest(n=4096, chunk=8), 3, 6, "invalidate",
                 id="copy-chunked"),
    pytest.param(make_nested_nest(rows=64, cols=128, chunk=1), 4, 5,
                 "invalidate", id="nested"),
]


class TestSegmentEquivalence:
    @pytest.mark.parametrize("nest,T,cap,mode", CASES)
    @pytest.mark.parametrize("record_series", [False, True],
                             ids=["counts", "series"])
    def test_parallel_equals_serial(self, nest, T, cap, mode,
                                    record_series):
        ref, s_ref = _serial(nest, T, cap, mode, record_series)
        par, s_par = _parallel(nest, T, cap, mode, record_series,
                               sim_jobs=4)
        _assert_identical(ref, par, s_ref, s_par)

    @given(seed=st.integers(0, 2**32 - 1),
           n_cuts=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_random_split_points(self, seed, n_cuts):
        """Any run-aligned split merges bit-identically — determination
        and fingerprint verification do not depend on segment shape."""
        nest = make_copy_nest(n=2048, chunk=1)
        T, cap = 4, 4
        gen = OwnershipListGenerator(nest, T, line_size=64, block_steps=64)
        spr = gen.iteration_space.steps_per_chunk_run
        total = gen.enum.max_steps
        runs = -(-total // spr)
        rng = np.random.default_rng(seed)
        cuts = sorted(set(rng.integers(1, runs, size=n_cuts).tolist()))
        bounds, prev = [], 0
        for c in cuts + [runs]:
            bounds.append((prev * spr, min(c * spr, total)))
            prev = c
        ref, s_ref = _serial(nest, T, cap, "invalidate", True)
        par, s_par = _parallel(nest, T, cap, "invalidate", True,
                               sim_jobs=4, bounds=bounds)
        _assert_identical(ref, par, s_ref, s_par)

    def test_no_determination_falls_back_serially(self):
        """Stacks that never fill (working set below capacity) produce
        no determination points; every segment re-simulates serially and
        the result is still exact."""
        nest = make_copy_nest(n=256, chunk=1)
        ref, s_ref = _serial(nest, 2, 512, "invalidate", True)
        par, s_par = _parallel(nest, 2, 512, "invalidate", True,
                               sim_jobs=4)
        _assert_identical(ref, par, s_ref, s_par)

    def test_truncated_analysis(self):
        nest = make_copy_nest(n=4096, chunk=1)
        ref, s_ref = _serial(nest, 4, 4, "invalidate", True, max_steps=300)
        par, s_par = _parallel(nest, 4, 4, "invalidate", True, 4,
                               max_steps=300)
        _assert_identical(ref, par, s_ref, s_par)

    def test_worker_failure_costs_speed_not_correctness(self):
        """A crashed segment worker (injected fault) degrades to the
        serial re-simulation of that segment; the merged result is
        unchanged."""
        nest = make_copy_nest(n=2048, chunk=1)
        ref, s_ref = _serial(nest, 4, 4, "invalidate", True)
        with install_plan(FaultPlan.parse("engine.job:raise:match=segment")):
            par, s_par = _parallel(nest, 4, 4, "invalidate", True,
                                   sim_jobs=4,
                                   pool=WorkerPool(workers=1, retries=0))
        _assert_identical(ref, par, s_ref, s_par)

    def test_real_process_pool(self):
        """One leg through actual worker processes (pickled payloads,
        cross-process merge)."""
        nest = make_copy_nest(n=4096, chunk=1)
        ref, s_ref = _serial(nest, 4, 4, "invalidate", True)
        par, s_par = _parallel(
            nest, 4, 4, "invalidate", True, sim_jobs=3,
            pool=WorkerPool(workers=2, inline=False),
        )
        _assert_identical(ref, par, s_ref, s_par)


class TestPlanning:
    def test_single_segment_when_small(self):
        assert plan_segments(100, 10, 1) == [(0, 100)]
        # 20 runs across 8 jobs would leave sub-minimum segments.
        assert plan_segments(
            200, 10, 8, min_segment_runs=MIN_SEGMENT_RUNS
        ) == [(0, 200)]
        assert plan_segments(0, 10, 4) == []

    def test_partition_is_exact_and_aligned(self):
        bounds = plan_segments(10_000, 10, 4, min_segment_runs=16)
        assert len(bounds) == 4
        assert bounds[0][0] == 0 and bounds[-1][1] == 10_000
        for (_, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start
            assert b_start % 10 == 0

    def test_ragged_total_steps(self):
        bounds = plan_segments(1003, 10, 3, min_segment_runs=8)
        assert bounds[-1][1] == 1003
        covered = sum(b - a for a, b in bounds)
        assert covered == 1003

    def test_eligibility_gates(self):
        nest = make_copy_nest(n=4096, chunk=1)
        gen = OwnershipListGenerator(nest, 4, line_size=64)
        total = gen.enum.max_steps
        assert segment_eligible(gen, 4, 4, total)
        assert not segment_eligible(gen, 4, 1, total)  # serial knob
        # Working set fits in the stacks: nothing would determine.
        assert not segment_eligible(gen, 100_000, 4, total)
        # Too little work to split.
        assert not segment_eligible(gen, 4, 4, 8)


class TestModelIntegration:
    def test_model_results_invariant_under_sim_jobs(self):
        machine = tiny_machine(num_cores=4, cache_lines=16)
        nest = make_copy_nest(n=8192, chunk=1)
        r1 = FalseSharingModel(machine, steady_state=False).analyze(
            nest, 4, record_series=True
        )
        r2 = FalseSharingModel(
            machine, steady_state=False, sim_jobs=3
        ).analyze(nest, 4, record_series=True)
        assert r1.fs_cases == r2.fs_cases
        assert r1.accesses == r2.accesses
        assert r1.stats.fs_by_pair == r2.stats.fs_by_pair
        assert r1.per_chunk_run.tolist() == r2.per_chunk_run.tolist()
        assert r1.engine == r2.engine

    def test_per_call_override(self):
        machine = tiny_machine(num_cores=4, cache_lines=16)
        nest = make_copy_nest(n=8192, chunk=1)
        model = FalseSharingModel(machine, steady_state=False)
        base = model.analyze(nest, 4)
        assert model.analyze(nest, 4, sim_jobs=3).fs_cases == base.fs_cases

    def test_sim_jobs_validated(self):
        with pytest.raises(ModelError):
            FalseSharingModel(tiny_machine(), sim_jobs=0)
