"""Unit tests for cache line ownership list generation (Section III-B)."""

import numpy as np
import pytest

from repro.ir import AddressSpace
from repro.model.ownership import OwnershipListGenerator
from tests.conftest import make_copy_nest, make_nested_nest


class TestOwnershipGeneration:
    def test_write_mask_matches_refs(self):
        gen = OwnershipListGenerator(make_copy_nest(), 2, line_size=64)
        assert gen.write_mask.tolist() == [False, True]

    def test_line_ids_follow_layout(self):
        nest = make_copy_nest(n=64, chunk=1)
        gen = OwnershipListGenerator(nest, 2, line_size=64)
        mat = gen.full_matrix(0)
        base_a = gen.space.base("a") // 64
        # Thread 0 visits even i; 8 doubles per line.
        assert mat[0, 0] == base_a       # i=0
        assert mat[3, 0] == base_a       # i=6
        assert mat[4, 0] == base_a + 1   # i=8

    def test_threads_partition_lines(self):
        nest = make_copy_nest(n=64, chunk=8)
        gen = OwnershipListGenerator(nest, 2, line_size=64)
        m0 = gen.full_matrix(0)
        m1 = gen.full_matrix(1)
        # chunk=8 aligns to the line: write lines are disjoint.
        assert not set(m0[:, 1].tolist()) & set(m1[:, 1].tolist())

    def test_chunk1_shares_lines(self):
        nest = make_copy_nest(n=64, chunk=1)
        gen = OwnershipListGenerator(nest, 2, line_size=64)
        m0 = gen.full_matrix(0)
        m1 = gen.full_matrix(1)
        assert set(m0[:, 1].tolist()) == set(m1[:, 1].tolist())

    def test_blocks_cover_all_steps(self):
        nest = make_nested_nest(rows=3, cols=8, chunk=1)
        gen = OwnershipListGenerator(nest, 2, line_size=64, block_steps=4)
        total = sum(len(b.lines[0]) for b in gen.blocks())
        assert total == gen.enum.thread_steps(0) == 12

    def test_shared_address_space_reused(self):
        space = AddressSpace()
        nest = make_copy_nest()
        gen1 = OwnershipListGenerator(nest, 2, line_size=64, space=space)
        gen2 = OwnershipListGenerator(nest, 4, line_size=64, space=space)
        assert gen1.space.base("a") == gen2.space.base("a")

    def test_touched_lines_count(self):
        nest = make_copy_nest(n=64)
        gen = OwnershipListGenerator(nest, 2, line_size=64)
        # 64 doubles = 8 lines per array, 2 arrays.
        assert len(gen.touched_lines()) == 16

    def test_rejects_nest_without_accesses(self):
        from repro.ir import Assign, Const, DOUBLE, Loop, ParallelLoopNest

        nest = ParallelLoopNest(
            "empty",
            Loop.create("i", 0, 4, [Assign("t", Const(0.0, DOUBLE))]),
            "i",
        )
        with pytest.raises(ValueError, match="no innermost array accesses"):
            OwnershipListGenerator(nest, 2, line_size=64)

    def test_max_steps_prefix(self):
        nest = make_copy_nest(n=64, chunk=1)
        gen = OwnershipListGenerator(nest, 2, line_size=64)
        mat = gen.full_matrix(0, max_steps=5)
        assert mat.shape == (5, 2)
