"""Unit + property tests for the LRU stack and stack-distance analyzer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.stackdist import (
    DistanceHistogram,
    LRUStack,
    MODIFIED,
    SHARED,
    StackDistanceAnalyzer,
)


def brute_force_distance(trace: list[int]) -> list:
    """Reference implementation: distinct lines since previous access."""
    out = []
    for idx, line in enumerate(trace):
        prev = None
        for k in range(idx - 1, -1, -1):
            if trace[k] == line:
                prev = k
                break
        if prev is None:
            out.append(None)
        else:
            out.append(len(set(trace[prev + 1 : idx])))
    return out


class TestLRUStack:
    def test_hit_and_miss(self):
        s = LRUStack(4)
        hit, ev = s.access(1, False)
        assert not hit and ev is None
        hit, _ = s.access(1, False)
        assert hit

    def test_eviction_order(self):
        s = LRUStack(2)
        s.access(1, False)
        s.access(2, False)
        _, evicted = s.access(3, False)
        assert evicted == 1

    def test_touch_refreshes_lru(self):
        s = LRUStack(2)
        s.access(1, False)
        s.access(2, False)
        s.access(1, False)  # 1 becomes MRU
        _, evicted = s.access(3, False)
        assert evicted == 2

    def test_write_marks_modified(self):
        s = LRUStack(4)
        s.access(5, True)
        assert s.state(5) == MODIFIED

    def test_read_preserves_dirty(self):
        s = LRUStack(4)
        s.access(5, True)
        s.access(5, False)
        assert s.state(5) == MODIFIED

    def test_read_inserts_shared(self):
        s = LRUStack(4)
        s.access(5, False)
        assert s.state(5) == SHARED

    def test_invalidate(self):
        s = LRUStack(4)
        s.access(5, True)
        assert s.invalidate(5)
        assert 5 not in s
        assert not s.invalidate(5)

    def test_downgrade(self):
        s = LRUStack(4)
        s.access(5, True)
        assert s.downgrade(5)
        assert s.state(5) == SHARED
        assert not s.downgrade(5)

    def test_stack_order_mru_first(self):
        s = LRUStack(4)
        for line in (1, 2, 3):
            s.access(line, False)
        assert [line for line, _ in s.stack()] == [3, 2, 1]

    def test_capacity_one(self):
        s = LRUStack(1)
        s.access(1, False)
        _, ev = s.access(2, False)
        assert ev == 1 and len(s) == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUStack(0)


class TestStackDistanceAnalyzer:
    def test_known_sequence(self):
        d = StackDistanceAnalyzer().distances([1, 2, 1, 2, 3, 1])
        assert d == [None, None, 1, 1, None, 2]

    def test_repeat_distance_zero(self):
        d = StackDistanceAnalyzer().distances([7, 7, 7])
        assert d == [None, 0, 0]

    def test_tree_growth(self):
        # Exceed the initial hint to exercise _grow().
        trace = list(range(50)) + list(range(50))
        analyzer = StackDistanceAnalyzer(trace_length_hint=16)
        d = analyzer.distances(trace)
        assert d[:50] == [None] * 50
        assert d[50:] == [49] * 50

    @given(st.lists(st.integers(0, 12), min_size=0, max_size=120))
    @settings(max_examples=80)
    def test_matches_brute_force(self, trace):
        assert StackDistanceAnalyzer().distances(trace) == brute_force_distance(trace)

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=80),
           st.integers(1, 10))
    @settings(max_examples=60)
    def test_lru_hit_iff_distance_below_capacity(self, trace, capacity):
        """The classic identity: LRU(C) hits exactly when distance < C."""
        stack = LRUStack(capacity)
        analyzer = StackDistanceAnalyzer()
        for line in trace:
            dist = analyzer.access(line)
            hit, _ = stack.access(line, False)
            expected = dist is not None and dist < capacity
            assert hit == expected


class TestDistanceHistogram:
    def test_histogram_counts(self):
        hist = StackDistanceAnalyzer().histogram([1, 2, 1, 2, 3, 1])
        assert hist.cold == 3
        assert hist.counts == {1: 2, 2: 1}
        assert hist.accesses == 6

    def test_misses_by_capacity(self):
        hist = DistanceHistogram(counts={0: 5, 3: 2}, cold=4)
        assert hist.misses(1) == 4 + 2
        assert hist.misses(4) == 4
        assert hist.hits(4) == 7
