"""Steady-state early-exit contracts.

The exact steady-state mechanism (docs/PERFORMANCE.md) detects a
periodic regime in the chunk-run sequence, proves it via canonical
cache-state fingerprints, and closes the remaining runs by *exact*
extrapolation.  These tests pin the three claims that make it safe:

1. results with the early exit are bit-identical to the full
   simulation (counters, breakdowns, and the per-chunk-run series);
2. the shift-profile algebra (classify/shift/canon/rename) is
   self-consistent between its scalar and vectorized forms;
3. the ``exact-steady-state`` fidelity tag propagates — through the
   model result and the resilience ladder — and normalizes to the
   exact tier.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine, tiny_machine
from repro.model import (
    FalseSharingModel,
    FSDetector,
    OwnershipListGenerator,
    compute_shift_profile,
)
from repro.resilience.errors import ModelError
from repro.resilience.ladder import (
    analyze_with_ladder,
    fidelity_tier,
)

_SCALARS = (
    "fs_cases", "fs_read_cases", "fs_write_cases", "accesses", "misses",
    "invalidations", "downgrades", "evictions", "steps",
)

#: Cheap configs whose working set overflows the tiny machine's stack,
#: putting them in the streaming regime where the steady state appears
#: within a few detection windows.
_STEADY_KERNELS = [
    ("heat", heat_diffusion(rows=3, cols=1026)),
    ("dft", dft(samples=2, freqs=1024)),
]


def _result_state(r):
    s = r.stats
    return (
        tuple(getattr(s, n) for n in _SCALARS),
        dict(s.fs_by_thread),
        dict(s.fs_by_line),
        dict(s.fs_by_pair),
        None if r.per_chunk_run is None else r.per_chunk_run.tolist(),
    )


def _profile_for(kernel, threads, line_size=64):
    gen = OwnershipListGenerator(
        kernel.nest.with_chunk(1), threads, line_size=line_size
    )
    profile = compute_shift_profile(gen, threads)
    assert profile is not None
    return profile


class TestShiftProfile:
    def test_heat_profile_shape(self):
        profile = _profile_for(heat_diffusion(rows=3, cols=1026), 4)
        assert profile.period_runs >= 1
        assert profile.runs_per_exec >= 3 * profile.period_runs
        assert len(profile.array_names) == len(profile.line_shifts)
        # heat writes march through memory: some array must shift.
        assert any(d != 0 for d in profile.line_shifts)

    @given(
        lines=st.lists(st.integers(-8, 4096), min_size=1, max_size=64),
        boundary=st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_scalar_and_vector_forms_agree(self, lines, boundary):
        """classify/shift_of/canon/renamer and their *_arrays twins are
        the same functions."""
        profile = _profile_for(heat_diffusion(rows=3, cols=1026), 4)
        arr = np.asarray(lines, dtype=np.int64)
        cls = profile.classify_arrays(arr)
        shf = profile.shift_of_arrays(arr)
        canon_v = profile.canon_arrays(boundary)(arr)
        rename_v = profile.renamer_arrays(boundary)(arr)
        canon_s = profile.canon(boundary)
        rename_s = profile.renamer(boundary)
        for i, ln in enumerate(lines):
            assert int(cls[i]) == profile.classify(ln)
            assert int(shf[i]) == profile.shift_of(ln)
            assert int(rename_v[i]) == rename_s(ln)
            key = canon_s(ln)
            if profile.classify(ln) < 0:
                assert (int(canon_v[0][i]), int(canon_v[1][i]))[1] == ln
            else:
                assert (int(canon_v[0][i]), int(canon_v[1][i])) == key

    def test_ineligible_nest_returns_none(self):
        """A ragged parallel trip (not a multiple of T×chunk) has no
        full-run translation structure."""
        k = heat_diffusion(rows=3, cols=1027)  # 1025 interior points
        gen = OwnershipListGenerator(k.nest.with_chunk(1), 4, line_size=64)
        assert compute_shift_profile(gen, 4) is None


class TestDetectorStateOps:
    """Fingerprint / rename primitives the runner is built on."""

    def _two_equal_detectors(self):
        a, b = FSDetector(2, 8), FSDetector(2, 8)
        for d in (a, b):
            for t, ln, w in [(0, 1, True), (1, 1, False), (0, 3, True)]:
                d.access(t, ln, w)
        return a, b

    def test_fingerprint_equality_and_divergence(self):
        a, b = self._two_equal_detectors()
        assert a.state_fingerprint() == b.state_fingerprint()
        b.access(1, 3, True)
        assert a.state_fingerprint() != b.state_fingerprint()

    def test_vector_fingerprint_consistent(self):
        profile = _profile_for(heat_diffusion(rows=3, cols=1026), 4)
        canon = profile.canon_arrays(2)
        a, b = self._two_equal_detectors()
        assert (
            a.state_fingerprint(canon_arrays=canon)
            == b.state_fingerprint(canon_arrays=canon)
        )
        b.access(0, 5, False)
        assert (
            a.state_fingerprint(canon_arrays=canon)
            != b.state_fingerprint(canon_arrays=canon)
        )

    def test_shift_lines_scalar_vector_equivalent(self):
        a, b = self._two_equal_detectors()
        a.shift_lines(rename=lambda ln: ln + 4)

        def rename_arrays(keys):
            return keys + 4

        b.shift_lines(rename_arrays=rename_arrays)
        for t in range(2):
            assert a.cache_state(t) == b.cache_state(t)
        for ln in (5, 7):
            assert a.holders_of(ln) == b.holders_of(ln)
            assert a.writers_of(ln) == b.writers_of(ln)
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_shift_lines_requires_exactly_one_renamer(self):
        d = FSDetector(2, 8)
        with pytest.raises(ModelError):
            d.shift_lines()
        with pytest.raises(ModelError):
            d.shift_lines(rename=lambda ln: ln, rename_arrays=lambda k: k)

    def test_shift_lines_rejects_collisions(self):
        d = FSDetector(1, 8)
        d.access(0, 1, True)
        d.access(0, 2, True)
        with pytest.raises(ModelError):
            d.shift_lines(rename=lambda ln: 0)


class TestSteadyStateEquivalence:
    @pytest.mark.parametrize("name,kernel", _STEADY_KERNELS)
    @pytest.mark.parametrize("record_series", [False, True])
    def test_bit_identical_to_full_simulation(
        self, name, kernel, record_series
    ):
        machine = tiny_machine(4, 64)
        full = FalseSharingModel(machine, steady_state=False).analyze(
            kernel.nest, 4, chunk=1, record_series=record_series
        )
        steady = FalseSharingModel(machine, steady_state=True).analyze(
            kernel.nest, 4, chunk=1, record_series=record_series
        )
        assert _result_state(full) == _result_state(steady)
        # The mechanism must actually fire on these configs, otherwise
        # this test degenerates into comparing a path with itself.
        assert steady.runs_extrapolated > 0, name
        assert steady.fidelity == "exact-steady-state"
        assert full.fidelity == "exact"
        assert (
            steady.runs_simulated + steady.runs_extrapolated
            == steady.total_chunk_runs
        )

    def test_reference_engine_composes_with_steady_state(self):
        """steady_state rides on either detector engine."""
        machine = tiny_machine(4, 64)
        k = heat_diffusion(rows=3, cols=1026)
        fast = FalseSharingModel(
            machine, engine="fast", steady_state=True
        ).analyze(k.nest, 4, chunk=1)
        ref = FalseSharingModel(
            machine, engine="reference", steady_state=True
        ).analyze(k.nest, 4, chunk=1)
        assert _result_state(fast) == _result_state(ref)
        assert fast.runs_extrapolated == ref.runs_extrapolated > 0

    def test_small_kernel_stays_plain_exact(self):
        """Kernels without enough runs per exec never trigger the
        mechanism — they report plain "exact" with zero extrapolation."""
        machine = paper_machine()
        k = linear_regression(4, tasks=96, total_points=480)
        r = FalseSharingModel(machine, steady_state=True).analyze(
            k.nest, 4, chunk=4
        )
        assert r.runs_extrapolated == 0
        assert r.fidelity == "exact"

    def test_per_call_override(self):
        machine = tiny_machine(4, 64)
        k = heat_diffusion(rows=3, cols=1026)
        model = FalseSharingModel(machine, steady_state=True)
        r_off = model.analyze(k.nest, 4, chunk=1, steady_state=False)
        r_on = model.analyze(k.nest, 4, chunk=1)
        assert r_off.runs_extrapolated == 0
        assert r_on.runs_extrapolated > 0
        assert _result_state(r_off) == _result_state(r_on)

    def test_hits_counter_increments(self):
        from repro.obs import get_registry

        machine = tiny_machine(4, 64)
        k = dft(samples=2, freqs=1024)
        counter = get_registry().counter(
            "steadystate_hits_total",
            "periodicity detections that triggered exact extrapolation",
        ).labels(kernel=k.nest.name)
        before = counter.value
        r = FalseSharingModel(machine, steady_state=True).analyze(
            k.nest, 4, chunk=1
        )
        assert r.runs_extrapolated > 0
        assert counter.value > before


class TestFidelityPropagation:
    def test_fidelity_tier_normalization(self):
        assert fidelity_tier("exact") == "exact"
        assert fidelity_tier("exact-steady-state") == "exact"
        assert fidelity_tier("regression") == "regression"
        assert fidelity_tier("analytic") == "analytic"

    def test_ladder_passes_steady_state_tag_through(self):
        machine = tiny_machine(4, 64)
        k = heat_diffusion(rows=3, cols=1026)
        model = FalseSharingModel(machine, steady_state=True)
        outcome = analyze_with_ladder(
            machine, k.nest, 4, chunk=1, prefer="exact", model=model
        )
        assert outcome.fidelity == "exact-steady-state"
        assert fidelity_tier(outcome.fidelity) == "exact"
        assert not outcome.degraded
        assert outcome.detail.runs_extrapolated > 0
