"""Unit tests for the loop IR: statements, loops, parallel nests."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
)
from tests.conftest import make_copy_nest, make_nested_nest

I = AffineExpr.var("i")
A = ArrayDecl.create("a", DOUBLE, (64,))
B = ArrayDecl.create("b", DOUBLE, (64,))


class TestAssign:
    def test_plain_assign_accesses(self):
        stmt = Assign(
            ArrayRef(B, (I,), is_write=True), LoadExpr(ArrayRef(A, (I,)))
        )
        kinds = [(r.array.name, r.is_write) for r in stmt.accesses()]
        assert kinds == [("a", False), ("b", True)]

    def test_augmented_assign_reads_target_first(self):
        stmt = Assign(
            ArrayRef(B, (I,), is_write=True),
            LoadExpr(ArrayRef(A, (I,))),
            augmented="+",
        )
        kinds = [(r.array.name, r.is_write) for r in stmt.accesses()]
        assert kinds == [("a", False), ("b", False), ("b", True)]

    def test_scalar_target_no_store(self):
        stmt = Assign("acc", LoadExpr(ArrayRef(A, (I,))), augmented="+")
        assert [r.is_write for r in stmt.accesses()] == [False]

    def test_target_must_be_write_ref(self):
        with pytest.raises(ValueError):
            Assign(ArrayRef(B, (I,)), Const(0.0, DOUBLE))

    def test_bad_compound_op(self):
        with pytest.raises(ValueError):
            Assign(ArrayRef(B, (I,), is_write=True), Const(0.0, DOUBLE), augmented="%")


class TestLoop:
    def test_trip_count(self):
        body = [Assign("t", Const(0.0, DOUBLE))]
        assert Loop.create("i", 0, 10, body).trip_count() == 10
        assert Loop.create("i", 0, 10, body, step=3).trip_count() == 4
        assert Loop.create("i", 5, 5, body).trip_count() == 0

    def test_trip_count_with_env(self):
        body = [Assign("t", Const(0.0, DOUBLE))]
        lp = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("N"), tuple(body))
        assert lp.trip_count({"N": 12}) == 12

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            Loop.create("i", 0, 10, [Assign("t", Const(0.0, DOUBLE))], step=0)

    def test_rejects_empty_body(self):
        with pytest.raises(ValueError):
            Loop.create("i", 0, 10, [])

    def test_substitute_binds_params(self):
        body = [Assign("t", Const(0.0, DOUBLE))]
        lp = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("N"), tuple(body))
        assert lp.substitute({"N": 8}).trip_count() == 8

    def test_substitute_protects_own_var(self):
        stmt = Assign(ArrayRef(B, (I,), is_write=True), Const(0.0, DOUBLE))
        lp = Loop.create("i", 0, 4, [stmt])
        out = lp.substitute({"i": 99})
        (inner_stmt,) = out.stmts()
        assert inner_stmt.target.indices[0].coeff("i") == 1  # untouched

    def test_walk(self):
        nest = make_nested_nest()
        assert [lp.var for lp in nest.root.walk()] == ["i", "j"]


class TestSchedule:
    def test_static_only(self):
        with pytest.raises(ValueError):
            Schedule("dynamic", 1)

    def test_positive_chunk(self):
        with pytest.raises(ValueError):
            Schedule("static", 0)

    def test_with_chunk(self):
        assert Schedule("static", 1).with_chunk(8).chunk == 8

    def test_default_chunk_none(self):
        assert Schedule("static", None).chunk is None


class TestParallelLoopNest:
    def test_spine(self):
        nest = make_nested_nest()
        assert nest.loop_vars() == ("i", "j")
        assert nest.parallel_depth() == 1
        assert nest.innermost().var == "j"

    def test_parallel_var_must_exist(self):
        lp = Loop.create("i", 0, 4, [Assign("t", Const(0.0, DOUBLE))])
        with pytest.raises(ValueError):
            ParallelLoopNest("bad", lp, "zz")

    def test_trip_counts_and_total(self):
        nest = make_nested_nest(rows=3, cols=16)
        assert nest.trip_counts() == (3, 16)
        assert nest.total_iterations() == 48

    def test_innermost_accesses(self):
        nest = make_copy_nest(n=8)
        accs = nest.innermost_accesses()
        assert [a.array.name for a in accs] == ["a", "b"]

    def test_arrays_unique(self):
        nest = make_copy_nest()
        assert [a.name for a in nest.arrays()] == ["a", "b"]

    def test_with_chunk_immutable(self):
        nest = make_copy_nest(chunk=1)
        other = nest.with_chunk(16)
        assert nest.schedule.chunk == 1
        assert other.schedule.chunk == 16

    def test_bind_removes_params(self):
        a = ArrayDecl.create("arr", DOUBLE, (AffineExpr.var("N"),))
        body = Assign(
            ArrayRef(a.bind({}), (I,), is_write=True), Const(0.0, DOUBLE)
        )
        lp = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("N"), (body,))
        nest = ParallelLoopNest("p", lp, "i", params=("N",))
        bound = nest.bind({"N": 32})
        assert bound.params == ()
        assert bound.trip_counts() == (32,)

    def test_str(self):
        s = str(make_copy_nest())
        assert "parallel=i" in s and "schedule" in s
