"""Execute every doctest in the package as part of the test suite.

Doctests in this repository are API contracts (affine algebra, layout
rules, scheduling examples); running them here keeps the documentation
honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names() -> list[str]:
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("modname", _module_names())
def test_module_doctests(modname):
    module = importlib.import_module(modname)
    result = doctest.testmod(module, raise_on_error=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {modname}"
