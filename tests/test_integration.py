"""Integration tests: model vs simulator, frontend-to-report pipelines.

The load-bearing check is model/simulator agreement: the compile-time FS
model (fully-associative cache states, φ/mask counting) and the MESI
simulator (set-associative caches, directory protocol, timing) are
independent implementations; on working sets that fit both cache
organizations their coherence-event counts must match exactly, and the
Eq. (5) percentages they produce must land close to each other.
"""

import pytest

from repro.costmodels import TotalCostModel
from repro.frontend import parse_c_source
from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine
from repro.model import (
    FalseSharingModel,
    FalseSharingPredictor,
    fs_overhead_percent,
    measured_fs_percent,
)
from repro.sim import MulticoreSimulator
from tests.conftest import make_copy_nest, make_nested_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def model(machine):
    return FalseSharingModel(machine)


@pytest.fixture(scope="module")
def sim(machine):
    return MulticoreSimulator(machine)


class TestModelMatchesSimulator:
    """FS cases (model) vs coherence events (simulator)."""

    @pytest.mark.parametrize("threads", [2, 4, 8])
    @pytest.mark.parametrize("chunk", [1, 2, 8])
    def test_copy_kernel_exact_agreement(self, model, sim, threads, chunk):
        nest = make_copy_nest(n=256)
        m = model.analyze(nest, threads, chunk=chunk)
        s = sim.run(nest, threads, chunk=chunk)
        assert m.fs_cases == s.counters.coherence_events

    @pytest.mark.parametrize(
        "kernel",
        [
            heat_diffusion(rows=5, cols=386),
            dft(samples=3, freqs=192),
            linear_regression(4, tasks=48, total_points=96),
        ],
        ids=["heat", "dft", "linreg"],
    )
    def test_paper_kernels_exact_agreement(self, model, sim, kernel):
        for chunk in (kernel.fs_chunk, kernel.nfs_chunk):
            m = model.analyze(kernel.nest, 4, chunk=chunk)
            s = sim.run(kernel.nest, 4, chunk=chunk)
            assert m.fs_cases == s.counters.coherence_events

    def test_read_write_split_agreement(self, model, sim):
        k = dft(samples=3, freqs=192)
        m = model.analyze(k.nest, 4, chunk=1)
        s = sim.run(k.nest, 4, chunk=1)
        assert m.fs_read_cases == s.counters.load_remote_modified
        assert m.fs_write_cases == s.counters.store_miss_remote_modified


class TestPercentageAgreement:
    """Eq. (5): modeled % ≈ measured % for innermost-parallel kernels."""

    @pytest.mark.parametrize(
        "kernel",
        [heat_diffusion(rows=5, cols=1538), dft(samples=4, freqs=768)],
        ids=["heat", "dft"],
    )
    def test_modeled_tracks_measured(self, machine, model, sim, kernel):
        tm = TotalCostModel(machine)
        for T in (2, 8):
            s_fs = sim.run(kernel.nest, T, chunk=kernel.fs_chunk)
            s_nfs = sim.run(kernel.nest, T, chunk=kernel.nfs_chunk)
            measured = measured_fs_percent(s_fs.cycles, s_nfs.cycles)
            r_fs = model.analyze(kernel.nest, T, chunk=kernel.fs_chunk)
            r_nfs = model.analyze(kernel.nest, T, chunk=kernel.nfs_chunk)
            modeled = fs_overhead_percent(
                r_fs, r_nfs, machine, kernel.reference_nest, tm
            ).percent
            assert measured > 5.0
            assert modeled == pytest.approx(measured, abs=12.0)

    def test_linreg_modeled_declines_with_threads(self, machine, model):
        """The paper's Table III observation."""
        tm = TotalCostModel(machine)
        percents = []
        for T in (2, 8):
            k = linear_regression(T, tasks=96, total_points=480)
            r_fs = model.analyze(k.nest, T, chunk=k.fs_chunk)
            r_nfs = model.analyze(k.nest, T, chunk=k.nfs_chunk)
            percents.append(
                fs_overhead_percent(
                    r_fs, r_nfs, machine, k.reference_nest, tm
                ).percent
            )
        assert percents[1] < percents[0] * 0.8


class TestPredictionPipeline:
    def test_predicted_matches_modeled_heat(self, model):
        k = heat_diffusion(rows=5, cols=1538)
        pred = FalseSharingPredictor(model, n_runs=k.pred_chunk_runs).predict(
            k.nest, 4, chunk=k.fs_chunk
        )
        full = model.analyze(k.nest, 4, chunk=k.fs_chunk)
        assert pred.predicted_fs_cases == pytest.approx(full.fs_cases, rel=0.10)

    def test_linearity_premise_fig6(self, model):
        from repro.model import ols_fit
        import numpy as np

        k = heat_diffusion(rows=5, cols=1538)
        r = model.analyze(
            k.nest, 4, chunk=1, max_chunk_runs=20, record_series=True
        )
        x = np.arange(1, len(r.per_chunk_run) + 1, dtype=float)
        fit = ols_fit(x, r.per_chunk_run.astype(float))
        assert fit.r2 > 0.99


class TestSourceToReportPipeline:
    def test_c_source_through_model(self, model):
        k = heat_diffusion(rows=5, cols=386)
        parsed = parse_c_source(k.source)[0].nest
        direct = model.analyze(k.nest, 4, chunk=1)
        via_c = model.analyze(parsed, 4, chunk=1)
        assert via_c.fs_cases == direct.fs_cases

    def test_victims_match_paper_motivation(self, model):
        """The linreg FS lives in tid_args, not in the points data."""
        k = linear_regression(4, tasks=48, total_points=96)
        r = model.analyze(k.nest, 4, chunk=1)
        victims = r.victim_arrays()
        assert victims[0].name == "tid_args"


class TestCacheModelMatchesSimulator:
    """The Open64-style cache model's miss estimates vs the MESI
    simulator's actual miss counters (single thread, no coherence)."""

    def test_streaming_miss_rate_band(self, machine):
        from repro.costmodels import CacheModel
        from repro.sim import MulticoreSimulator

        nest = make_copy_nest(n=65536)  # 512 KB per array: streams past L2
        cm = CacheModel(machine)
        est = cm.estimate(nest, per_thread_iters=nest.total_iterations())

        sim = MulticoreSimulator(machine, prefetcher=False)
        r = sim.run(nest, 1, chunk=None)
        # The sim's single private-cache level corresponds to the model's
        # L2: every load line-transition misses (1 load/iter, 8 per line).
        sim_load_misses = (
            r.counters.load_cold + r.counters.load_shared_fills
        )
        sim_rate = sim_load_misses / nest.total_iterations()
        # Model: load stream contributes 1/8 misses per iteration.
        assert est.misses_per_iter_l2 == pytest.approx(0.25, abs=0.01)
        assert sim_rate == pytest.approx(0.125, abs=0.01)
        # Per-stream rates agree (model counts the store stream too).
        assert est.misses_per_iter_l2 / 2 == pytest.approx(sim_rate, rel=0.05)

    def test_resident_set_no_steady_state_misses(self, machine):
        from repro.costmodels import CacheModel
        from repro.sim import MulticoreSimulator

        nest = make_copy_nest(n=512)  # 8 KB: resident everywhere
        cm = CacheModel(machine)
        est = cm.estimate(nest, per_thread_iters=nest.total_iterations())
        r = MulticoreSimulator(machine).run(nest, 1)
        # Both sides: only cold fills (64 lines per array, one pass).
        assert est.misses_per_iter_l2 <= 2 * 64 / 512 + 1e-9
        assert r.counters.load_cold + r.counters.load_prefetched <= 64
        assert r.counters.load_shared_fills == 0
