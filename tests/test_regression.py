"""Unit + property tests for the linear-regression FS predictor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor, ols_fit, paper_fit
from tests.conftest import make_copy_nest


class TestPaperFit:
    def test_exact_line_through_origin(self):
        fit = paper_fit(np.array([1.0, 2, 3]), np.array([3.0, 6, 9]))
        assert fit.a == pytest.approx(3.0)
        assert fit.b == pytest.approx(0.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_formula_matches_paper(self):
        """a = Σxy/Σx², b = mean(y − a·x) — verbatim from Section III-E."""
        x = np.array([1.0, 2, 3, 4])
        y = np.array([2.0, 3, 5, 9])
        fit = paper_fit(x, y)
        a_expected = float(x @ y) / float(x @ x)
        assert fit.a == pytest.approx(a_expected)
        assert fit.b == pytest.approx(np.mean(y - a_expected * x))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            paper_fit(np.array([]), np.array([]))

    def test_rejects_all_zero_x(self):
        with pytest.raises(ValueError):
            paper_fit(np.zeros(3), np.ones(3))


class TestOlsFit:
    def test_recovers_affine_data(self):
        x = np.arange(1, 20, dtype=float)
        y = 4.0 * x + 11.0
        fit = ols_fit(x, y)
        assert fit.a == pytest.approx(4.0)
        assert fit.b == pytest.approx(11.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_single_point(self):
        fit = ols_fit(np.array([2.0]), np.array([5.0]))
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_constant_x(self):
        fit = ols_fit(np.array([3.0, 3.0]), np.array([1.0, 3.0]))
        assert fit.a == 0.0
        assert fit.b == pytest.approx(2.0)

    @given(
        a=st.floats(-100, 100, allow_nan=False),
        b=st.floats(-1000, 1000, allow_nan=False),
        n=st.integers(2, 40),
    )
    @settings(max_examples=60)
    def test_exact_recovery_property(self, a, b, n):
        x = np.arange(1, n + 1, dtype=float)
        y = a * x + b
        fit = ols_fit(x, y)
        assert fit.a == pytest.approx(a, abs=1e-6)
        assert fit.b == pytest.approx(b, abs=1e-4)


class TestPredictor:
    @pytest.fixture(scope="class")
    def model(self):
        return FalseSharingModel(paper_machine())

    def test_prediction_close_to_full_model(self, model):
        nest = make_copy_nest(n=256)
        pred = FalseSharingPredictor(model, n_runs=8).predict(nest, 4, chunk=1)
        full = model.analyze(nest, 4, chunk=1)
        rel_err = abs(pred.predicted_fs_cases - full.fs_cases) / full.fs_cases
        assert rel_err < 0.05

    def test_prediction_evaluates_fewer_iterations(self, model):
        nest = make_copy_nest(n=4096)
        pred = FalseSharingPredictor(model, n_runs=8).predict(nest, 4, chunk=1)
        full_steps = nest.total_iterations() // 4
        assert pred.prefix_result.steps_evaluated < full_steps / 10

    def test_sampled_runs_clipped_to_total(self, model):
        nest = make_copy_nest(n=32)  # only 8 chunk runs exist at T=4 chunk=1
        pred = FalseSharingPredictor(model, n_runs=100).predict(nest, 4, chunk=1)
        assert pred.sampled_runs == pred.total_runs == 8

    def test_nonnegative_prediction(self, model):
        nest = make_copy_nest(n=64)
        pred = FalseSharingPredictor(model, n_runs=4).predict(nest, 2, chunk=8)
        assert pred.predicted_fs_cases == 0.0  # aligned chunks: no FS

    def test_ols_method_available(self, model):
        nest = make_copy_nest(n=256)
        pred = FalseSharingPredictor(model, n_runs=8, method="ols").predict(
            nest, 4, chunk=1
        )
        full = model.analyze(nest, 4, chunk=1)
        assert pred.predicted_fs_cases == pytest.approx(full.fs_cases, rel=0.05)

    def test_rejects_bad_args(self, model):
        with pytest.raises(ValueError):
            FalseSharingPredictor(model, n_runs=0)
        with pytest.raises(ValueError):
            FalseSharingPredictor(model, method="quadratic")
