"""Unit tests for CSV/JSON export of experiment results."""

import csv

from repro.analysis import (
    ExperimentResult,
    load_results_json,
    result_to_csv,
    results_to_csv_dir,
    results_to_json,
)


def sample_results():
    r1 = ExperimentResult("Table I", "heat", ("threads", "pct"))
    r1.add_row(2, 31.3)
    r1.add_row(4, 31.6)
    r1.notes.append("a note")
    r2 = ExperimentResult("Fig. 2", "chunks", ("chunk", "ms"))
    r2.add_row(1, 0.5)
    return [r1, r2]


class TestCSV:
    def test_single_result(self, tmp_path):
        path = result_to_csv(sample_results()[0], tmp_path / "t1.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["threads", "pct"]
        assert rows[1] == ["2", "31.3"]

    def test_directory_export(self, tmp_path):
        paths = results_to_csv_dir(sample_results(), tmp_path / "out")
        names = sorted(p.name for p in paths)
        assert names == ["fig_2.csv", "table_i.csv"]
        assert all(p.exists() for p in paths)


class TestJSONRoundTrip:
    def test_round_trip(self, tmp_path):
        originals = sample_results()
        path = results_to_json(originals, tmp_path / "all.json")
        loaded = load_results_json(path)
        assert len(loaded) == 2
        for a, b in zip(originals, loaded):
            assert a.experiment == b.experiment
            assert a.columns == b.columns
            assert a.rows == [tuple(r) for r in b.rows] or a.rows == b.rows
            assert a.notes == b.notes
