"""Unit + round-trip tests for C emission from the IR."""

import pytest

from repro.frontend import parse_c_source
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    DOUBLE,
    INT,
    LoadExpr,
    StructType,
    UnOp,
    VarRef,
    emit_affine,
    emit_expr,
    emit_nest,
    emit_struct,
)
from repro.ir.emit import EmitError, emit_ref
from repro.kernels import build_dft_nest, build_heat_nest, build_linreg_nest
from tests.conftest import make_copy_nest, make_nested_nest

I = AffineExpr.var("i")
A = ArrayDecl.create("a", DOUBLE, (16,))


class TestEmitAffine:
    def test_simple(self):
        assert emit_affine(2 * I + 1) == "2 * i + 1"

    def test_negative_const(self):
        assert emit_affine(I - 1) == "i - 1"

    def test_pure_const(self):
        assert emit_affine(AffineExpr.const_expr(7)) == "7"

    def test_negative_coeff(self):
        assert emit_affine(-1 * I + 3) == "-i + 3"


class TestEmitExpr:
    def test_load(self):
        assert emit_expr(LoadExpr(ArrayRef(A, (I,)))) == "a[i]"

    def test_binop_parenthesized(self):
        e = BinOp("+", VarRef("x", DOUBLE), Const(1.0, DOUBLE))
        assert emit_expr(e) == "(x + 1.0)"

    def test_call(self):
        e = CallExpr("cos", (VarRef("w", DOUBLE),))
        assert emit_expr(e) == "cos(w)"

    def test_cast(self):
        e = CastExpr(DOUBLE, VarRef("n", INT))
        assert emit_expr(e) == "((double)(n))"

    def test_unop(self):
        assert emit_expr(UnOp("-", VarRef("x", DOUBLE))) == "-(x)"

    def test_int_const(self):
        assert emit_expr(Const(3, INT)) == "3"


class TestEmitRef:
    def test_plain(self):
        assert emit_ref(ArrayRef(A, (I + 1,))) == "a[i + 1]"

    def test_struct_field(self):
        s = StructType.create("s_t", [("v", DOUBLE)])
        arr = ArrayDecl.create("arr", s, (8,))
        assert emit_ref(ArrayRef(arr, (I,), ("v",))) == "arr[i].v"

    def test_synthetic_pointer_member(self):
        pt = StructType.create("pt", [("x", DOUBLE)])
        arr = ArrayDecl.create("base.points", pt, (8, 4))
        j = AffineExpr.var("j")
        out = emit_ref(ArrayRef(arr, (j, I), ("x",)))
        assert out == "base[j].points[i].x"

    def test_extra_offset_rejected(self):
        ref = ArrayRef(A, (I,), extra=AffineExpr.var("k"))
        with pytest.raises(EmitError):
            emit_ref(ref)


class TestEmitStruct:
    def test_plain_struct(self):
        s = StructType.create("pair", [("a", DOUBLE), ("b", INT)])
        out = emit_struct(s)
        assert "typedef struct {" in out
        assert "double a;" in out
        assert "} pair;" in out

    def test_member_array(self):
        from repro.ir import ArrayType, CHAR

        s = StructType.create("padded", [("v", DOUBLE), ("_pad", ArrayType(CHAR, 56))])
        out = emit_struct(s)
        assert "char _pad[56];" in out


class TestRoundTrip:
    @pytest.mark.parametrize(
        "nest",
        [
            make_copy_nest(n=32),
            make_nested_nest(rows=3, cols=16),
            build_heat_nest(6, 130),
            build_dft_nest(4, 64),
            build_linreg_nest(16, 8),
        ],
        ids=["copy", "nested", "heat", "dft", "linreg"],
    )
    def test_emit_parse_identical_accesses(self, nest):
        """emit → parse must preserve every address function exactly."""
        src = emit_nest(nest)
        (kernel,) = parse_c_source(src)
        parsed = kernel.nest
        assert parsed.trip_counts() == nest.trip_counts()
        assert parsed.parallel_var == nest.parallel_var
        assert parsed.schedule.chunk == nest.schedule.chunk
        pa = parsed.innermost_accesses()
        ba = nest.innermost_accesses()
        assert len(pa) == len(ba)
        for x, y in zip(pa, ba):
            assert x.offset_expr() == y.offset_expr()
            assert x.is_write == y.is_write

    def test_padded_nest_round_trips(self):
        """The padding advisor's output is valid, parseable C."""
        from repro.machine import paper_machine
        from repro.transform import PaddingAdvisor

        nest = build_linreg_nest(16, 8)
        advice = PaddingAdvisor(paper_machine()).advise(nest, 4)[0]
        src = advice.emit_c()
        assert "_fs_pad" in src
        (kernel,) = parse_c_source(src)
        tid_args = next(a for a in kernel.nest.arrays() if a.name == "tid_args")
        assert tid_args.element.size == 64
