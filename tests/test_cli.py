"""Unit tests for the repro-fs command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.kernels import heat_source, linreg_source


@pytest.fixture
def heat_file(tmp_path):
    p = tmp_path / "heat.c"
    p.write_text(heat_source(6, 130))
    return str(p)


@pytest.fixture
def linreg_file(tmp_path):
    p = tmp_path / "linreg.c"
    p.write_text(linreg_source(16, 8))
    return str(p)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "f.c"])
        assert args.threads is None and args.chunk is None


class TestAnalyze:
    def test_reports_fs(self, heat_file, capsys):
        assert main(["analyze", heat_file, "--threads", "4", "--chunk", "1"]) == 0
        out = capsys.readouterr().out
        assert "false sharing cases" in out
        assert "victim" in out
        assert "b (" in out  # the stencil output array is the victim

    def test_define_injects_macros(self, tmp_path, capsys):
        p = tmp_path / "k.c"
        p.write_text(
            "double a[N];\nvoid f(void){int i;\n"
            "#pragma omp parallel for\n"
            "for(i=0;i<N;i++){a[i]=1.0;}}\n"
        )
        assert main(["analyze", str(p), "-D", "N=64", "-t", "2"]) == 0
        assert "false sharing" in capsys.readouterr().out

    def test_bad_define_rejected(self, heat_file):
        with pytest.raises(SystemExit):
            main(["analyze", heat_file, "-D", "N=abc"])

    def test_no_kernels_errors(self, tmp_path):
        p = tmp_path / "plain.c"
        p.write_text("void f(void) { }\n")
        with pytest.raises(SystemExit, match="no OpenMP"):
            main(["analyze", str(p)])

    def test_literal_mode(self, heat_file, capsys):
        assert main(
            ["analyze", heat_file, "-t", "2", "--mode", "literal"]
        ) == 0


class TestPredict:
    def test_prediction_output(self, heat_file, capsys):
        assert main(["predict", heat_file, "-t", "4", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "chunk runs" in out


class TestOptimize:
    def test_recommends_chunk(self, linreg_file, capsys):
        assert main(["optimize", linreg_file, "-t", "2", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "recommended schedule(static," in out
        assert "best" in out


class TestDiagnose:
    def test_diagnosis_output(self, heat_file, capsys):
        assert main(["diagnose", heat_file, "-t", "4", "--chunk", "1"]) == 0
        out = capsys.readouterr().out
        assert "false-sharing diagnosis" in out
        assert "adjacent-thread share" in out


class TestTrace:
    def test_writes_trace_file(self, heat_file, tmp_path, capsys):
        out_file = str(tmp_path / "heat.npz")
        assert main(
            ["trace", heat_file, "-t", "2", "-o", out_file, "--max-steps", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        from repro.sim import load_trace

        trace = load_trace(out_file)
        assert trace.meta.num_threads == 2
        assert trace.meta.steps_per_thread == (8, 8)


class TestSweep:
    def test_sweep_table(self, heat_file, capsys):
        assert main(
            ["sweep", heat_file, "--threads-list", "2,4",
             "--chunks-list", "1,8", "--runs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "configurations" in out
        assert "best:" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, heat_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", heat_file, "-t", "2"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "false sharing cases" in proc.stdout


class TestNumThreadsClause:
    def test_pragma_num_threads_used_as_default(self, tmp_path, capsys):
        p = tmp_path / "k.c"
        p.write_text(
            "#define N 64\ndouble a[N];\nvoid f(void){int i;\n"
            "#pragma omp parallel for num_threads(4) schedule(static,1)\n"
            "for(i=0;i<N;i++){a[i]=1.0;}}\n"
        )
        assert main(["analyze", str(p)]) == 0
        assert "4 threads" in capsys.readouterr().out

    def test_flag_overrides_clause(self, tmp_path, capsys):
        p = tmp_path / "k.c"
        p.write_text(
            "#define N 64\ndouble a[N];\nvoid f(void){int i;\n"
            "#pragma omp parallel for num_threads(4)\n"
            "for(i=0;i<N;i++){a[i]=1.0;}}\n"
        )
        assert main(["analyze", str(p), "-t", "2"]) == 0
        assert "2 threads" in capsys.readouterr().out
