"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine import paper_machine
from repro.model import FalseSharingModel, FSDetector, LRUStack
from repro.sim import MulticoreSimulator
from tests.conftest import make_copy_nest

# A random access trace: (thread, line, is_write) triples.
traces = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 15),
        st.booleans(),
    ),
    min_size=0,
    max_size=200,
)


class TestDetectorInvariants:
    @given(traces)
    @settings(max_examples=60)
    def test_counter_consistency(self, trace):
        d = FSDetector(4, 8)
        for t, line, w in trace:
            d.access(t, line, w)
        s = d.stats
        assert s.fs_cases == s.fs_read_cases + s.fs_write_cases
        assert sum(s.fs_by_thread.values()) == s.fs_cases
        assert sum(s.fs_by_line.values()) == s.fs_cases
        assert s.accesses == len(trace)

    @given(traces)
    @settings(max_examples=60)
    def test_invalidate_mode_exclusive_writer(self, trace):
        """Write-invalidate: at most one Modified copy per line, and
        writers are always holders."""
        d = FSDetector(4, 8)
        for t, line, w in trace:
            d.access(t, line, w)
            assert d.writers_of(line).bit_count() <= 1
            assert d.writers_of(line) & ~d.holders_of(line) == 0

    @given(traces)
    @settings(max_examples=40)
    def test_directory_matches_cache_states(self, trace):
        """Holder bitmasks agree with the per-thread stacks."""
        d = FSDetector(4, 8)
        for t, line, w in trace:
            d.access(t, line, w)
        for line in range(16):
            mask = d.holders_of(line)
            for t in range(4):
                in_stack = any(l == line for l, _ in d.cache_state(t))
                assert bool(mask & (1 << t)) == in_stack

    @given(traces)
    @settings(max_examples=40)
    def test_disjoint_lines_no_fs(self, trace):
        """Threads confined to private line ranges never false-share."""
        d = FSDetector(4, 8)
        for t, line, w in trace:
            d.access(t, 1000 * t + line, w)  # disjoint ranges per thread
        assert d.stats.fs_cases == 0

    @given(traces)
    @settings(max_examples=40)
    def test_literal_counts_at_least_zero_monotone(self, trace):
        """fs_cases grows monotonically as a trace extends."""
        d = FSDetector(4, 8, mode="literal")
        last = 0
        for t, line, w in trace:
            d.access(t, line, w)
            assert d.stats.fs_cases >= last
            last = d.stats.fs_cases


class TestLRUStackInvariants:
    @given(
        st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=200),
        st.integers(1, 8),
    )
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, accesses, capacity):
        s = LRUStack(capacity)
        for line, w in accesses:
            s.access(line, w)
            assert len(s) <= capacity

    @given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=200))
    @settings(max_examples=40)
    def test_mru_is_last_accessed(self, accesses):
        s = LRUStack(8)
        for line, w in accesses:
            s.access(line, w)
            assert s.stack()[0][0] == line


class TestModelProperties:
    @given(
        threads=st.sampled_from([1, 2, 4]),
        chunk=st.sampled_from([1, 2, 4, 8]),
        n=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=15, deadline=None)
    def test_model_deterministic(self, threads, chunk, n):
        machine = paper_machine()
        nest = make_copy_nest(n=n)
        a = FalseSharingModel(machine).analyze(nest, threads, chunk=chunk)
        b = FalseSharingModel(machine).analyze(nest, threads, chunk=chunk)
        assert a.fs_cases == b.fs_cases
        assert a.stats.fs_by_line == b.stats.fs_by_line

    @given(
        threads=st.sampled_from([2, 4]),
        chunk=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=12, deadline=None)
    def test_model_equals_simulator_on_random_configs(self, threads, chunk):
        """The headline invariant, under hypothesis-chosen schedules."""
        machine = paper_machine()
        nest = make_copy_nest(n=128)
        m = FalseSharingModel(machine).analyze(nest, threads, chunk=chunk)
        s = MulticoreSimulator(machine).run(nest, threads, chunk=chunk)
        assert m.fs_cases == s.counters.coherence_events

    @given(chunk=st.sampled_from([1, 2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_more_threads_never_reduce_fs_below_single(self, chunk):
        """One thread is always FS-free; more threads only add FS."""
        machine = paper_machine()
        nest = make_copy_nest(n=128)
        model = FalseSharingModel(machine)
        assert model.analyze(nest, 1, chunk=chunk).fs_cases == 0
        assert model.analyze(nest, 4, chunk=chunk).fs_cases >= 0
