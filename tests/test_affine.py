"""Unit and property tests for affine expressions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ir.affine import AffineExpr, flatten_affine

VARS = ("i", "j", "k")


def affine_exprs():
    """Hypothesis strategy for random affine expressions."""
    return st.builds(
        AffineExpr.from_mapping,
        st.integers(-1000, 1000),
        st.dictionaries(st.sampled_from(VARS), st.integers(-50, 50), max_size=3),
    )


def envs():
    return st.fixed_dictionaries({v: st.integers(-100, 100) for v in VARS})


class TestConstruction:
    def test_const(self):
        assert AffineExpr.const_expr(5).as_int() == 5

    def test_var(self):
        e = AffineExpr.var("i")
        assert e.coeff("i") == 1
        assert not e.is_constant

    def test_var_zero_coeff_collapses(self):
        assert AffineExpr.var("i", 0).is_constant

    def test_from_mapping_drops_zeros(self):
        e = AffineExpr.from_mapping(3, {"i": 0, "j": 2})
        assert e.variables() == ("j",)

    def test_as_int_rejects_nonconstant(self):
        with pytest.raises(ValueError):
            AffineExpr.var("i").as_int()


class TestAlgebra:
    def test_add_collects(self):
        i = AffineExpr.var("i")
        e = i + i + 1
        assert e.coeff("i") == 2 and e.const == 1

    def test_sub_cancels(self):
        i = AffineExpr.var("i")
        assert (i - i).is_constant

    def test_mul_by_const(self):
        e = (AffineExpr.var("i") + 2) * 3
        assert e.coeff("i") == 3 and e.const == 6

    def test_rmul(self):
        e = 4 * AffineExpr.var("j")
        assert e.coeff("j") == 4

    def test_nonlinear_product_rejected(self):
        i, j = AffineExpr.var("i"), AffineExpr.var("j")
        with pytest.raises(ValueError):
            _ = i * j

    def test_neg(self):
        e = -(AffineExpr.var("i") + 1)
        assert e.coeff("i") == -1 and e.const == -1

    def test_rsub(self):
        e = 10 - AffineExpr.var("i")
        assert e.coeff("i") == -1 and e.const == 10


class TestEval:
    def test_eval(self):
        e = 2 * AffineExpr.var("i") + AffineExpr.var("j") - 3
        assert e.eval({"i": 5, "j": 1}) == 8

    def test_eval_missing_var(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").eval({})

    def test_vectorized_matches_scalar(self):
        e = 3 * AffineExpr.var("i") - 2 * AffineExpr.var("j") + 7
        env = {"i": np.arange(10), "j": np.arange(10) * 2}
        vec = e.eval_vectorized(env)
        for s in range(10):
            assert vec[s] == e.eval({"i": s, "j": 2 * s})

    def test_vectorized_constant_needs_length(self):
        e = AffineExpr.const_expr(5)
        out = e.eval_vectorized({}, length=4)
        assert (out == 5).all()
        with pytest.raises(ValueError):
            e.eval_vectorized({})


class TestSubstitute:
    def test_bind_param(self):
        e = AffineExpr.var("N") * 2 + 1
        assert e.substitute({"N": 10}).as_int() == 21

    def test_bind_with_expr(self):
        e = AffineExpr.var("x") + 1
        out = e.substitute({"x": AffineExpr.var("i") * 3})
        assert out.coeff("i") == 3 and out.const == 1

    def test_partial(self):
        e = AffineExpr.var("i") + AffineExpr.var("N")
        out = e.substitute({"N": 5})
        assert out.coeff("i") == 1 and out.const == 5


class TestFlatten:
    def test_strides(self):
        i, j = AffineExpr.var("i"), AffineExpr.var("j")
        e = flatten_affine([i, j], [80, 8], const=4)
        assert e.coeff("i") == 80 and e.coeff("j") == 8 and e.const == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            flatten_affine([AffineExpr.var("i")], [8, 8])


class TestProperties:
    @given(affine_exprs(), affine_exprs(), envs())
    def test_add_homomorphism(self, a, b, env):
        assert (a + b).eval(env) == a.eval(env) + b.eval(env)

    @given(affine_exprs(), st.integers(-20, 20), envs())
    def test_mul_homomorphism(self, a, k, env):
        assert (a * k).eval(env) == a.eval(env) * k

    @given(affine_exprs(), envs())
    def test_neg_involution(self, a, env):
        assert (-(-a)).eval(env) == a.eval(env)
        assert (-a).eval(env) == -a.eval(env)

    @given(affine_exprs(), affine_exprs(), envs())
    def test_sub_is_add_neg(self, a, b, env):
        assert (a - b).eval(env) == (a + (-b)).eval(env)

    @given(affine_exprs(), envs())
    def test_vectorized_single_point(self, a, env):
        np_env = {v: np.array([x]) for v, x in env.items()}
        assert a.eval_vectorized(np_env, length=1)[0] == a.eval(env)

    @given(affine_exprs())
    def test_hashable_and_equal(self, a):
        b = AffineExpr(a.const, a.coeffs)
        assert a == b and hash(a) == hash(b)
