"""Property-based round-trip tests over randomly generated loop nests.

Hypothesis builds random (but valid) parallel nests — random array
shapes, affine subscripts, read/write mixes and schedules — and checks
the big cross-component contracts:

* ``emit_nest`` → ``parse_c_source`` reproduces every address function;
* the FS model produces identical counts on the original and the
  re-parsed nest (the full frontend/emitter/model loop is closed);
* the model and the simulator agree on coherence-event counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import parse_c_source
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
    emit_nest,
)
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from repro.sim import MulticoreSimulator


@st.composite
def random_nests(draw) -> ParallelLoopNest:
    """A random rectangular 1- or 2-deep parallel nest."""
    depth = draw(st.integers(1, 2))
    trips = [draw(st.sampled_from([4, 8, 12, 16])) for _ in range(depth)]
    loop_vars = ["i", "j"][:depth]
    parallel_var = draw(st.sampled_from(loop_vars))

    n_arrays = draw(st.integers(1, 3))
    arrays = []
    for a in range(n_arrays):
        nd = draw(st.integers(1, depth))
        dims = tuple(
            draw(st.sampled_from([16, 24, 32])) for _ in range(nd)
        )
        arrays.append(ArrayDecl.create(f"arr{a}", DOUBLE, dims))

    def subscript(var_pool):
        var = draw(st.sampled_from(var_pool))
        coeff = draw(st.sampled_from([1, 1, 1, 2]))
        const = draw(st.integers(0, 3))
        return coeff * AffineExpr.var(var) + const

    def in_bounds_ref(arr: ArrayDecl, write: bool) -> ArrayRef:
        idxs = []
        for extent in arr.concrete_dims():
            # Keep subscripts within the extent for the loop ranges used.
            var_pool = loop_vars
            ix = subscript(var_pool)
            # Clamp: evaluate max and retry with plain var when needed.
            max_val = ix.const + sum(
                c * (trips[loop_vars.index(v)] - 1) for v, c in ix.coeffs
            )
            if max_val >= extent:
                ix = AffineExpr.var(draw(st.sampled_from(var_pool)))
                if trips[loop_vars.index(ix.variables()[0])] > extent:
                    ix = AffineExpr.const_expr(draw(st.integers(0, extent - 1)))
            idxs.append(ix)
        return ArrayRef(arr, tuple(idxs), is_write=write)

    n_stmts = draw(st.integers(1, 3))
    stmts = []
    for _ in range(n_stmts):
        target_arr = draw(st.sampled_from(arrays))
        src_arr = draw(st.sampled_from(arrays))
        rhs = BinOp(
            "+",
            LoadExpr(in_bounds_ref(src_arr, write=False)),
            Const(float(draw(st.integers(1, 5))), DOUBLE),
        )
        stmts.append(
            Assign(
                in_bounds_ref(target_arr, write=True),
                rhs,
                augmented=draw(st.sampled_from([None, "+"])),
            )
        )

    body = stmts
    for var, trip in zip(reversed(loop_vars), reversed(trips)):
        body = [Loop.create(var, 0, trip, body)]
    chunk = draw(st.sampled_from([1, 2, 4]))
    return ParallelLoopNest(
        name="rand.kernel",
        root=body[0],
        parallel_var=parallel_var,
        schedule=Schedule("static", chunk),
    )


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestRandomNestRoundTrips:
    @given(nest=random_nests())
    @settings(max_examples=25, deadline=None)
    def test_emit_parse_preserves_addresses(self, nest):
        src = emit_nest(nest)
        (kernel,) = parse_c_source(src)
        parsed = kernel.nest
        assert parsed.trip_counts() == nest.trip_counts()
        pa = parsed.innermost_accesses()
        ba = nest.innermost_accesses()
        assert len(pa) == len(ba)
        for x, y in zip(pa, ba):
            assert x.offset_expr() == y.offset_expr()
            assert x.is_write == y.is_write

    @given(nest=random_nests(), threads=st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_model_invariant_under_roundtrip(self, nest, threads):
        machine = paper_machine()
        model = FalseSharingModel(machine)
        (kernel,) = parse_c_source(emit_nest(nest))
        direct = model.analyze(nest, threads)
        via_c = model.analyze(kernel.nest.with_schedule(nest.schedule), threads)
        assert direct.fs_cases == via_c.fs_cases

    @given(nest=random_nests(), threads=st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_model_matches_simulator_on_random_nests(self, nest, threads):
        machine = paper_machine()
        m = FalseSharingModel(machine).analyze(nest, threads)
        s = MulticoreSimulator(machine).run(nest, threads)
        assert m.fs_cases == s.counters.coherence_events


class TestTraceRoundTrips:
    @given(nest=random_nests(), threads=st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_trace_replay_equals_direct_model(self, nest, threads, tmp_path_factory):
        """record → load → replay == a direct model run, for any nest."""
        from repro.sim import load_trace, record_trace, replay_fs_detection

        machine = paper_machine()
        path = tmp_path_factory.mktemp("traces") / "t.npz"
        record_trace(nest, threads, machine, path)
        trace = load_trace(path)
        detector = replay_fs_detection(trace, machine.model_stack_lines)
        direct = FalseSharingModel(machine).analyze(nest, threads)
        assert detector.stats.fs_cases == direct.fs_cases
