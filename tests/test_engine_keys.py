"""Property tests for the canonical key machinery (`repro.engine.keys`).

The cache is only sound if the key function is (a) *stable* — the same
value always hashes to the same digest, across insertion orders and
float representations — and (b) *injective enough* — distinct specs
hash to distinct digests with overwhelming probability.  Hypothesis
drives both directions over the full JSON-able value space plus the
``to_key_dict`` protocol objects (MachineConfig, Schedule).
"""

import dataclasses
import json
import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.keys import (
    canonical_json,
    canonical_key_value,
    stable_hash,
)
from repro.ir.loops import Schedule
from repro.machine import paper_machine

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# Scalars the spec layer actually uses.  NaN is excluded from equality
# based properties (NaN != NaN) but covered by a dedicated test below.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)

# Recursive JSON-able values: scalars, lists/tuples, str-keyed dicts.
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def shuffled(d: dict, seed: int) -> dict:
    """The same mapping with a different insertion order."""
    items = list(d.items())
    random.Random(seed).shuffle(items)
    return dict(items)


# ---------------------------------------------------------------------------
# Stability
# ---------------------------------------------------------------------------


class TestStability:
    @given(values)
    def test_hash_is_deterministic(self, v):
        assert stable_hash(v) == stable_hash(v)

    @given(st.dictionaries(st.text(max_size=8), values, max_size=6),
           st.integers())
    def test_insertion_order_is_irrelevant(self, d, seed):
        assert stable_hash(d) == stable_hash(shuffled(d, seed))

    @given(values)
    def test_canonical_json_round_trips_through_json(self, v):
        """The canonical form survives a JSON round trip unchanged."""
        text = canonical_json(v)
        assert json.loads(text) == canonical_key_value(v)
        # ... and re-canonicalizing the parsed form is a fixed point,
        # so a spec can be stored as JSON and re-keyed losslessly.
        assert canonical_json(json.loads(text)) == text

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_encoding_is_exact(self, x):
        encoded = canonical_key_value(x)
        assert float.fromhex(encoded["~f"]) == x
        # -0.0 and 0.0 are distinct IEEE values and distinct keys.
        if x == 0.0:
            assert (encoded["~f"].startswith("-")) == (
                math.copysign(1.0, x) < 0
            )

    @given(st.tuples(values))
    def test_tuples_and_lists_are_interchangeable(self, t):
        assert stable_hash(t) == stable_hash(list(t))

    def test_nan_hashes_to_itself(self):
        # NaN != NaN, but a NaN-bearing spec must still hit its own
        # cache entry.
        assert stable_hash(float("nan")) == stable_hash(float("nan"))
        assert stable_hash(float("inf")) != stable_hash(float("-inf"))


# ---------------------------------------------------------------------------
# Sensitivity (distinct values -> distinct keys)
# ---------------------------------------------------------------------------


def _same_key_scalar(a, b) -> bool:
    """Key-level equality: type-strict, and *bit* equality for floats
    (0.0 and -0.0 are distinct IEEE values and distinct keys by design —
    see the float-encoding docs in ``repro.engine.keys``)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    return a == b


class TestSensitivity:
    @given(scalars, scalars)
    def test_distinct_scalars_distinct_hashes(self, a, b):
        if _same_key_scalar(a, b):
            assert stable_hash(a) == stable_hash(b)
        else:
            assert stable_hash(a) != stable_hash(b)

    def test_numeric_types_do_not_collide(self):
        # 2, 2.0 and True are different jobs by design.
        assert len({stable_hash(v) for v in (2, 2.0, True, "2")}) == 4


# ---------------------------------------------------------------------------
# to_key_dict protocol: MachineConfig and Schedule
# ---------------------------------------------------------------------------


class TestConfigKeys:
    def test_machine_key_is_stable_across_instances(self):
        assert paper_machine().stable_key() == paper_machine().stable_key()

    def test_machine_key_round_trips_through_json(self):
        d = paper_machine().to_key_dict()
        assert stable_hash(json.loads(json.dumps(d))) == stable_hash(d)

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=1024))
    def test_machine_key_tracks_every_field(self, cores):
        base = paper_machine()
        varied = base.with_cores(cores)
        same = base.num_cores == varied.num_cores
        assert (base.stable_key() == varied.stable_key()) == same

    def test_machine_key_changes_with_nested_fields(self):
        base = paper_machine()
        bumped = dataclasses.replace(
            base,
            coherence=dataclasses.replace(
                base.coherence,
                invalidate_cycles=base.coherence.invalidate_cycles + 1,
            ),
        )
        assert base.stable_key() != bumped.stable_key()

    @given(st.integers(min_value=1, max_value=64))
    def test_schedule_key_dict(self, chunk):
        a = Schedule(chunk=chunk)
        b = Schedule(chunk=chunk)
        assert stable_hash(a) == stable_hash(b)
        assert stable_hash(a) != stable_hash(Schedule(chunk=chunk + 1))
        # chunk=None (default blocking) is its own key, not an alias of 1.
        assert stable_hash(Schedule(chunk=None)) != stable_hash(Schedule(chunk=1))
