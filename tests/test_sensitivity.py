"""Unit tests for the machine-constant sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_CONSTANTS,
    _constant_value,
    _with_constant,
    sensitivity,
)
from repro.kernels import heat_diffusion
from repro.machine import paper_machine


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def kernel():
    return heat_diffusion(rows=5, cols=514)


class TestConstantPlumbing:
    @pytest.mark.parametrize("name", DEFAULT_CONSTANTS)
    def test_roundtrip(self, machine, name):
        value = _constant_value(machine, name)
        bumped = _with_constant(machine, name, value * 1.5 if name != "prefetch_coverage" else value * 0.5)
        assert _constant_value(bumped, name) != value

    def test_original_machine_untouched(self, machine):
        before = machine.coherence.remote_fetch_cycles
        _with_constant(machine, "remote_fetch_cycles", 999)
        assert machine.coherence.remote_fetch_cycles == before

    def test_unknown_constant(self, machine):
        with pytest.raises(KeyError):
            _with_constant(machine, "flux_capacitor", 1.21)


class TestSensitivity:
    def test_entries_cover_constants(self, machine, kernel):
        entries = sensitivity(machine, kernel, threads=2)
        assert [e.constant for e in entries] == list(DEFAULT_CONSTANTS)

    def test_heat_is_write_penalty_driven(self, machine, kernel):
        entries = {e.constant: e for e in sensitivity(machine, kernel, threads=2)}
        assert abs(entries["invalidate_cycles"].elasticity) > abs(
            entries["remote_fetch_cycles"].elasticity
        )

    def test_bad_perturbation_rejected(self, machine, kernel):
        with pytest.raises(ValueError):
            sensitivity(machine, kernel, perturbation=0.0)
        with pytest.raises(ValueError):
            sensitivity(machine, kernel, perturbation=1.5)

    def test_custom_output_fn(self, machine, kernel):
        entries = sensitivity(
            machine, kernel, threads=2,
            constants=("remote_fetch_cycles",),
            output_fn=lambda m, k, t: float(m.coherence.remote_fetch_cycles),
        )
        (e,) = entries
        # Output == the constant itself: elasticity exactly 1.
        assert e.elasticity == pytest.approx(1.0)
