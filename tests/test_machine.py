"""Unit tests for machine configuration and presets."""

import pytest

from repro.machine import (
    CacheLevel,
    CoherenceCosts,
    FunctionalUnits,
    MachineConfig,
    OpLatencies,
    RuntimeOverheads,
    paper_machine,
    tiny_machine,
)


class TestCacheLevel:
    def test_derived_quantities(self):
        c = CacheLevel(64 * 1024, line_size=64, associativity=2)
        assert c.num_lines == 1024
        assert c.num_sets == 512

    def test_fully_associative_single_set(self):
        c = CacheLevel(4096, line_size=64, associativity=0)
        assert c.num_sets == 1

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheLevel(4096, line_size=48)

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            CacheLevel(100, line_size=64)

    def test_rejects_bad_assoc_split(self):
        with pytest.raises(ValueError):
            CacheLevel(64 * 3, line_size=64, associativity=2)


class TestMachineConfig:
    def test_paper_machine_matches_paper(self):
        m = paper_machine()
        assert m.num_cores == 48
        assert m.freq_ghz == 2.2
        assert m.line_size == 64
        assert m.l1.size_bytes == 64 * 1024
        assert m.l2.size_bytes == 512 * 1024
        assert m.l3.size_bytes == 10 * 1024 * 1024
        assert m.l3.shared

    def test_model_stack_defaults_to_l2(self):
        m = paper_machine()
        assert m.model_stack_lines == m.l2.num_lines == 8192

    def test_model_stack_override(self):
        m = tiny_machine(cache_lines=16)
        assert m.model_stack_lines == 16

    def test_with_cores(self):
        m = paper_machine().with_cores(8)
        assert m.num_cores == 8
        assert m.l2.size_bytes == 512 * 1024  # rest untouched

    def test_cycles_to_seconds(self):
        m = paper_machine()
        assert m.cycles_to_seconds(2.2e9) == pytest.approx(1.0)

    def test_line_size_consistency_enforced(self):
        with pytest.raises(ValueError):
            MachineConfig(
                l1=CacheLevel(64 * 1024, line_size=64),
                l2=CacheLevel(512 * 1024, line_size=128),
            )

    def test_fs_penalties(self):
        m = paper_machine()
        assert m.fs_read_penalty_cycles == m.coherence.remote_fetch_cycles
        assert m.fs_write_penalty_cycles > m.coherence.invalidate_cycles

    def test_rejects_bad_prefetch_coverage(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(paper_machine(), prefetch_coverage=1.5)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=0)


class TestOpLatencies:
    def test_known_op(self):
        lat = OpLatencies()
        assert lat["fadd"] == 4

    def test_call_fallback(self):
        lat = OpLatencies()
        assert lat["call:atan2"] == lat["call"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            OpLatencies()["frobnicate"]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OpLatencies({"fadd": -1})


class TestValidationOfParts:
    def test_coherence_nonnegative(self):
        with pytest.raises(ValueError):
            CoherenceCosts(remote_fetch_cycles=-1)

    def test_units_positive(self):
        with pytest.raises(ValueError):
            FunctionalUnits(issue_width=0)

    def test_overheads_nonnegative(self):
        with pytest.raises(ValueError):
            RuntimeOverheads(parallel_startup_cycles=-5)


class TestDesktopPreset:
    def test_single_socket(self):
        from repro.machine import desktop_machine

        m = desktop_machine()
        assert m.num_cores == m.cores_per_socket == 8
        assert m.l2.size_bytes == 1024 * 1024
        assert m.line_size == 64

    def test_faster_coherence_than_server(self):
        from repro.machine import desktop_machine, paper_machine

        assert (
            desktop_machine().coherence.remote_fetch_cycles
            < paper_machine().coherence.remote_fetch_cycles
        )
