"""Unit tests for nest validation diagnostics."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    DOUBLE,
    Loop,
    NestValidationError,
    ParallelLoopNest,
    check_nest,
    validate_nest,
)
from tests.conftest import make_copy_nest, make_nested_nest

I = AffineExpr.var("i")


def stmt(arr_name="z", idx=I):
    arr = ArrayDecl.create(arr_name, DOUBLE, (64,))
    return Assign(ArrayRef(arr, (idx,), is_write=True), Const(0.0, DOUBLE))


class TestValidNests:
    def test_copy_nest_valid(self):
        report = validate_nest(make_copy_nest())
        assert report.ok and not report.warnings

    def test_nested_nest_valid(self):
        assert validate_nest(make_nested_nest()).ok


class TestInvalidNests:
    def test_duplicate_induction_vars(self):
        inner = Loop.create("i", 0, 4, [stmt()])
        outer = Loop.create("i", 0, 4, [inner])
        nest = ParallelLoopNest("dup", outer, "i")
        report = check_nest(nest)
        assert any("duplicate" in e for e in report.errors)

    def test_imperfect_nest_two_subloops(self):
        l1 = Loop.create("j", 0, 4, [stmt(idx=AffineExpr.var("j"))])
        l2 = Loop.create("k", 0, 4, [stmt("z2", AffineExpr.var("k"))])
        outer = Loop.create("i", 0, 4, [l1, l2])
        nest = ParallelLoopNest("imperfect", outer, "i")
        report = check_nest(nest)
        assert not report.ok

    def test_statements_outside_innermost_warn(self):
        inner = Loop.create("j", 0, 4, [stmt(idx=AffineExpr.var("j"))])
        outer = Loop.create("i", 0, 4, [stmt("pre"), inner])
        nest = ParallelLoopNest("warned", outer, "j")
        report = check_nest(nest)
        assert report.ok
        assert any("ignored" in w for w in report.warnings)

    def test_unknown_subscript_variable(self):
        nest = ParallelLoopNest(
            "bad-subscript",
            Loop.create("i", 0, 4, [stmt(idx=AffineExpr.var("q"))]),
            "i",
        )
        report = check_nest(nest)
        assert any("unknown" in e for e in report.errors)

    def test_symbolic_bounds_require_binding(self):
        lp = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("N"), (stmt(),))
        nest = ParallelLoopNest("symbolic", lp, "i", params=("N",))
        report = check_nest(nest, require_concrete=True)
        assert not report.ok
        # ...but passes structural checks when concreteness is not required.
        assert check_nest(nest, require_concrete=False).ok

    def test_validate_raises_with_details(self):
        nest = ParallelLoopNest(
            "boom", Loop.create("i", 0, 4, [stmt(idx=AffineExpr.var("q"))]), "i"
        )
        with pytest.raises(NestValidationError, match="boom"):
            validate_nest(nest)

    def test_empty_trip_warns(self):
        nest = ParallelLoopNest(
            "empty", Loop.create("i", 4, 4, [stmt()]), "i"
        )
        report = check_nest(nest)
        assert report.ok
        assert any("empty" in w for w in report.warnings)

    def test_no_array_accesses_warns(self):
        nest = ParallelLoopNest(
            "scalar-only",
            Loop.create("i", 0, 4, [Assign("t", Const(0.0, DOUBLE))]),
            "i",
        )
        report = check_nest(nest)
        assert any("no array accesses" in w for w in report.warnings)
