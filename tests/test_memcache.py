"""Tests for :mod:`repro.engine.memcache` — the in-memory result tier.

Covers the LRU contract (entry + byte bounds, recency refresh, the
oversized-result rejection), the hit/miss/promotion/eviction counters
behind ``repro-fs cache stats``, the process-wide shared instance, and
the two-tier lookup path through :class:`~repro.engine.scheduler.Engine`
(mem hit → disk hit + promotion → compute write-through).
"""

from __future__ import annotations

import threading

import pytest

from repro.cli import main
from repro.engine import (
    Engine,
    Job,
    MemCache,
    ResultStore,
    shared_memcache,
)
from repro.engine.memcache import _reset_shared_memcache, _result_bytes
from repro.obs import get_registry


def echo_job(value, label="echo") -> Job:
    return Job("engine.test.echo", {"value": value}, label=label)


def _counter(name: str) -> float:
    return get_registry().snapshot()["counters"].get(name, 0.0)


@pytest.fixture(autouse=True)
def _fresh_shared_memcache():
    _reset_shared_memcache()
    yield
    _reset_shared_memcache()


class TestMemCacheLRU:
    def test_put_get_roundtrip(self):
        cache = MemCache()
        assert cache.get("k") is None
        assert cache.put("k", {"value": 1})
        assert cache.get("k") == {"value": 1}
        assert "k" in cache and len(cache) == 1

    def test_entry_bound_evicts_least_recent(self):
        cache = MemCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh: b is now LRU
        cache.put("c", {"v": 3})
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_byte_bound_evicts(self):
        doc = {"pad": "x" * 100}
        size = _result_bytes(doc)
        cache = MemCache(max_bytes=2 * size)
        cache.put("a", doc)
        cache.put("b", doc)
        cache.put("c", doc)
        assert "a" not in cache
        assert len(cache) == 2
        assert cache.stats().total_bytes <= cache.max_bytes

    def test_oversized_result_rejected_without_eviction(self):
        cache = MemCache(max_bytes=256)
        cache.put("small", {"v": 1})
        assert not cache.put("huge", {"pad": "x" * 1024})
        assert "huge" not in cache
        assert "small" in cache  # nothing useful was evicted
        assert cache.stats().evictions == 0

    def test_refresh_replaces_byte_accounting(self):
        cache = MemCache()
        cache.put("k", {"pad": "x" * 512})
        before = cache.stats().total_bytes
        cache.put("k", {"v": 1})
        assert len(cache) == 1
        assert cache.stats().total_bytes < before

    def test_clear_returns_count(self):
        cache = MemCache()
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.stats().total_bytes == 0

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            MemCache(max_entries=0)
        with pytest.raises(ValueError):
            MemCache(max_bytes=0)

    def test_concurrent_access_stays_consistent(self):
        cache = MemCache(max_entries=64)

        def worker(base: int) -> None:
            for i in range(200):
                cache.put(f"k{(base + i) % 96}", {"v": i})
                cache.get(f"k{i % 96}")

        threads = [
            threading.Thread(target=worker, args=(i * 31,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64
        stats = cache.stats()
        assert stats.total_bytes >= 0
        assert stats.hits + stats.misses == 800


class TestStatsAndMetrics:
    def test_stats_track_hits_misses_promotions(self):
        cache = MemCache()
        cache.get("absent")
        cache.put("k", {"v": 1}, promoted=True)
        cache.get("k")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.promotions) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        text = stats.to_text()
        assert "hit rate" in text and "promotions" in text

    def test_registry_counters_and_gauges(self):
        hits0 = _counter("engine_memcache_hits_total")
        misses0 = _counter("engine_memcache_misses_total")
        promos0 = _counter("engine_memcache_promotions_total")
        cache = MemCache()
        cache.get("absent")
        cache.put("k", {"v": 1}, promoted=True)
        cache.get("k")
        snap = get_registry().snapshot()
        assert _counter("engine_memcache_hits_total") == hits0 + 1
        assert _counter("engine_memcache_misses_total") == misses0 + 1
        assert _counter("engine_memcache_promotions_total") == promos0 + 1
        assert snap["gauges"].get("engine_memcache_entries") == 1.0


class TestSharedMemCache:
    def test_singleton_first_caller_fixes_bounds(self):
        first = shared_memcache(max_entries=7, max_bytes=1024)
        again = shared_memcache(max_entries=99, max_bytes=2**30)
        assert again is first
        assert again.max_entries == 7 and again.max_bytes == 1024

    def test_reset_hook_drops_instance(self):
        first = shared_memcache()
        _reset_shared_memcache()
        assert shared_memcache() is not first


class TestTwoTierEngine:
    """The Engine lookup contract: mem → disk(+promote) → compute."""

    def test_warm_rerun_is_memory_tier(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store, mem_cache=MemCache(), inline=True)
        cold = engine.run([echo_job(i) for i in range(4)])
        assert all(not o.from_cache for o in cold)
        warm = engine.run([echo_job(i) for i in range(4)])
        assert all(o.from_cache and o.cache_tier == "mem" for o in warm)
        assert [o.result for o in warm] == [o.result for o in cold]

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        store = ResultStore(tmp_path)
        Engine(jobs=1, store=store, inline=True).run([echo_job("x")])
        mem = MemCache()
        engine = Engine(jobs=1, store=store, mem_cache=mem, inline=True)
        first = engine.run([echo_job("x")])[0]
        assert first.from_cache and first.cache_tier == "disk"
        assert mem.stats().promotions == 1
        second = engine.run([echo_job("x")])[0]
        assert second.cache_tier == "mem"

    def test_write_through_lands_in_both_tiers(self, tmp_path):
        store = ResultStore(tmp_path)
        mem = MemCache()
        engine = Engine(jobs=1, store=store, mem_cache=mem, inline=True)
        key = echo_job("wt").key()
        engine.run([echo_job("wt")])
        assert key in mem
        assert store.get(key) is not None


class TestCacheCLI:
    def test_stats_all_shows_both_tiers(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "[disk tier]" in out
        assert "[memory tier]" in out

    def test_stats_mem_only(self, capsys):
        assert main(["cache", "stats", "--tier", "mem"]) == 0
        out = capsys.readouterr().out
        assert "[memory tier]" in out
        assert "[disk tier]" not in out

    def test_clear_mem_tier(self, capsys):
        shared_memcache().put("k", {"v": 1})
        assert main(["cache", "clear", "--tier", "mem"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 memory-tier entries" in out
        assert "disk cache" not in out
        assert len(shared_memcache()) == 0

    def test_clear_disk_tier(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put(echo_job("d").key(), {"v": 1})
        assert main(["cache", "clear", "--tier", "disk",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 disk cache entries" in out
        assert "memory-tier" not in out
