"""Unit tests for the EXPERIMENTS.md builder and deviation notes."""

from repro.analysis.paper import PAPER_EXPECTATIONS, deviations_section
from repro.analysis.report import ExperimentResult
from repro.analysis.runner import build_markdown


def fake_results():
    r1 = ExperimentResult("Table I", "demo table", ("threads", "pct"))
    r1.add_row(2, 10.0)
    r1.add_row(4, 11.0)
    r2 = ExperimentResult("Fig. 6", "demo figure", ("x", "y"))
    r2.add_row(1, 5)
    return [r1, r2]


class TestBuildMarkdown:
    def test_contains_tables_and_expectations(self):
        doc = build_markdown(fake_results())
        assert "### Table I: demo table" in doc
        assert PAPER_EXPECTATIONS["Table I"] in doc
        assert PAPER_EXPECTATIONS["Fig. 6"] in doc

    def test_contains_deviations(self):
        doc = build_markdown(fake_results())
        assert "Known deviations" in doc
        assert "simulator" in doc

    def test_markdown_table_syntax(self):
        doc = build_markdown(fake_results())
        assert "| threads | pct |" in doc
        assert "|---:|---:|" in doc


class TestDeviations:
    def test_lists_all_six(self):
        text = deviations_section()
        for k in range(1, 7):
            assert f"{k}. **" in text


class TestRunnerMain:
    @staticmethod
    def _fake_suite(monkeypatch, fail_driver: str | None = None):
        """Stub the suite with two named drivers to keep main() fast."""
        import repro.analysis.runner as runner

        results = {"run_table1": fake_results()[0], "run_fig6": fake_results()[1]}

        class FakeSuite:
            def __init__(self, scale, detector_engine="auto",
                         steady_state=True, sim_jobs=1):
                assert scale in ("tiny", "full")
                assert detector_engine in ("auto", "jit", "fast", "reference")
                assert isinstance(steady_state, bool)
                assert isinstance(sim_jobs, int) and sim_jobs >= 1

            def run_driver(self, name):
                if name == fail_driver:
                    raise RuntimeError("boom")
                return results[name]

        monkeypatch.setattr(runner, "ExperimentSuite", FakeSuite)
        monkeypatch.setattr(runner, "DRIVER_ORDER", ("run_table1", "run_fig6"))
        monkeypatch.setattr(runner, "SUPPLEMENTARY_DRIVERS", ())
        return runner

    def test_writes_file(self, tmp_path, monkeypatch, capsys):
        runner = self._fake_suite(monkeypatch)
        out = tmp_path / "EXP.md"
        assert runner.main([str(out), "--no-cache"]) == 0
        assert "Table I" in out.read_text()
        # Per-experiment wall times are reported as the run goes.
        assert "[runner] run_table1" in capsys.readouterr().out

    def test_failing_driver_exits_nonzero_but_writes_rest(
        self, tmp_path, monkeypatch, capsys
    ):
        runner = self._fake_suite(monkeypatch, fail_driver="run_table1")
        out = tmp_path / "EXP.md"
        assert runner.main([str(out), "--no-cache"]) == 1
        text = out.read_text()
        assert "Fig. 6" in text  # the healthy driver still made the doc
        assert "boom" in capsys.readouterr().err
