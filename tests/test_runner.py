"""Unit tests for the EXPERIMENTS.md builder and deviation notes."""

from repro.analysis.paper import PAPER_EXPECTATIONS, deviations_section
from repro.analysis.report import ExperimentResult
from repro.analysis.runner import build_markdown


def fake_results():
    r1 = ExperimentResult("Table I", "demo table", ("threads", "pct"))
    r1.add_row(2, 10.0)
    r1.add_row(4, 11.0)
    r2 = ExperimentResult("Fig. 6", "demo figure", ("x", "y"))
    r2.add_row(1, 5)
    return [r1, r2]


class TestBuildMarkdown:
    def test_contains_tables_and_expectations(self):
        doc = build_markdown(fake_results())
        assert "### Table I: demo table" in doc
        assert PAPER_EXPECTATIONS["Table I"] in doc
        assert PAPER_EXPECTATIONS["Fig. 6"] in doc

    def test_contains_deviations(self):
        doc = build_markdown(fake_results())
        assert "Known deviations" in doc
        assert "simulator" in doc

    def test_markdown_table_syntax(self):
        doc = build_markdown(fake_results())
        assert "| threads | pct |" in doc
        assert "|---:|---:|" in doc


class TestDeviations:
    def test_lists_all_six(self):
        text = deviations_section()
        for k in range(1, 7):
            assert f"{k}. **" in text


class TestRunnerMain:
    def test_writes_file(self, tmp_path, monkeypatch):
        """Run main() against a stubbed suite to keep the test fast."""
        import repro.analysis.runner as runner

        class FakeSuite:
            def __init__(self, scale):
                assert scale == "full"

            def run_all(self):
                return fake_results()

            def run_supplementary(self):
                return []

        monkeypatch.setattr(runner, "ExperimentSuite", FakeSuite)
        out = tmp_path / "EXP.md"
        assert runner.main([str(out)]) == 0
        assert "Table I" in out.read_text()
