"""Fast-engine contracts: the vectorized detector is bit-identical to
the scalar reference on every trace, including the streaming-eviction
regime, and the engine knob never leaks into cached identities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import dft, heat_diffusion, linear_regression
from repro.machine import paper_machine, tiny_machine
from repro.model import (
    AUTO_REFERENCE_MAX_ACCESSES,
    ENGINES,
    FalseSharingModel,
    FastFSDetector,
    FSDetector,
    jit_available,
    make_detector,
    resolve_engine,
)
from repro.model.fastdetect import MAX_FAST_THREADS, MIN_FAST_EVENTS
from repro.resilience.errors import ModelError

_SCALARS = (
    "fs_cases", "fs_read_cases", "fs_write_cases", "accesses", "misses",
    "invalidations", "downgrades", "evictions", "steps",
)


def _full_state(d: FSDetector):
    """Everything observable: counters, breakdowns, exact cache states,
    and the coherence directory for every resident line."""
    lines = sorted(
        {ln for t in range(d.num_threads) for ln, _ in d.cache_state(t)}
    )
    return (
        tuple(getattr(d.stats, n) for n in _SCALARS),
        dict(d.stats.fs_by_thread),
        dict(d.stats.fs_by_line),
        dict(d.stats.fs_by_pair),
        [d.cache_state(t) for t in range(d.num_threads)],
        [(ln, d.holders_of(ln), d.writers_of(ln)) for ln in lines],
    )


def _run_blocks(detector, blocks, writes, order):
    for mats in blocks:
        detector.process_block(mats, writes, thread_order=order)
    return _full_state(detector)


def _random_blocks(rng, T, refs, n_blocks, max_steps, streaming):
    """Either uniform-random line traffic (heavy invalidation churn) or
    a monotone streaming trace (the eviction fast-path regime)."""
    blocks, base = [], 0
    for _ in range(n_blocks):
        steps = int(rng.integers(1, max_steps + 1))
        mats = []
        for _t in range(T):
            if streaming:
                adv = (rng.random(steps * refs) < 0.2).cumsum()
                look = rng.integers(0, 5, size=steps * refs)
                m = np.maximum(base + adv - look, 0).reshape(steps, refs)
            else:
                m = rng.integers(0, 40, size=(steps, refs))
            mats.append(m.astype(np.int64))
        if streaming:
            base = int(max(m.max() for m in mats))
        blocks.append(tuple(mats))
    return blocks


class TestEngineResolution:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ModelError):
            resolve_engine("turbo", "invalidate", 4)

    def test_auto_prefers_fast_when_supported(self):
        # With numba installed the auto ladder tops out at "jit"
        # instead; both are the vectorized regime.
        top = "jit" if jit_available() else "fast"
        assert resolve_engine("auto", "invalidate", 8) == top
        assert resolve_engine("auto", "invalidate", MAX_FAST_THREADS) == top

    def test_auto_falls_back_outside_support(self):
        assert resolve_engine("auto", "literal", 8) == "reference"
        assert (
            resolve_engine("auto", "invalidate", MAX_FAST_THREADS + 1)
            == "reference"
        )

    def test_auto_crossover_tiny_traces_use_reference(self):
        """Below the measured crossover, tiny traces skip the
        vectorized machinery entirely (the 0.8× table-config fix)."""
        tiny = AUTO_REFERENCE_MAX_ACCESSES - 1
        big = AUTO_REFERENCE_MAX_ACCESSES
        assert (
            resolve_engine("auto", "invalidate", 8, accesses=tiny)
            == "reference"
        )
        top = "jit" if jit_available() else "fast"
        assert resolve_engine("auto", "invalidate", 8, accesses=big) == top
        # The hint only informs "auto": explicit choices are honoured.
        assert (
            resolve_engine("fast", "invalidate", 8, accesses=tiny) == "fast"
        )

    def test_explicit_choice_honoured(self):
        assert resolve_engine("reference", "invalidate", 4) == "reference"
        assert resolve_engine("fast", "literal", 4) == "fast"

    def test_jit_resolves_to_fast_without_numba(self):
        resolved = resolve_engine("jit", "invalidate", 4)
        if jit_available():
            assert resolved == "jit"
        else:
            assert resolved == "fast"

    def test_make_detector_classes(self):
        assert isinstance(make_detector("fast", 4, 16), FastFSDetector)
        ref = make_detector("reference", 4, 16)
        assert type(ref) is FSDetector
        assert isinstance(make_detector("auto", 4, 16), FastFSDetector)

    def test_engines_constant(self):
        assert set(ENGINES) == {"auto", "jit", "fast", "reference"}

    def test_model_rejects_bad_engine(self):
        with pytest.raises(ModelError):
            FalseSharingModel(tiny_machine(), engine="warp")


class TestBlockEquivalence:
    """Property suite: FastFSDetector ≡ FSDetector on arbitrary traces."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        T=st.integers(1, 4),
        cap=st.sampled_from([4, 8, 32]),
        refs=st.integers(1, 3),
        streaming=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_trace_equivalence(self, seed, T, cap, refs, streaming):
        rng = np.random.default_rng(seed)
        writes = rng.random(refs) < 0.4
        order = list(range(T))
        rng.shuffle(order)
        blocks = _random_blocks(
            rng, T, refs, n_blocks=int(rng.integers(1, 4)),
            max_steps=120, streaming=streaming,
        )
        ref = _run_blocks(FSDetector(T, cap), blocks, writes, order)
        fast = _run_blocks(FastFSDetector(T, cap), blocks, writes, order)
        assert ref == fast

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_eviction_regime_equivalence(self, seed):
        """Streaming blocks sized to overflow the stack exercise the
        batched-eviction epilogue; the fast path must still match the
        reference bit for bit — including eviction counts and the
        post-block LRU order."""
        rng = np.random.default_rng(seed)
        T, cap, refs = 3, 16, 2
        writes = np.array([True, False])
        blocks = _random_blocks(
            rng, T, refs, n_blocks=4, max_steps=200, streaming=True
        )
        ref_d = FSDetector(T, cap)
        fast_d = FastFSDetector(T, cap)
        for mats in blocks:
            ref_d.process_block(mats, writes)
            fast_d.process_block(mats, writes)
            assert _full_state(ref_d) == _full_state(fast_d)
        assert ref_d.stats.evictions > 0  # the regime was actually hit

    def test_fast_path_engages_on_large_blocks(self):
        """A block well above MIN_FAST_EVENTS must take the vectorized
        core, not the scalar fallback."""
        rng = np.random.default_rng(7)
        d = FastFSDetector(4, 64)
        steps = MIN_FAST_EVENTS * 2
        mats = tuple(
            rng.integers(0, 30, size=(steps, 2)).astype(np.int64)
            for _ in range(4)
        )
        d.process_block(mats, np.array([True, False]))
        assert d.fast_blocks >= 1
        assert d.stats.accesses == 4 * steps * 2

    def test_single_access_api_still_scalar(self):
        """The inherited single-access API keeps working on the fast
        detector (it shares all underlying structures)."""
        d = FastFSDetector(2, 8)
        d.access(0, 5, True)
        fs = d.access(1, 5, True)
        assert fs == 1
        assert d.stats.fs_write_cases == 1

    def test_bad_thread_order_rejected(self):
        d = FastFSDetector(2, 8)
        mats = (np.zeros((4, 1), dtype=np.int64),) * 2
        with pytest.raises(ModelError):
            d.process_block(mats, np.array([True]), thread_order=[0, 0])


class TestModelLevelEquivalence:
    """engine="fast" and engine="reference" produce identical results
    through the full model, chunk-run series included."""

    @pytest.mark.parametrize(
        "kernel",
        [
            heat_diffusion(rows=6, cols=1026),
            dft(samples=4, freqs=768),
            linear_regression(4, tasks=96, total_points=480),
        ],
        ids=["heat", "dft", "linreg"],
    )
    def test_engines_bit_identical(self, kernel):
        machine = paper_machine()
        engines = ["reference", "fast"]
        if jit_available():
            engines.append("jit")  # the third tier joins the matrix
        results = {}
        for engine in engines:
            model = FalseSharingModel(
                machine, engine=engine, steady_state=False
            )
            results[engine] = model.analyze(
                kernel.nest, 4, chunk=1, record_series=True
            )
        ref = results["reference"]
        assert ref.engine == "reference"
        for engine in engines[1:]:
            other = results[engine]
            assert other.engine == engine
            assert ref.fs_cases == other.fs_cases
            assert ref.fs_read_cases == other.fs_read_cases
            assert ref.fs_write_cases == other.fs_write_cases
            for name in _SCALARS:
                assert getattr(ref.stats, name) == getattr(other.stats, name)
            assert dict(ref.stats.fs_by_line) == dict(other.stats.fs_by_line)
            assert dict(ref.stats.fs_by_pair) == dict(other.stats.fs_by_pair)
            assert ref.per_chunk_run.tolist() == other.per_chunk_run.tolist()

    def test_result_reports_resolved_engine(self):
        # Tiny/table-sized trace: the crossover routes "auto" to the
        # scalar reference path (no vectorization overhead to pay).
        machine = tiny_machine()
        k = heat_diffusion(rows=4, cols=258)
        r = FalseSharingModel(machine, engine="auto").analyze(k.nest, 4)
        assert r.engine == "reference"
        # Above-crossover grid: "auto" stays on the vectorized tiers.
        big = heat_diffusion(rows=8, cols=4098)
        r2 = FalseSharingModel(machine, engine="auto").analyze(big.nest, 4)
        assert r2.engine == ("jit" if jit_available() else "fast")


class TestCacheKeyInvariance:
    """Engine knobs must not fork the engine's content-addressed cache:
    all detector engines are result-identical, so a landscape computed
    under one must be served to re-runs under any other."""

    def _keys(self, **kwargs):
        from repro.model import WhatIfSweep

        sweep = WhatIfSweep(tiny_machine(), **kwargs)
        k = heat_diffusion(rows=4, cols=258)
        jobs = sweep.point_jobs(k.nest, threads=(2, 4), chunks=(1, 2))
        return [j.key() for j in jobs], jobs

    def test_engine_choice_does_not_change_job_keys(self):
        base, _ = self._keys()
        for kwargs in (
            dict(detector_engine="fast"),
            dict(detector_engine="reference"),
            dict(detector_engine="jit"),
            dict(steady_state=False),
            dict(sim_jobs=4),
            dict(detector_engine="reference", steady_state=False),
            dict(detector_engine="jit", sim_jobs=8),
        ):
            keys, jobs = self._keys(**kwargs)
            assert keys == base, kwargs
            for job in jobs:  # knobs travel in the (unhashed) payload
                assert "detector_engine" not in job.spec
                assert "steady_state" not in job.spec
                assert "sim_jobs" not in job.spec
                assert "detector_engine" in job.payload
                assert "sim_jobs" in job.payload
