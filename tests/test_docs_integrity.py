"""Documentation integrity: the docs must match the repository.

These tests keep README/DESIGN/docs honest: referenced files exist,
the experiment index points at real bench modules, and the README's
quickstart snippet actually runs.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDesignExperimentIndex:
    def test_referenced_benches_exist(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for name in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / name).exists(), (
                f"DESIGN.md references missing bench {name}"
            )

    def test_referenced_examples_exist(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for name in re.findall(r"examples/(\w+\.py)", design):
            assert (REPO / "examples" / name).exists(), (
                f"DESIGN.md references missing example {name}"
            )

    def test_every_paper_table_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for n in (1, 2, 3, 4, 5, 6):
            assert any(f"table{n}" in b for b in benches), f"Table {n} bench missing"
        for fig in ("fig2", "fig6", "fig8", "fig9"):
            assert any(fig in b for b in benches), f"{fig} bench missing"


class TestReadme:
    def test_mentioned_example_files_exist(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (REPO / "examples" / name).exists(), (
                f"README references missing example {name}"
            )

    def test_quickstart_snippet_runs(self):
        """Execute the README's first python code block."""
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_follow_up_snippets_run(self):
        """The predictor and optimizer snippets build on the quickstart."""
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert len(blocks) >= 3
        namespace: dict = {}
        for block in blocks[:3]:
            exec(compile(block, "<README snippet>", "exec"), namespace)


class TestPaperMapping:
    def test_referenced_modules_exist(self):
        mapping = (REPO / "docs" / "PAPER_MAPPING.md").read_text(encoding="utf-8")
        for mod in re.findall(r"`repro/([\w/]+\.py)`", mapping):
            assert (REPO / "src" / "repro" / mod).exists(), (
                f"PAPER_MAPPING references missing module {mod}"
            )

    def test_referenced_tests_exist(self):
        mapping = (REPO / "docs" / "PAPER_MAPPING.md").read_text(encoding="utf-8")
        for t in re.findall(r"`tests/(test_\w+\.py)", mapping):
            assert (REPO / "tests" / t).exists(), (
                f"PAPER_MAPPING references missing test file {t}"
            )


class TestPackagingMetadata:
    def test_pyproject_points_at_cli(self):
        text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
        assert 'repro-fs = "repro.cli:main"' in text

    def test_version_consistency(self):
        import repro

        text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
        assert f'version = "{repro.__version__}"' in text
