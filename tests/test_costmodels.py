"""Unit tests for the Open64-style processor/cache/TLB/parallel models."""

import pytest

from repro.costmodels import (
    CacheModel,
    ParallelModel,
    ProcessorModel,
    TotalCostModel,
)
from repro.kernels import build_dft_nest, build_heat_nest, build_linreg_nest
from repro.machine import paper_machine
from tests.conftest import make_copy_nest, make_nested_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestProcessorModel:
    def test_copy_kernel_counts(self, machine):
        pm = ProcessorModel(machine)
        counts = pm.op_counts(make_copy_nest())
        assert counts["load"] == 1
        assert counts["store"] == 1
        assert counts["fadd"] == 1

    def test_augmented_assign_adds_load_and_op(self, machine):
        pm = ProcessorModel(machine)
        counts = pm.op_counts(build_linreg_nest(4, 4))
        # 5 accumulator updates: 5 stores, 5 extra target loads, 5 iadds.
        assert counts["store"] == 5
        assert counts["iadd"] == 5
        assert counts["load"] == 5 + 8  # 5 RMW loads + 8 point loads

    def test_recurrence_bound_for_accumulators(self, machine):
        pm = ProcessorModel(machine)
        lat = machine.op_latencies
        rec = pm.recurrence_bound(build_linreg_nest(4, 4))
        assert rec == lat["iadd"] + lat["load"] + lat["store"]

    def test_no_recurrence_for_plain_stores(self, machine):
        pm = ProcessorModel(machine)
        assert pm.recurrence_bound(make_copy_nest()) == 0.0

    def test_calls_dominate_dft(self, machine):
        pm = ProcessorModel(machine)
        est_dft = pm.estimate(build_dft_nest(4, 64))
        est_heat = pm.estimate(build_heat_nest(4, 64))
        # Unpipelined trig calls make DFT far more expensive per iteration.
        assert est_dft.cycles_per_iter > 5 * est_heat.cycles_per_iter

    def test_machine_c_is_max_of_bounds(self, machine):
        pm = ProcessorModel(machine)
        est = pm.estimate(make_copy_nest())
        assert est.cycles_per_iter == max(est.resource_cycles, est.latency_cycles)


class TestCacheModel:
    def test_reference_groups_merge_neighbors(self, machine):
        cm = CacheModel(machine)
        groups = cm.reference_groups(build_heat_nest(8, 64))
        names = sorted(g.leader.array.name for g in groups)
        # a[i][j], a[i][j-1], a[i][j+1] group together; a[i-1][j] and
        # a[i+1][j] differ by a full row (> line) so stay separate.
        assert names == ["a", "a", "a", "b"]

    def test_group_stride(self, machine):
        cm = CacheModel(machine)
        groups = cm.reference_groups(make_copy_nest())
        assert all(g.stride_bytes == 8 for g in groups)

    def test_streaming_misses_when_footprint_exceeds_cache(self, machine):
        cm = CacheModel(machine)
        big = make_copy_nest(n=2_000_000)  # 16 MB per array stream
        small = make_copy_nest(n=64)
        est_big = cm.estimate(big)
        est_small = cm.estimate(small)
        assert est_big.misses_per_iter_l3 > 0
        assert est_small.misses_per_iter_l1 <= est_big.misses_per_iter_l1

    def test_resident_working_set_only_cold_misses(self, machine):
        cm = CacheModel(machine)
        est = cm.estimate(make_copy_nest(n=64))
        # 16 lines over 64 iterations = 0.25 cold misses/iter at most.
        assert est.misses_per_iter_l1 <= 0.25 + 1e-9

    def test_tlb_cost_nonnegative_and_small(self, machine):
        cm = CacheModel(machine)
        est = cm.estimate(make_copy_nest(n=4096))
        assert 0 <= est.tlb_cycles_per_iter < est.cache_cycles_per_iter + 1

    def test_prefetch_coverage_reduces_cost(self):
        import dataclasses

        m_no_pf = dataclasses.replace(paper_machine(), prefetch_coverage=0.0)
        m_pf = dataclasses.replace(paper_machine(), prefetch_coverage=0.9)
        big = make_copy_nest(n=2_000_000)
        cost_no = CacheModel(m_no_pf).estimate(big).cache_cycles_per_iter
        cost_pf = CacheModel(m_pf).estimate(big).cache_cycles_per_iter
        assert cost_pf < cost_no


class TestParallelModel:
    def test_loop_overhead_amortizes_outer_levels(self, machine):
        pm = ParallelModel(machine)
        flat = pm.loop_overhead_per_iter(make_copy_nest(n=64))
        nested = pm.loop_overhead_per_iter(make_nested_nest(rows=4, cols=32))
        per = machine.overheads.loop_overhead_per_iter_cycles
        assert flat == pytest.approx(per)
        assert nested == pytest.approx(per + per / 32)

    def test_num_chunks(self, machine):
        pm = ParallelModel(machine)
        nest = make_nested_nest(rows=4, cols=32, chunk=2)
        # per execution: 32/2/... = 16 chunks; 4 outer runs.
        assert pm.num_chunks(nest, 4) == 64

    def test_num_chunks_default_schedule(self, machine):
        pm = ParallelModel(machine)
        nest = make_copy_nest(n=64).with_chunk(None)
        assert pm.num_chunks(nest, 4) == 4

    def test_barrier_scales_with_threads_and_outer_runs(self, machine):
        pm = ParallelModel(machine)
        nest = make_nested_nest(rows=4, cols=32)
        e2 = pm.estimate(nest, 2)
        e8 = pm.estimate(nest, 8)
        assert e8.barrier_cycles == 4 * e2.barrier_cycles

    def test_rejects_bad_threads(self, machine):
        with pytest.raises(ValueError):
            ParallelModel(machine).estimate(make_copy_nest(), 0)


class TestTotalCostModel:
    def test_breakdown_sums(self, machine):
        tm = TotalCostModel(machine)
        bd = tm.breakdown(make_copy_nest(n=64), num_threads=2, fs_cases=10)
        assert bd.total == pytest.approx(
            bd.false_sharing + bd.machine + bd.cache + bd.tlb
            + bd.parallel_overhead + bd.loop_overhead
        )
        assert bd.false_sharing == 10 * machine.fs_penalty_cycles

    def test_fs_fraction(self, machine):
        tm = TotalCostModel(machine)
        bd = tm.breakdown(make_copy_nest(n=64), num_threads=2, fs_cases=1000)
        assert 0 < bd.fs_fraction < 1
        assert bd.scaled_without_fs().fs_fraction == 0.0

    def test_per_iteration_terms_scale_with_iterations(self, machine):
        tm = TotalCostModel(machine)
        small = tm.breakdown(make_copy_nest(n=64))
        big = tm.breakdown(make_copy_nest(n=6400))
        # Fixed startup overhead aside, the per-iteration terms scale 100x.
        assert big.machine == pytest.approx(100 * small.machine)
        assert big.loop_overhead == pytest.approx(100 * small.loop_overhead)
        assert big.total > small.total
