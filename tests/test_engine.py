"""Tests for :mod:`repro.engine` — store, pool, scheduler, consumers.

Covers the subsystem's contract surface:

* cache hit/miss/eviction and corrupted-entry recovery;
* worker-crash retry-then-success and permanent per-job failure
  surfacing (one bad job never fails the batch);
* timeout kill of hung jobs;
* ``parallel == serial`` equivalence over a small what-if grid, and
  warm-cache re-runs serving every point from the store.

The multiprocess tests use the ``engine.test.*`` job kinds (echo,
fail, sleep, crash, flaky_crash) so they stay model-independent and
fast.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    Engine,
    Job,
    JobError,
    ResultStore,
    WorkerPool,
    run_job,
    stable_hash,
)
from repro.machine import paper_machine
from repro.model.whatif import SweepPoint, WhatIfSweep
from repro.obs import get_registry
from tests.conftest import make_copy_nest

JOBS = 2  # worker processes for the multiprocess tests (CI runs 2 cores)


def echo_job(value, label="echo") -> Job:
    return Job("engine.test.echo", {"value": value}, label=label)


# ---------------------------------------------------------------------------
# Job identity
# ---------------------------------------------------------------------------


class TestJobKeys:
    def test_key_ignores_payload_and_label(self):
        a = Job("k", {"x": 1}, payload={"big": object()}, label="a")
        b = Job("k", {"x": 1}, payload={}, label="b")
        assert a.key() == b.key()

    def test_key_depends_on_kind_and_spec(self):
        base = Job("k", {"x": 1}).key()
        assert Job("other", {"x": 1}).key() != base
        assert Job("k", {"x": 2}).key() != base

    def test_key_is_order_independent(self):
        assert Job("k", {"a": 1, "b": 2}).key() == Job("k", {"b": 2, "a": 1}).key()

    def test_unknown_kind_raises_joberror(self):
        with pytest.raises(JobError, match="unknown job kind"):
            run_job(Job("no.such.kind", {}))


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def key(self, n: int = 0) -> str:
        return stable_hash({"n": n})

    def test_miss_then_hit_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self.key()
        assert store.get(key) is None
        store.put(key, {"answer": 42}, kind="t")
        assert store.get(key) == {"answer": 42}
        assert key in store

    def test_atomic_layout_and_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in range(3):
            store.put(self.key(n), {"n": n}, kind="t")
        stats = store.stats()
        assert stats.entries == 3
        assert stats.by_kind == {"t": 3}
        assert stats.total_bytes > 0
        # no stray temp files survive a put
        assert not list(tmp_path.rglob(".tmp-*"))

    def test_corrupted_entry_recovers_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self.key()
        store.put(key, {"fine": True}, kind="t")
        path = store._path(key)
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(key) is None  # demoted to a miss...
        assert not path.exists()  # ...and removed
        # wrong schema / key mismatch are equally fatal
        store.put(key, {"fine": True}, kind="t")
        doc = json.loads(path.read_text())
        doc["key"] = "0" * 64
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert store.get(key) is None

    def test_eviction_caps_entry_count(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=4)
        import os
        import time as _time

        for n in range(8):
            store.put(self.key(n), {"n": n}, kind="t")
            # mtime resolution on some filesystems is coarse; force order
            os.utime(store._path(self.key(n)), (n, n))
            _time.sleep(0)
        assert store.stats().entries == 4
        # the oldest entries went first
        assert store.get(self.key(0)) is None
        assert store.get(self.key(7)) == {"n": 7}

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        for n in range(3):
            store.put(self.key(n), {"n": n})
        assert store.clear() == 3
        assert store.stats().entries == 0

    def test_rejects_bad_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="sha256"):
            store.get("../../etc/passwd")


# ---------------------------------------------------------------------------
# Engine + cache behaviour (inline path: deterministic, no subprocesses)
# ---------------------------------------------------------------------------


class TestEngineCaching:
    def test_miss_compute_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        job = echo_job("hello")
        first = Engine(jobs=1, store=store).run([job])[0]
        assert first.ok and not first.from_cache
        second = Engine(jobs=1, store=store).run([job])[0]
        assert second.ok and second.from_cache
        assert second.result == first.result
        assert second.attempts == 0

    def test_no_cache_engine_never_touches_store(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, use_cache=False, store=store)
        engine.run([echo_job("x")])
        assert store.stats().entries == 0

    def test_intra_batch_dedupe_computes_once(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store)
        outcomes = engine.run([echo_job("same"), echo_job("same")])
        assert [o.ok for o in outcomes] == [True, True]
        assert outcomes[0].from_cache is False
        assert outcomes[1].from_cache is True
        assert store.stats().entries == 1

    def test_failure_surfaces_without_raising(self, tmp_path):
        engine = Engine(jobs=1, store=ResultStore(tmp_path), retries=0)
        ok_job = echo_job("fine")
        bad = Job("engine.test.fail", {"message": "kaput"})
        outcomes = engine.run([ok_job, bad])
        assert outcomes[0].ok
        assert not outcomes[1].ok and "kaput" in outcomes[1].error
        with pytest.raises(RuntimeError, match="kaput"):
            outcomes[1].unwrap()
        # failures are never cached
        assert Engine(jobs=1, store=ResultStore(tmp_path)).store.get(
            bad.key()
        ) is None

    def test_metrics_track_hits_and_misses(self, tmp_path):
        reg = get_registry()
        hits0 = reg.counter("engine_cache_hits_total").value
        misses0 = reg.counter("engine_cache_misses_total").value
        store = ResultStore(tmp_path)
        Engine(jobs=1, store=store).run([echo_job(1)])
        Engine(jobs=1, store=store).run([echo_job(1)])
        assert reg.counter("engine_cache_hits_total").value == hits0 + 1
        assert reg.counter("engine_cache_misses_total").value == misses0 + 1


# ---------------------------------------------------------------------------
# Worker pool: crash isolation, retry, timeout (real subprocesses)
# ---------------------------------------------------------------------------


def _counter(name: str) -> float:
    """Current value of an unlabeled counter (0.0 if never touched)."""
    return get_registry().counter(name).value


class TestWorkerPoolFailures:
    def test_inline_retry_exhaustion_counts_attempts(self):
        retries_before = _counter("engine_retries_total")
        pool = WorkerPool(workers=1, retries=2, backoff_s=0.0)
        out = pool.run([Job("engine.test.fail", {"message": "always"})])[0]
        assert not out.ok
        assert out.attempts == 3  # 1 try + 2 retries
        # Structured failure surface: a stable error code plus the
        # per-attempt retry history (docs/RESILIENCE.md).
        assert out.error_code and out.error_code.startswith("REPRO-E")
        assert len(out.retry_history) == 2
        # Each retry is visible in the metrics registry.
        assert _counter("engine_retries_total") == retries_before + 2

    def test_crash_then_success_via_retry(self, tmp_path):
        crashes_before = _counter("engine_worker_crashes_total")
        retries_before = _counter("engine_retries_total")
        job = Job(
            "engine.test.flaky_crash",
            {"sentinel_dir": str(tmp_path / "flaky"), "crashes": 1},
        )
        pool = WorkerPool(workers=JOBS, retries=2, backoff_s=0.0)
        out = pool.run([job])[0]
        assert out.ok, out.error
        assert out.result["attempts_observed"] >= 2
        # The crash and the retry that recovered from it are counted.
        assert _counter("engine_worker_crashes_total") >= crashes_before + 1
        assert _counter("engine_retries_total") >= retries_before + 1
        # A successful outcome still carries its bumpy history.
        assert len(out.retry_history) >= 1

    def test_permanent_crash_fails_one_job_not_the_batch(self):
        crashes_before = _counter("engine_worker_crashes_total")
        crash = Job("engine.test.crash", {"code": 1})
        good = [echo_job(i, label=f"good{i}") for i in range(4)]
        pool = WorkerPool(workers=JOBS, retries=1, backoff_s=0.0)
        outcomes = pool.run([good[0], crash, *good[1:]])
        by_label = {o.job.describe(): o for o in outcomes}
        assert not by_label[crash.describe()].ok
        err = by_label[crash.describe()].error
        assert "died" in err or "crash" in err or "broken" in err
        # Stable code for the worker-death failure mode.
        assert by_label[crash.describe()].error_code == "REPRO-E102"
        for g in good:
            assert by_label[f"good{g.spec['value']}"].ok
        assert sum(o.ok for o in outcomes) == 4
        # 1 try + 1 retry, both crashed, both counted.
        assert _counter("engine_worker_crashes_total") >= crashes_before + 2

    def test_timeout_kills_hung_job(self):
        hang = Job("engine.test.sleep", {"seconds": 30.0})
        quick = echo_job("q")
        pool = WorkerPool(workers=JOBS, timeout_s=1.0, retries=0, backoff_s=0.0)
        import time

        t0 = time.perf_counter()
        outcomes = pool.run([hang, quick])
        elapsed = time.perf_counter() - t0
        assert elapsed < 15.0, "timeout watchdog did not fire"
        by_key = {o.job.key(): o for o in outcomes}
        assert not by_key[hang.key()].ok
        assert "timeout" in by_key[hang.key()].error
        assert by_key[hang.key()].error_code == "REPRO-E103"

    def test_empty_batch(self):
        assert WorkerPool(workers=JOBS).run([]) == []


# ---------------------------------------------------------------------------
# Equivalence: parallel == serial over a real what-if grid
# ---------------------------------------------------------------------------


class TestSweepEquivalence:
    THREADS = (2, 4)
    CHUNKS = (1, 2, 4)

    def sweep(self):
        return WhatIfSweep(paper_machine(num_cores=8), predictor_runs=4)

    def test_parallel_equals_serial_bitwise(self, tmp_path):
        nest = make_copy_nest(n=256)
        sweep = self.sweep()
        serial = sweep.sweep(nest, threads=self.THREADS, chunks=self.CHUNKS)
        engine = Engine(jobs=JOBS, store=ResultStore(tmp_path))
        parallel = sweep.sweep(
            nest, threads=self.THREADS, chunks=self.CHUNKS, engine=engine
        )
        # dataclass equality on floats == bit-identical values
        assert parallel == serial

    def test_warm_cache_serves_every_point(self, tmp_path):
        nest = make_copy_nest(n=256)
        sweep = self.sweep()
        store = ResultStore(tmp_path)
        cold = sweep.sweep(
            nest, threads=self.THREADS, chunks=self.CHUNKS,
            engine=Engine(jobs=1, store=store),
        )
        reg = get_registry()
        hits0 = reg.counter("engine_cache_hits_total").value
        warm_engine = Engine(jobs=1, store=store)
        warm = sweep.sweep(
            nest, threads=self.THREADS, chunks=self.CHUNKS, engine=warm_engine
        )
        assert warm == cold
        n_points = len(cold.points)
        assert reg.counter("engine_cache_hits_total").value == hits0 + n_points

    def test_point_jobs_rekey_on_machine_change(self):
        nest = make_copy_nest(n=256)
        j8 = WhatIfSweep(paper_machine(num_cores=8)).point_jobs(
            nest, threads=(2,), chunks=(1,)
        )[0]
        j4 = WhatIfSweep(paper_machine(num_cores=4)).point_jobs(
            nest, threads=(2,), chunks=(1,)
        )[0]
        assert j8.key() != j4.key()

    def test_sweep_points_json_roundtrip_exactly(self):
        nest = make_copy_nest(n=128)
        point = self.sweep().sweep(nest, threads=(2,), chunks=(1,)).points[0]
        again = SweepPoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert again == point


# ---------------------------------------------------------------------------
# Experiments + sensitivity through the engine
# ---------------------------------------------------------------------------


class TestConsumerParity:
    def test_experiment_driver_job_matches_direct_run(self, tmp_path):
        from repro.analysis.experiments import ExperimentSuite

        suite = ExperimentSuite(scale="tiny")
        direct = suite.run_fig6()
        engine = Engine(jobs=1, store=ResultStore(tmp_path))
        doc = engine.run_strict(suite.experiment_jobs(["run_fig6"]))[0]
        from repro.analysis.report import ExperimentResult

        res = ExperimentResult.from_dict(doc)
        assert res.experiment == direct.experiment
        assert res.columns == direct.columns
        assert [tuple(r) for r in res.rows] == [tuple(r) for r in direct.rows]

    def test_sensitivity_engine_matches_serial(self, tmp_path):
        from repro.analysis.sensitivity import sensitivity
        from repro.kernels import heat_diffusion

        machine = paper_machine()
        kernel = heat_diffusion(rows=6, cols=258)
        constants = ("remote_fetch_cycles", "invalidate_cycles")
        serial = sensitivity(machine, kernel, 2, constants=constants)
        engine = Engine(jobs=1, store=ResultStore(tmp_path))
        parallel = sensitivity(
            machine, kernel, 2, constants=constants, engine=engine
        )
        assert parallel == serial
