"""Unit tests for array declarations, references and the address space."""

import numpy as np
import pytest

from repro.ir import (
    AddressSpace,
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    DOUBLE,
    INT,
    StructType,
)

I = AffineExpr.var("i")
J = AffineExpr.var("j")


class TestArrayDecl:
    def test_strides_row_major(self):
        a = ArrayDecl.create("a", DOUBLE, (4, 5))
        assert a.strides_bytes() == (40, 8)

    def test_strides_3d(self):
        a = ArrayDecl.create("a", INT, (2, 3, 4))
        assert a.strides_bytes() == (48, 16, 4)

    def test_size_bytes(self):
        assert ArrayDecl.create("a", DOUBLE, (10,)).size_bytes() == 80

    def test_scalar_decl(self):
        s = ArrayDecl.create("s", DOUBLE, ())
        assert s.ndim == 0 and s.size_bytes() == 8

    def test_symbolic_dims_require_binding(self):
        a = ArrayDecl.create("a", DOUBLE, (AffineExpr.var("N"),))
        with pytest.raises(ValueError):
            a.concrete_dims()
        assert a.bind({"N": 7}).concrete_dims() == (7,)


class TestArrayRef:
    def test_subscript_arity_checked(self):
        a = ArrayDecl.create("a", DOUBLE, (4, 5))
        with pytest.raises(ValueError):
            ArrayRef(a, (I,))

    def test_field_on_nonstruct_rejected(self):
        a = ArrayDecl.create("a", DOUBLE, (4,))
        with pytest.raises(TypeError):
            ArrayRef(a, (I,), ("x",))

    def test_offset_expr_flattens(self):
        a = ArrayDecl.create("a", DOUBLE, (100, 200))
        r = ArrayRef(a, (I + 1, 2 * J), is_write=True)
        off = r.offset_expr()
        assert off.coeff("i") == 1600
        assert off.coeff("j") == 16
        assert off.const == 1600

    def test_struct_field_offset(self):
        pt = StructType.create("pt", [("x", DOUBLE), ("y", DOUBLE)])
        a = ArrayDecl.create("pts", pt, (10,))
        r = ArrayRef(a, (I,), ("y",))
        assert r.offset_expr().const == 8
        assert r.accessed_type is DOUBLE

    def test_extra_offset(self):
        a = ArrayDecl.create("a", DOUBLE, (10,))
        r = ArrayRef(a, (I,), extra=AffineExpr.var("k") * 4)
        assert r.offset_expr().coeff("k") == 4

    def test_str_shows_direction(self):
        a = ArrayDecl.create("a", DOUBLE, (10,))
        assert str(ArrayRef(a, (I,), is_write=True)).endswith(":W")
        assert str(ArrayRef(a, (I,))).endswith(":R")


class TestAddressSpace:
    def test_line_alignment(self):
        sp = AddressSpace(alignment=4096)
        a = ArrayDecl.create("a", DOUBLE, (3,))
        base = sp.place(a)
        assert base % 4096 == 0

    def test_distinct_arrays_never_share_lines(self):
        sp = AddressSpace()
        a = ArrayDecl.create("a", DOUBLE, (3,))  # 24 bytes
        b = ArrayDecl.create("b", DOUBLE, (3,))
        base_a = sp.place(a)
        base_b = sp.place(b)
        last_line_a = (base_a + a.size_bytes() - 1) // 64
        first_line_b = base_b // 64
        assert first_line_b > last_line_a

    def test_idempotent_placement(self):
        sp = AddressSpace()
        a = ArrayDecl.create("a", DOUBLE, (3,))
        assert sp.place(a) == sp.place(a)

    def test_conflicting_redeclaration_rejected(self):
        sp = AddressSpace()
        sp.place(ArrayDecl.create("a", DOUBLE, (3,)))
        with pytest.raises(ValueError):
            sp.place(ArrayDecl.create("a", DOUBLE, (4,)))

    def test_explicit_base_must_align(self):
        sp = AddressSpace(alignment=4096)
        with pytest.raises(ValueError):
            sp.place(ArrayDecl.create("a", DOUBLE, (3,)), base=100)

    def test_address_expr_includes_base(self):
        sp = AddressSpace()
        a = ArrayDecl.create("a", DOUBLE, (10,))
        r = ArrayRef(a, (I,))
        addr = sp.address_expr(r)
        assert addr.const == sp.base("a")
        assert addr.coeff("i") == 8

    def test_line_ids_vectorized(self):
        sp = AddressSpace()
        a = ArrayDecl.create("a", DOUBLE, (64,))
        r = ArrayRef(a, (I,))
        env = {"i": np.arange(16)}
        lines = sp.line_ids(r, env, 64)
        base_line = sp.base("a") // 64
        # 8 doubles per 64-byte line
        assert lines[0] == base_line
        assert lines[7] == base_line
        assert lines[8] == base_line + 1

    def test_arrays_listing(self):
        sp = AddressSpace()
        a = ArrayDecl.create("a", DOUBLE, (4,))
        b = ArrayDecl.create("b", DOUBLE, (4,))
        sp.place(a)
        sp.place(b)
        assert [x.name for x in sp.arrays()] == ["a", "b"]
