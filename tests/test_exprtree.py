"""Unit tests for computational expression trees (processor-model input)."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    DOUBLE,
    INT,
    LoadExpr,
    UnOp,
    VarRef,
)
from repro.machine import OpLatencies

I = AffineExpr.var("i")
A = ArrayDecl.create("a", DOUBLE, (16,))
B = ArrayDecl.create("bints", INT, (16,))


def load(arr=A):
    return LoadExpr(ArrayRef(arr, (I,)))


class TestOpCounts:
    def test_load_counts(self):
        e = BinOp("+", load(), load())
        counts = e.op_counts()
        assert counts["load"] == 2
        assert counts["fadd"] == 1

    def test_float_vs_int_classification(self):
        f = BinOp("*", load(), Const(2.0, DOUBLE))
        i = BinOp("*", VarRef("n"), VarRef("k"))
        assert f.op_counts()["fmul"] == 1
        assert i.op_counts()["imul"] == 1

    def test_mixed_promotes_to_float(self):
        e = BinOp("+", VarRef("n", INT), Const(1.0, DOUBLE))
        assert e.op_counts()["fadd"] == 1
        assert e.ctype.is_float

    def test_call_counts(self):
        e = CallExpr("cos", (VarRef("x", DOUBLE),))
        assert e.op_counts()["call"] == 1

    def test_unop(self):
        assert UnOp("-", load()).op_counts()["fneg"] == 1
        assert UnOp("-", VarRef("n")).op_counts()["ineg"] == 1

    def test_cast(self):
        e = CastExpr(DOUBLE, VarRef("n"))
        assert e.op_counts()["cast"] == 1
        assert e.ctype is DOUBLE

    def test_division_classes(self):
        assert BinOp("/", load(), load()).op_counts()["fdiv"] == 1
        assert BinOp("%", VarRef("a"), VarRef("b")).op_counts()["mod"] == 1

    def test_comparison_and_logic(self):
        assert BinOp("<", VarRef("a"), VarRef("b")).op_counts()["icmp"] == 1
        assert BinOp("&&", VarRef("a"), VarRef("b")).op_counts()["logic"] == 1
        assert BinOp("<<", VarRef("a"), Const(1, INT)).op_counts()["shift"] == 1

    def test_unsupported_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", VarRef("a"), VarRef("b"))


class TestCriticalPath:
    def test_chain_adds(self):
        lat = OpLatencies()
        # ((a[i] + a[i]) + a[i]): load(3) -> fadd(4) -> fadd(4) = 11
        e = BinOp("+", BinOp("+", load(), load()), load())
        assert e.critical_path(lat) == 3 + 4 + 4

    def test_balanced_tree_shorter_than_chain(self):
        lat = OpLatencies()
        chain = BinOp("+", BinOp("+", BinOp("+", load(), load()), load()), load())
        balanced = BinOp(
            "+", BinOp("+", load(), load()), BinOp("+", load(), load())
        )
        assert balanced.critical_path(lat) < chain.critical_path(lat)

    def test_leaf_costs(self):
        lat = OpLatencies()
        assert Const(1.0, DOUBLE).critical_path(lat) == 0
        assert VarRef("x").critical_path(lat) == 0
        assert load().critical_path(lat) == 3


class TestRefsTraversal:
    def test_refs_in_order(self):
        e = BinOp("*", load(), LoadExpr(ArrayRef(A, (I + 1,))))
        refs = list(e.refs())
        assert len(refs) == 2
        assert refs[0].indices[0] == I

    def test_load_rejects_write_ref(self):
        with pytest.raises(ValueError):
            LoadExpr(ArrayRef(A, (I,), is_write=True))

    def test_walk_preorder(self):
        e = BinOp("+", Const(1.0, DOUBLE), Const(2.0, DOUBLE))
        nodes = list(e.walk())
        assert nodes[0] is e and len(nodes) == 3

    def test_str_roundtrips_something(self):
        e = BinOp("+", load(), Const(1.0, DOUBLE))
        assert "a[i]" in str(e)
