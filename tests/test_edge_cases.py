"""Edge-case and robustness tests across the stack."""

import pytest

from repro.ir import AffineExpr, ArrayDecl, ArrayRef, Assign, Const, DOUBLE, Loop, ParallelLoopNest
from repro.kernels import heat_diffusion
from repro.machine import paper_machine
from repro.model import FalseSharingModel, FalseSharingPredictor
from repro.sim import MulticoreSimulator
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def model(machine):
    return FalseSharingModel(machine)


@pytest.fixture(scope="module")
def sim(machine):
    return MulticoreSimulator(machine)


class TestEmptyAndTinyLoops:
    def empty_nest(self):
        a = ArrayDecl.create("z", DOUBLE, (8,))
        stmt = Assign(
            ArrayRef(a, (AffineExpr.var("i"),), is_write=True), Const(0.0, DOUBLE)
        )
        return ParallelLoopNest("empty.i", Loop.create("i", 4, 4, [stmt]), "i")

    def test_model_on_empty_loop(self, model):
        r = model.analyze(self.empty_nest(), 4, chunk=1)
        assert r.fs_cases == 0
        assert r.steps_evaluated == 0

    def test_sim_on_empty_loop(self, sim):
        r = sim.run(self.empty_nest(), 4, chunk=1)
        assert r.counters.accesses == 0
        assert r.cycles > 0  # runtime overheads still apply

    def test_single_iteration_loop(self, model):
        r = model.analyze(make_copy_nest(n=1), 4, chunk=1)
        assert r.fs_cases == 0

    def test_more_threads_than_iterations(self, model):
        r = model.analyze(make_copy_nest(n=2), 8, chunk=1)
        # Only 2 threads have work; both may share the one line.
        assert r.fs_cases >= 0
        assert r.steps_evaluated == 1


class TestFullThreadCounts:
    def test_48_threads_model(self, model):
        """Bitmask paths must be correct beyond 32 bits."""
        r = model.analyze(make_copy_nest(n=480), 48, chunk=1)
        assert r.fs_cases > 0
        assert max(t for t in r.stats.fs_by_thread) >= 32

    def test_48_threads_sim_matches_model(self, model, sim):
        nest = make_copy_nest(n=480)
        m = model.analyze(nest, 48, chunk=1)
        s = sim.run(nest, 48, chunk=1)
        assert m.fs_cases == s.counters.coherence_events


class TestDefaultStaticSchedule:
    def test_block_partition_is_fs_light(self, model):
        """schedule(static) — large contiguous blocks: FS only at the
        few block boundaries."""
        nest = make_copy_nest(n=512).with_chunk(None)
        r_block = model.analyze(nest, 4)
        r_rr = model.analyze(nest, 4, chunk=1)
        assert r_block.fs_cases < r_rr.fs_cases / 10

    def test_predictor_on_default_schedule(self, model):
        nest = make_copy_nest(n=512).with_chunk(None)
        pred = FalseSharingPredictor(model, n_runs=4).predict(nest, 4)
        assert pred.total_runs == 1  # one chunk run covers the loop
        assert pred.sampled_runs == 1


class TestSimCounterInvariants:
    def test_access_decomposition(self, sim):
        k = heat_diffusion(rows=5, cols=258)
        r = sim.run(k.nest, 4, chunk=1)
        c = r.counters
        assert c.accesses == c.loads + c.stores
        load_outcomes = (
            c.load_hits + c.load_prefetched + c.load_shared_fills
            + c.load_cold + c.load_remote_modified
        )
        assert load_outcomes == c.loads
        store_outcomes = (
            c.store_hits + c.store_upgrades + c.store_miss_clean
            + c.store_miss_remote_modified
        )
        assert store_outcomes == c.stores

    def test_tlb_misses_bounded_by_pages(self, sim):
        r = sim.run(make_copy_nest(n=512), 2, chunk=8)
        # Two 4 KiB arrays: at most a handful of pages per thread.
        assert 1 <= r.counters.tlb_misses <= 16


class TestUnboundNestsRejected:
    def test_model_rejects_symbolic_bounds(self, model):
        a = ArrayDecl.create("s", DOUBLE, (64,))
        stmt = Assign(
            ArrayRef(a, (AffineExpr.var("i"),), is_write=True), Const(0.0, DOUBLE)
        )
        lp = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("N"), (stmt,))
        nest = ParallelLoopNest("sym.i", lp, "i", params=("N",))
        with pytest.raises(Exception):
            model.analyze(nest, 4, chunk=1)
        # Binding fixes it.
        r = model.analyze(nest.bind({"N": 64}), 4, chunk=1)
        assert r.steps_evaluated == 16
