"""Crash safety and self-healing for the analysis service (PR 8).

Covers the four resilience pillars end to end:

* SIGKILL crash-recovery — a real daemon subprocess is killed without
  warning mid-sweep and restarted against its journal; clients must
  see every row exactly once (reuses the chaos soak harness);
* poison-job quarantine — a job whose cells crash worker processes is
  failed with ``REPRO-E105`` while the pool keeps serving other
  tenants;
* worker supervision — a dead queue-worker thread is restarted by the
  supervisor and the queue keeps working;
* journal-failure degradation — a journal that cannot write flips the
  service to ``degraded`` (shedding admission with ``REPRO-E106`` +
  ``Retry-After``) instead of taking jobs down, and recovers on the
  first successful write.
"""

from __future__ import annotations

import importlib.util
import json
import threading
import time
from pathlib import Path

import pytest

from repro.engine import Engine
from repro.resilience.errors import ServiceOverloadedError
from repro.resilience.faults import FaultPlan, install_plan
from repro.service import (
    JobQueue,
    JobRequest,
    Journal,
    ServeConfig,
    ServiceClient,
    ServiceClientError,
    TenantConfig,
    TenantRegistry,
    serve,
)

REPO = Path(__file__).resolve().parents[1]

KERNEL = """
#define N 64
double a[N];
double b[N];

void copy(void) {
    int i;
    #pragma omp parallel for schedule(static,1)
    for (i = 0; i < N; i++) {
        b[i] = a[i] + 1.0;
    }
}
"""


def _tenant(name: str, **kw) -> TenantConfig:
    kw.setdefault("rate_per_s", 1000)
    kw.setdefault("burst", 1000)
    return TenantConfig(name=name, **kw)


def _wait_terminal(queue: JobQueue, job_id: str,
                   timeout_s: float = 90.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job is not None and job.terminal:
            return
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout_s:g}s")


def _wait_accepting(queue: JobQueue, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if queue.health.accepting:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"queue never returned to ready: {queue.health.doc()}"
    )


# ---------------------------------------------------------------------------
# SIGKILL crash recovery (real daemon subprocess, via the soak harness)
# ---------------------------------------------------------------------------


def _load_soak():
    spec = importlib.util.spec_from_file_location(
        "repro_chaos_soak", REPO / "benchmarks" / "chaos_soak.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.slow
class TestCrashRecoveryE2E:
    def test_sigkill_midsweep_loses_and_duplicates_nothing(self, tmp_path):
        soak = _load_soak()
        verdict = soak.run_soak(
            port=18481, kills=2, delay_s=0.3, workdir=tmp_path / "soak",
            timeout_s=100.0, threads=(1, 2, 4), chunks=(1, 2, 4, 8),
        )
        assert verdict["ok"] is True
        assert verdict["kills"] == 2
        assert verdict["cells"] == 12  # each grid cell exactly once
        assert verdict["requeues"] >= 2  # the job really was interrupted


# ---------------------------------------------------------------------------
# Poison-job quarantine
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_poison_job_quarantined_while_pool_serves_others(
        self, monkeypatch
    ):
        # Only the poison job's cell (threads=4, chunk=8 → engine label
        # "…:t4c8") crashes its worker process; bob's t2c1 cells never
        # match the fault.
        monkeypatch.setenv("REPRO_FAULTS", "engine.job:crash:match=t4c8")
        alice = _tenant("alice", api_key="sk-a")
        bob = _tenant("bob", api_key="sk-b")
        queue = JobQueue(
            TenantRegistry([alice, bob]), Engine(jobs=2, use_cache=False),
            concurrency=2, quarantine_after=3,
        )
        queue.start()
        try:
            poison = queue.submit(alice, JobRequest(
                source=KERNEL, threads=(4,), chunks=(8,)))
            healthy = queue.submit(bob, JobRequest(
                source=KERNEL, threads=(2,), chunks=(1,)))
            _wait_terminal(queue, poison.id)
            _wait_terminal(queue, healthy.id)

            # 2 in-pool retries + the terminal crash = 3 attributed
            # crashes = the default threshold, crossed in one batch.
            assert poison.status == "failed"
            assert poison.error is not None
            assert poison.error["code"] == "REPRO-E105"
            assert poison.crashes >= 3
            diags = [r for r in poison.rows()
                     if r["type"] == "diagnostic"
                     and r.get("code") == "REPRO-E105"]
            assert diags, poison.rows()
            assert queue._m_quarantined.value >= 1

            # The pool survived and other tenants never noticed.
            assert healthy.status == "done"
            again = queue.submit(bob, JobRequest(
                source=KERNEL, threads=(2,), chunks=(2,)))
            _wait_terminal(queue, again.id)
            assert again.status == "done"
        finally:
            queue.drain(persist=False)

    def test_restored_poison_job_quarantined_before_execution(self):
        tenant = _tenant("t")
        queue = JobQueue(TenantRegistry([tenant]),
                         Engine(jobs=1, use_cache=False),
                         concurrency=1, quarantine_after=2)
        job = queue.submit(tenant, JobRequest(source=KERNEL,
                                              threads=(2,), chunks=(1,)))
        job.crashes = 2  # as if restored from a crash-looping journal
        assert queue._maybe_quarantine(job) is True
        assert job.status == "failed"
        assert job.error["code"] == "REPRO-E105"
        # Idempotent: a second call must not double-fail the job.
        rows_before = len(job.rows())
        assert queue._maybe_quarantine(job) is True
        assert len(job.rows()) == rows_before


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------


class TestSupervisor:
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_worker_thread_is_restarted(self):
        tenant = _tenant("t")
        queue = JobQueue(TenantRegistry([tenant]), Engine(jobs=1),
                         concurrency=1, supervise_interval_s=0.05)
        before = queue._m_worker_restarts.value
        # The fault fires on the worker's first heartbeat — outside the
        # per-job exception net — killing the thread outright.
        with install_plan(FaultPlan.parse("worker.heartbeat:raise:times=1")):
            queue.start()
            try:
                deadline = time.monotonic() + 15.0
                while queue._m_worker_restarts.value <= before:
                    assert time.monotonic() < deadline, (
                        "supervisor never restarted the dead worker"
                    )
                    time.sleep(0.05)
                # The replacement worker must actually serve jobs.
                _wait_accepting(queue)
                job = queue.submit(tenant, JobRequest(
                    source=KERNEL, threads=(2,), chunks=(1,)))
                _wait_terminal(queue, job.id)
                assert job.status == "done"
            finally:
                queue.drain(persist=False)


# ---------------------------------------------------------------------------
# Journal failure → degraded + load shedding → recovery
# ---------------------------------------------------------------------------


class TestJournalDegradation:
    def test_journal_write_failure_degrades_sheds_and_recovers(
        self, tmp_path
    ):
        tenant = _tenant("t")
        queue = JobQueue(
            TenantRegistry([tenant]), Engine(jobs=1, use_cache=False),
            concurrency=1, journal=Journal(tmp_path / "wal", fsync=False),
        )
        queue.start()
        try:
            with install_plan(FaultPlan.parse("journal.append:raise")):
                # The admit record fails — the job is still taken (the
                # journal must never take jobs down) but the service
                # degrades and starts shedding.
                errors = queue._m_journal_errors.value
                job1 = queue.submit(tenant, JobRequest(
                    source=KERNEL, threads=(2,), chunks=(1,)))
                assert queue._m_journal_errors.value > errors
                assert queue.health.state == "degraded"
                assert "journal-errors" in queue.health.reasons()
                with pytest.raises(ServiceOverloadedError) as exc:
                    queue.submit(tenant, JobRequest(
                        source=KERNEL, threads=(4,), chunks=(1,)))
                assert exc.value.code == "REPRO-E106"
                assert exc.value.context["retry_after_s"] > 0
            _wait_terminal(queue, job1.id)
            assert job1.status == "done"

            # Disk healed: the next successful write (here a crash-count
            # checkpoint, as ongoing traffic would produce) clears the
            # degradation and admission resumes.
            queue._journal_safe("record_crashes", job1.id, 0)
            _wait_accepting(queue)
            job2 = queue.submit(tenant, JobRequest(
                source=KERNEL, threads=(2,), chunks=(2,)))
            _wait_terminal(queue, job2.id)
            assert job2.status == "done"
        finally:
            queue.drain(persist=False)


# ---------------------------------------------------------------------------
# HTTP: ?from=N resume + Retry-After
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    """A live daemon: alice unthrottled, bob with a one-token bucket."""
    tenants = tmp_path / "tenants.json"
    tenants.write_text(json.dumps({"tenants": [
        {"name": "alice", "api_key": "sk-alice",
         "rate_per_s": 1000, "burst": 1000},
        {"name": "bob", "api_key": "sk-bob",
         "rate_per_s": 0.001, "burst": 1},
    ]}), encoding="utf-8")
    config = ServeConfig(
        host="127.0.0.1", port=0, workers=1, concurrency=1, batch_cells=4,
        tenants_file=str(tenants), store_dir=str(tmp_path / "store"),
        journal_dir=str(tmp_path / "wal"),
    )
    stop = threading.Event()
    bound: dict = {}
    ready = threading.Event()

    def _on_ready(server):
        bound["port"] = server.server_address[1]
        ready.set()

    thread = threading.Thread(
        target=serve, args=(config,),
        kwargs={"ready": _on_ready, "stop_event": stop}, daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=15), "daemon did not come up"
    client = ServiceClient(
        f"http://127.0.0.1:{bound['port']}", api_key="sk-alice",
        timeout_s=60,
    )
    client.wait_ready()
    yield client
    stop.set()
    thread.join(timeout=60)
    assert not thread.is_alive(), "daemon did not drain"


class TestResumeAndBackPressure:
    def test_results_resume_from_offset(self, service):
        job = service.submit(KERNEL, threads=[2, 4], chunks=[1, 2])
        service.wait(job["id"])
        full = service.results(job["id"])
        assert full["from"] == 0
        rows = full["rows"]
        assert len(rows) == 5  # 4 cells + summary
        part = service.results(job["id"], from_offset=2)
        assert part["from"] == 2
        assert part["rows"] == rows[2:]

    def test_stream_resume_yields_only_the_tail(self, service):
        job = service.submit(KERNEL, threads=[2], chunks=[1, 2])
        rows = list(service.stream(job["id"]))
        tail = list(service.stream(job["id"], from_offset=len(rows) - 1))
        assert tail == rows[-1:]

    def test_bad_from_is_a_400(self, service):
        job = service.submit(KERNEL, threads=[2], chunks=[1])
        with pytest.raises(ServiceClientError) as exc:
            service._json("GET", f"/v1/jobs/{job['id']}/results?from=nope")
        assert exc.value.status == 400
        assert exc.value.code == "REPRO-U101"

    def test_rate_limit_429_carries_retry_after(self, service):
        bob = ServiceClient(service.base_url, api_key="sk-bob")
        bob.submit(KERNEL, threads=[2], chunks=[1])  # the only token
        with pytest.raises(ServiceClientError) as exc:
            bob.submit(KERNEL, threads=[2], chunks=[1])
        assert exc.value.status == 429
        assert exc.value.code == "REPRO-R102"
        assert exc.value.retry_after_s is not None
        assert exc.value.retry_after_s >= 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
