"""Tests for the observability layer: tracer, metrics, exporters, config.

Covers the round-trips the acceptance criteria name: spans -> Chrome
trace JSON -> ``json.load``; registry -> snapshot -> JSON/CSV; and the
end-to-end wiring (an instrumented analysis produces pipeline-stage
spans and registry counters that match the run's ``FSStats``).
"""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    ObsConfig,
    Tracer,
    chrome_trace_events,
    format_labels,
    get_registry,
    get_tracer,
    load_chrome_trace,
    session,
    span,
    span_summary,
    traced,
    write_chrome_trace,
    write_metrics,
)


@pytest.fixture
def tracer():
    t = get_tracer()
    cap = t.max_events
    t.reset()
    t.enable()
    yield t
    t.disable()
    t.reset()
    t.max_events = cap  # tests may shrink the buffer cap; undo the leak


@pytest.fixture
def registry():
    r = get_registry()
    r.reset()
    yield r
    r.reset()


class TestTracer:
    def test_disabled_span_records_nothing(self):
        t = get_tracer()
        t.reset()
        assert not t.enabled
        with span("never.seen"):
            pass
        assert len(t.events()) == 0

    def test_span_records_name_args_duration(self, tracer):
        with span("unit.work", step=3):
            pass
        (ev,) = tracer.events()
        assert ev.name == "unit.work"
        assert ev.args == {"step": 3}
        assert ev.dur_us >= 0

    def test_nested_spans_all_recorded(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
        names = [e.name for e in tracer.events()]
        assert names == ["inner", "outer"]  # inner closes first

    def test_set_attaches_mid_span_attrs(self, tracer):
        with span("unit.result") as sp:
            sp.set(found=7)
        (ev,) = tracer.events()
        assert ev.args["found"] == 7

    def test_span_survives_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with span("unit.crash"):
                raise RuntimeError("boom")
        assert [e.name for e in tracer.events()] == ["unit.crash"]

    def test_traced_decorator_bare_and_named(self, tracer):
        @traced
        def alpha():
            return 1

        @traced(name="custom.beta")
        def beta():
            return 2

        assert alpha() == 1 and beta() == 2
        names = {e.name for e in tracer.events()}
        assert "custom.beta" in names
        assert any(n.endswith("alpha") for n in names)

    def test_traced_is_free_when_disabled(self):
        t = get_tracer()
        t.reset()

        @traced
        def gamma():
            return 3

        assert gamma() == 3
        assert len(t.events()) == 0

    def test_thread_safety_and_tid_mapping(self, tracer):
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()  # ensure all four threads are alive at once
            for _ in range(50):
                with span("mt.work"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = tracer.events()
        assert len(events) == 200
        assert {e.tid for e in events} == {0, 1, 2, 3}

    def test_buffer_cap_drops_not_grows(self, tracer):
        tracer.max_events = 10
        for _ in range(20):
            with span("capped"):
                pass
        assert len(tracer.events()) == 10
        assert tracer.dropped == 10

    def test_summary_aggregates_by_name(self, tracer):
        for _ in range(3):
            with span("agg.a"):
                pass
        with span("agg.b"):
            pass
        rows = {r.name: r for r in span_summary(tracer.events())}
        assert rows["agg.a"].count == 3
        assert rows["agg.b"].count == 1
        assert rows["agg.a"].total_us >= rows["agg.a"].mean_us


class TestMetrics:
    def test_counter_labels_and_value(self, registry):
        c = registry.counter("fs_cases", "cases")
        c.labels(kernel="heat", threads=4).inc(10)
        c.labels(kernel="heat", threads=4).inc(2)
        c.labels(kernel="dft", threads=4).inc(1)
        snap = registry.snapshot()
        assert snap["counters"]['fs_cases{kernel="heat",threads="4"}'] == 12
        assert snap["counters"]['fs_cases{kernel="dft",threads="4"}'] == 1

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_and_inc(self, registry):
        g = registry.gauge("throughput")
        g.set(100.0)
        g.inc(-25.0)
        assert g.value == 75.0

    def test_histogram_aggregates(self, registry):
        h = registry.histogram("lat")
        for v in (0.005, 0.02, 0.02, 2.0):
            h.observe(v)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["count"] == 4
        assert snap["min"] == 0.005 and snap["max"] == 2.0
        assert sum(snap["buckets"].values()) == 4

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_reset_clears_everything(self, registry):
        registry.counter("gone").inc()
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {}

    def test_merge_counters_add_gauges_latest(self, registry):
        registry.counter("c").labels(k="1").inc(3)
        registry.gauge("g").set(1.0)
        other = MetricsRegistry()
        other.counter("c").labels(k="1").inc(4)
        other.counter("c").labels(k="2").inc(5)
        other.gauge("g").set(9.0)
        other.histogram("h").observe(1.0)
        registry.merge(other)
        snap = registry.snapshot()
        assert snap["counters"]['c{k="1"}'] == 7
        assert snap["counters"]['c{k="2"}'] == 5
        assert snap["gauges"]["g"] == 9.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_format_labels_sorted_and_quoted(self):
        assert format_labels({"b": 2, "a": "x"}) == '{a="x",b="2"}'


class TestExport:
    def test_chrome_trace_round_trip(self, tracer, tmp_path):
        with span("rt.stage", items=5):
            pass
        path = tmp_path / "trace.json"
        n = write_chrome_trace(path)
        assert n == 1
        doc = json.load(path.open())  # must be plain-JSON loadable
        assert "traceEvents" in doc
        events = load_chrome_trace(path)
        assert events[0]["name"] == "rt.stage"
        assert events[0]["args"]["items"] == 5
        assert events[0]["ph"] == "X"

    def test_chrome_trace_has_metadata_lanes(self, tracer):
        with span("meta.check"):
            pass
        events = chrome_trace_events(tracer.events())
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        meta_names = {e["name"] for e in events if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= meta_names

    def test_metrics_json_round_trip(self, registry, tmp_path):
        registry.counter("fs_cases").labels(kernel="heat").inc(42)
        path = tmp_path / "m.json"
        write_metrics(path)
        loaded = json.load(path.open())
        assert loaded["counters"]['fs_cases{kernel="heat"}'] == 42

    def test_metrics_csv_round_trip(self, registry, tmp_path):
        registry.counter("fs_cases").inc(7)
        registry.histogram("h").observe(0.5)
        path = tmp_path / "m.csv"
        write_metrics(path)
        text = path.read_text()
        assert text.splitlines()[0] == "kind,name,value"
        assert "fs_cases" in text and "h:count" in text


class TestConfig:
    def test_from_env_paths_and_switches(self):
        cfg = ObsConfig.from_env(
            {"REPRO_TRACE": "t.json", "REPRO_METRICS": "on"}
        )
        assert cfg.trace_enabled and cfg.trace_path == "t.json"
        assert cfg.metrics_enabled and cfg.metrics_path is None

    def test_from_env_disabled_values(self):
        for value in ("", "0", "off", "false"):
            cfg = ObsConfig.from_env({"REPRO_TRACE": value})
            assert not cfg.trace_enabled

    def test_cli_overrides_env(self):
        cfg = ObsConfig.from_env({"REPRO_TRACE": "env.json"})
        cfg = cfg.with_cli(trace_path="cli.json", metrics_path="m.csv")
        assert cfg.trace_path == "cli.json"
        assert cfg.metrics_path == "m.csv"

    def test_session_writes_outputs_and_restores(self, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        cfg = ObsConfig(
            trace_enabled=True, trace_path=str(trace),
            metrics_enabled=True, metrics_path=str(metrics),
        )
        with session(cfg, reset_metrics=True):
            with span("sess.body"):
                pass
            get_registry().counter("sess_counter").inc()
        assert not get_tracer().enabled
        assert load_chrome_trace(trace)[0]["name"] == "sess.body"
        assert json.load(metrics.open())["counters"]["sess_counter"] == 1
        get_registry().reset()

    def test_session_flushes_on_exception(self, tmp_path):
        trace = tmp_path / "t.json"
        cfg = ObsConfig(trace_enabled=True, trace_path=str(trace))
        with pytest.raises(RuntimeError):
            with session(cfg):
                with span("sess.crash"):
                    pass
                raise RuntimeError("boom")
        assert load_chrome_trace(trace)[0]["name"] == "sess.crash"


class TestPipelineIntegration:
    """End-to-end: the instrumented model emits spans + matching metrics."""

    @pytest.fixture
    def analysis(self, tracer, registry):
        from repro.kernels import heat_diffusion
        from repro.machine import paper_machine
        from repro.model import FalseSharingModel

        k = heat_diffusion(rows=4, cols=258)
        model = FalseSharingModel(paper_machine())
        result = model.analyze(k.nest, 4, chunk=1)
        return result, tracer, registry

    def test_pipeline_stage_spans_present(self, analysis):
        _, tracer, _ = analysis
        names = {e.name for e in tracer.events()}
        assert {"model.analyze", "ownership.block",
                "detector.process_block"} <= names

    def test_registry_counters_match_fsstats(self, analysis):
        result, _, registry = analysis
        snap = registry.snapshot()["counters"]
        labels = (
            f'{{chunk="{result.chunk}",kernel="{result.nest_name}",'
            f'mode="invalidate",threads="{result.num_threads}"}}'
        )
        assert snap["fs_cases" + labels] == result.stats.fs_cases
        assert snap["misses" + labels] == result.stats.misses
        assert snap["invalidations" + labels] == result.stats.invalidations

    def test_cli_profile_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        from repro.kernels import heat_source

        src = tmp_path / "heat.c"
        src.write_text(heat_source(6, 130))
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "analyze", str(src), "-t", "4", "-c", "1",
            "--profile", str(trace), "--metrics-out", str(metrics),
        ])
        assert rc == 0
        names = {e["name"] for e in load_chrome_trace(trace)}
        assert len(names) >= 6  # distinct pipeline-stage span names
        assert "model.analyze" in names and "frontend.parse" in names
        m = json.load(metrics.open())
        fs_keys = [k for k in m["counters"] if k.startswith("fs_cases{")]
        assert fs_keys, "metrics dump must carry fs_cases counters"
        get_registry().reset()
        get_tracer().reset()

    def test_model_overhead_when_disabled_is_small(self):
        """Tracing off: instrumented analyze within noise of itself.

        A smoke guard (the real bound lives in
        benchmarks/bench_model_throughput.py): the disabled-path span()
        calls must not add pathological per-block cost.
        """
        import time

        from repro.kernels import heat_diffusion
        from repro.machine import paper_machine
        from repro.model import FalseSharingModel

        t = get_tracer()
        assert not t.enabled
        k = heat_diffusion(rows=4, cols=258)
        model = FalseSharingModel(paper_machine())
        model.analyze(k.nest, 4, chunk=1)  # warm-up
        t0 = time.perf_counter()
        model.analyze(k.nest, 4, chunk=1)
        cold = time.perf_counter() - t0
        assert len(t.events()) == 0
        assert cold < 5.0  # absolute sanity bound, not a micro-benchmark
