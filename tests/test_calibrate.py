"""Calibration tests: shipped constants must match what the simulator
measures on dedicated microbenchmarks.

This is the guard against per-experiment tuning: if someone nudges a
penalty to make one table look better, these bands break.
"""

import pytest

from repro.machine import calibrate, paper_machine
from repro.machine.calibrate import CalibrationEntry


@pytest.fixture(scope="module")
def report():
    return calibrate(paper_machine())


class TestCalibrationBands:
    def test_fs_read_penalty_within_band(self, report):
        e = report.entry("fs_read_penalty")
        assert e.relative_error < 0.30, (
            f"configured read-FS penalty {e.configured} is not within 30% of "
            f"the simulator-measured {e.measured:.0f}"
        )

    def test_fs_write_penalty_within_band(self, report):
        e = report.entry("fs_write_penalty")
        assert e.relative_error < 0.30

    def test_prefetch_coverage_within_band(self, report):
        e = report.entry("prefetch_coverage")
        assert abs(e.configured - e.measured) < 0.2

    def test_all_measurements_positive(self, report):
        for e in report.entries:
            assert e.measured > 0

    def test_report_text(self, report):
        text = report.to_text()
        assert "fs_read_penalty" in text and "measured" in text

    def test_unknown_entry(self, report):
        with pytest.raises(KeyError):
            report.entry("warp_drive_latency")


class TestEntryMath:
    def test_relative_error(self):
        e = CalibrationEntry("x", configured=110.0, measured=100.0)
        assert e.relative_error == pytest.approx(0.1)

    def test_zero_measured(self):
        assert CalibrationEntry("x", 0.0, 0.0).relative_error == 0.0
        assert CalibrationEntry("x", 5.0, 0.0).relative_error == float("inf")
