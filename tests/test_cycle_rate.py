"""Tests for the unknown-boundaries FS-rate mode (paper §III preamble)."""

import pytest

from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    DOUBLE,
    LoadExpr,
    Loop,
    ParallelLoopNest,
    Schedule,
)
from repro.machine import paper_machine
from repro.model import FalseSharingModel
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def model():
    return FalseSharingModel(paper_machine())


def symbolic_copy_nest(extent: int = 4096) -> ParallelLoopNest:
    """``for (i = 0; i < n; i++) b[i] = a[i] + 1`` with symbolic ``n``.

    The arrays carry a concrete (large) extent, as in real code where
    the buffer is allocated but the processed prefix ``n`` is a runtime
    argument.
    """
    a = ArrayDecl.create("a", DOUBLE, (extent,))
    b = ArrayDecl.create("b", DOUBLE, (extent,))
    i = AffineExpr.var("i")
    stmt = Assign(
        ArrayRef(b, (i,), is_write=True),
        BinOp("+", LoadExpr(ArrayRef(a, (i,))), Const(1.0, DOUBLE)),
    )
    loop = Loop("i", AffineExpr.const_expr(0), AffineExpr.var("n"), (stmt,))
    return ParallelLoopNest(
        "sym_copy.i", loop, "i", schedule=Schedule("static", 1), params=("n",)
    )


class TestCycleRate:
    def test_symbolic_bound_analyzed(self, model):
        rate = model.analyze_cycle_rate(symbolic_copy_nest(), 4, chunk=1)
        assert rate.fs_cases_per_cycle > 0
        assert rate.cycles_evaluated > 0

    def test_rate_matches_concrete_loop(self, model):
        """The per-cycle rate extrapolates to the concrete loop's count."""
        rate = model.analyze_cycle_rate(
            symbolic_copy_nest(), 4, chunk=1, warmup_cycles=2, measured_cycles=8
        )
        concrete = make_copy_nest(n=512)
        full = model.analyze(concrete, 4, chunk=1)
        total_cycles = full.total_chunk_runs
        projected = rate.extrapolate(total_cycles)
        assert projected == pytest.approx(full.fs_cases, rel=0.1)

    def test_concrete_bound_also_accepted(self, model):
        rate = model.analyze_cycle_rate(make_copy_nest(n=512), 4, chunk=1)
        assert rate.fs_cases_per_cycle > 0

    def test_warmup_discards_cold_cycles(self, model):
        cold = model.analyze_cycle_rate(
            symbolic_copy_nest(), 4, chunk=1, warmup_cycles=0, measured_cycles=4
        )
        warm = model.analyze_cycle_rate(
            symbolic_copy_nest(), 4, chunk=1, warmup_cycles=2, measured_cycles=4
        )
        # The very first cycle has no prior writers: the cold-inclusive
        # rate cannot exceed the steady-state one.
        assert cold.fs_cases_per_cycle <= warm.fs_cases_per_cycle + 1e-9

    def test_rejects_multiple_unknowns(self, model):
        nest = symbolic_copy_nest()
        loop = nest.root
        bad = Loop(
            loop.var, loop.lower,
            AffineExpr.var("n") + AffineExpr.var("m"), loop.body, loop.step,
        )
        nest2 = ParallelLoopNest(
            "bad.i", bad, "i", schedule=Schedule("static", 1), params=("n", "m")
        )
        with pytest.raises(ValueError, match="several unknowns"):
            model.analyze_cycle_rate(nest2, 4, chunk=1)

    def test_rejects_scaled_unknown(self, model):
        nest = symbolic_copy_nest()
        loop = nest.root
        bad = Loop(
            loop.var, loop.lower, AffineExpr.var("n") * 2, loop.body, loop.step
        )
        nest2 = ParallelLoopNest(
            "bad2.i", bad, "i", schedule=Schedule("static", 1), params=("n",)
        )
        with pytest.raises(ValueError, match="coefficient 1"):
            model.analyze_cycle_rate(nest2, 4, chunk=1)

    def test_rejects_bad_args(self, model):
        nest = symbolic_copy_nest()
        with pytest.raises(ValueError):
            model.analyze_cycle_rate(nest, 4, chunk=0)
        with pytest.raises(ValueError):
            model.analyze_cycle_rate(nest, 4, chunk=1, measured_cycles=0)

    def test_extrapolate_validation(self, model):
        rate = model.analyze_cycle_rate(symbolic_copy_nest(), 2, chunk=1)
        with pytest.raises(ValueError):
            rate.extrapolate(-1)
