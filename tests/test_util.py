"""Unit tests for repro.util helpers."""

import logging

import pytest

from repro.util import Timer, ceil_div, get_logger, is_power_of_two, popcount


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_dividend(self):
        assert ceil_div(0, 7) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 3)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(0xFF) == 8

    def test_sparse(self):
        assert popcount((1 << 47) | 1) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("x", [1, 2, 4, 64, 4096, 1 << 30])
    def test_powers(self, x):
        assert is_power_of_two(x)

    @pytest.mark.parametrize("x", [0, 3, 6, 63, 65, -4])
    def test_non_powers(self, x):
        assert not is_power_of_two(x)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first >= 0.0

    def test_reset(self):
        t = Timer()
        with t:
            sum(range(100))
        t.reset()
        assert t.elapsed == 0.0


class TestLogger:
    def test_namespaced(self):
        lg = get_logger("model.fsmodel")
        assert lg.name == "repro.model.fsmodel"

    def test_already_prefixed(self):
        lg = get_logger("repro.sim")
        assert lg.name == "repro.sim"

    def test_is_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)


class TestLogLevels:
    def test_parse_level_names_and_numbers(self):
        from repro.util import parse_level

        assert parse_level("DEBUG") == logging.DEBUG
        assert parse_level("warning") == logging.WARNING
        assert parse_level(15) == 15
        assert parse_level("10") == 10

    def test_parse_level_rejects_garbage(self):
        from repro.util import parse_level

        with pytest.raises(ValueError):
            parse_level("LOUD")

    def test_set_level_returns_previous(self):
        from repro.util import set_level

        old = set_level("DEBUG")
        try:
            assert logging.getLogger("repro").level == logging.DEBUG
            assert set_level(old) == logging.DEBUG
        finally:
            logging.getLogger("repro").setLevel(old)

    def test_set_level_accepts_numeric_string(self):
        from repro.util import set_level

        old = set_level("10")
        try:
            assert logging.getLogger("repro").level == 10
        finally:
            logging.getLogger("repro").setLevel(old)

    def test_invalid_env_value_warns_not_silent(self, monkeypatch):
        from repro.util.logging import _level_from_env

        monkeypatch.setenv("REPRO_LOG", "VERYLOUD")
        with pytest.warns(RuntimeWarning, match="REPRO_LOG"):
            assert _level_from_env() == logging.WARNING

    def test_numeric_env_value_accepted(self, monkeypatch):
        from repro.util.logging import _level_from_env

        monkeypatch.setenv("REPRO_LOG", "10")
        assert _level_from_env() == logging.DEBUG

    def test_unset_env_defaults_to_warning(self, monkeypatch):
        from repro.util.logging import _level_from_env

        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert _level_from_env() == logging.WARNING
