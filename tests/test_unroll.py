"""Unit tests for the processor-model-driven unroll advisor."""

import pytest

from repro.kernels import build_heat_nest, build_linreg_nest
from repro.machine import paper_machine
from repro.transform import UnrollAdvisor
from tests.conftest import make_copy_nest


@pytest.fixture(scope="module")
def advisor():
    return UnrollAdvisor(paper_machine())


class TestScoring:
    def test_loop_overhead_amortizes(self, advisor):
        nest = make_copy_nest(n=64)
        s1 = advisor.score(nest, 1)
        s4 = advisor.score(nest, 4)
        assert s4.loop_overhead == pytest.approx(s1.loop_overhead / 4)

    def test_latency_bound_shrinks_without_recurrence(self, advisor):
        nest = build_heat_nest(6, 66)  # stencil: no loop-carried recurrence
        s1 = advisor.score(nest, 1)
        s4 = advisor.score(nest, 4)
        assert s4.latency_bound <= s1.latency_bound

    def test_recurrence_floor_immune_to_unrolling(self, advisor):
        nest = build_linreg_nest(8, 8)  # memory accumulators
        s1 = advisor.score(nest, 1)
        s8 = advisor.score(nest, 8)
        assert s1.latency_bound == s8.latency_bound  # the serial floor

    def test_register_pressure_flagged(self, advisor):
        nest = build_linreg_nest(8, 8)  # 13 loads per iteration
        assert advisor.score(nest, 4).register_limited

    def test_rejects_bad_factor(self, advisor):
        with pytest.raises(ValueError):
            advisor.score(make_copy_nest(), 0)


class TestRecommendation:
    def test_stencil_benefits_from_unrolling(self, advisor):
        rec = advisor.recommend(build_heat_nest(6, 130))
        assert rec.best_factor > 1
        assert rec.speedup_percent() > 0

    def test_prefers_smallest_equivalent_factor(self, advisor):
        """Resource-bound loops gain only loop-overhead amortization;
        the advisor must not inflate code size for the last 1%."""
        rec = advisor.recommend(build_linreg_nest(8, 64))
        best = rec.best
        larger = [s for s in rec.scores if s.factor > best.factor]
        for s in larger:
            assert s.cycles_per_iter >= best.cycles_per_iter * 0.99

    def test_candidates_pruned_to_trip(self, advisor):
        rec = advisor.recommend(make_copy_nest(n=4))
        assert all(s.factor <= 4 for s in rec.scores)

    def test_table_contains_factor_one(self, advisor):
        rec = advisor.recommend(make_copy_nest(n=64))
        assert any(s.factor == 1 for s in rec.scores)
