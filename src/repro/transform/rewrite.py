"""Nest rewriting utilities for model-guided transformations.

The mitigation passes (padding, layout changes) need to produce a
*modified copy* of a loop nest — same loops, same statements, but with
one array declaration swapped for a transformed one.  This module
implements that substitution over the immutable IR.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.exprtree import (
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    Expr,
    LoadExpr,
    UnOp,
    VarRef,
)
from repro.ir.loops import Assign, Loop, ParallelLoopNest
from repro.ir.refs import ArrayDecl, ArrayRef


def replace_array(nest: ParallelLoopNest, new_decl: ArrayDecl) -> ParallelLoopNest:
    """Return a copy of ``nest`` with every reference to
    ``new_decl.name`` retargeted at ``new_decl``.

    The new declaration must keep the dimensionality of the old one
    (subscripts are preserved verbatim).
    """

    def fix_ref(ref: ArrayRef) -> ArrayRef:
        if ref.array.name != new_decl.name:
            return ref
        if ref.array.ndim != new_decl.ndim:
            raise ValueError(
                f"replacement for {new_decl.name!r} changes dimensionality "
                f"({ref.array.ndim} -> {new_decl.ndim})"
            )
        return ArrayRef(new_decl, ref.indices, ref.field_path, ref.is_write, ref.extra)

    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, LoadExpr):
            return LoadExpr(fix_ref(e.ref))
        if isinstance(e, BinOp):
            return BinOp(e.op, fix_expr(e.left), fix_expr(e.right))
        if isinstance(e, UnOp):
            return UnOp(e.op, fix_expr(e.operand))
        if isinstance(e, CallExpr):
            return CallExpr(e.func, tuple(fix_expr(a) for a in e.args), e.ctype)
        if isinstance(e, CastExpr):
            return CastExpr(e.to, fix_expr(e.operand))
        assert isinstance(e, (Const, VarRef)), f"unknown expr {type(e)}"
        return e

    def fix_stmt(stmt: Assign) -> Assign:
        target = stmt.target
        if isinstance(target, ArrayRef):
            target = fix_ref(target)
        return Assign(target, fix_expr(stmt.rhs), stmt.augmented)

    def fix_loop(loop: Loop) -> Loop:
        body = tuple(
            fix_loop(item) if isinstance(item, Loop) else fix_stmt(item)
            for item in loop.body
        )
        return Loop(loop.var, loop.lower, loop.upper, body, loop.step)

    return replace(nest, root=fix_loop(nest.root))
