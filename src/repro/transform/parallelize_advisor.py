"""Parallelization-level selection — the Parallel model's full job.

Section II-B3: "The parallel model helps the compiler to decide whether
the parallelization of a loop is possible and if so which loop level is
the best candidate for parallelization."  This pass answers both
questions with the machinery the reproduction already has:

* **possible?** — the dependence tests of :mod:`repro.ir.depend`;
* **best level?** — Eq. (1) evaluated per candidate level: worksharing
  divides the work by the thread count, but each level pays different
  parallel overheads (an inner parallel loop re-launches per outer
  iteration) and generates different false sharing (the FS model is run
  per candidate).

The verdicts reproduce a classic result the paper's kernels illustrate:
heat/DFT-style nests are cheaper to parallelize at the *outer* level
(one worksharing region, no per-row barriers, line-aligned row blocks)
even though the paper's benchmarks parallelize inner loops to provoke
false sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.costmodels import TotalCostModel
from repro.ir.depend import analyze_dependences
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.util import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class LevelScore:
    """Assessment of parallelizing one loop level."""

    var: str
    depth: int
    legal: bool
    fs_cases: int
    wall_cycles: float
    blockers: tuple[str, ...] = ()


@dataclass(frozen=True)
class ParallelizationPlan:
    """The advisor's verdict for a nest."""

    nest_name: str
    num_threads: int
    best_var: str | None
    scores: tuple[LevelScore, ...]

    @property
    def best(self) -> LevelScore:
        if self.best_var is None:
            raise ValueError(f"no legal parallelization level for {self.nest_name}")
        return next(s for s in self.scores if s.var == self.best_var)


class ParallelizationAdvisor:
    """Choose the loop level to carry the worksharing construct."""

    def __init__(self, machine: MachineConfig, mode: str = "invalidate") -> None:
        self.machine = machine
        self.model = FalseSharingModel(machine, mode=mode)
        self.total_model = TotalCostModel(machine)

    def score_level(
        self, nest: ParallelLoopNest, var: str, num_threads: int
    ) -> LevelScore:
        """Assess parallelizing the nest at loop ``var``."""
        candidate = replace(nest, parallel_var=var)
        depth = candidate.parallel_depth()
        deps = analyze_dependences(candidate)
        carried = deps.carried_by(var)
        if carried:
            return LevelScore(
                var=var,
                depth=depth,
                legal=False,
                fs_cases=0,
                wall_cycles=float("inf"),
                blockers=tuple(str(d) for d in carried),
            )
        fs = self.model.analyze(candidate, num_threads)
        breakdown = self.total_model.breakdown(
            candidate, num_threads=num_threads, fs_cases=0.0
        )
        # Wall-clock estimate: per-iteration work divides across threads;
        # runtime overheads and the FS cycles do not.
        work = (
            breakdown.machine + breakdown.cache + breakdown.tlb
            + breakdown.loop_overhead
        ) / num_threads
        wall = work + breakdown.parallel_overhead + fs.fs_cycles(self.machine)
        return LevelScore(
            var=var, depth=depth, legal=True,
            fs_cases=fs.fs_cases, wall_cycles=wall,
        )

    def plan(self, nest: ParallelLoopNest, num_threads: int) -> ParallelizationPlan:
        """Score every spine level and pick the cheapest legal one."""
        scores = tuple(
            self.score_level(nest, lp.var, num_threads) for lp in nest.loops()
        )
        legal = [s for s in scores if s.legal]
        best = min(legal, key=lambda s: s.wall_cycles) if legal else None
        logger.debug(
            "parallelization plan for %s: %s",
            nest.name, best.var if best else "none legal",
        )
        return ParallelizationPlan(
            nest_name=nest.name,
            num_threads=num_threads,
            best_var=best.var if best else None,
            scores=scores,
        )
