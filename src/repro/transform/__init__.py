"""Model-guided false-sharing mitigation (the paper's future-work section).

* :class:`ChunkSizeOptimizer` — pick the schedule chunk minimizing
  Eq. (1) total cost (cf. the paper's Fig. 2 motivation and [7]);
* :class:`PaddingAdvisor` — pad struct elements to line multiples and
  verify the cure with the model (cf. [10]);
* :func:`replace_array` — the nest-rewriting primitive both build on.
"""

from repro.transform.chunk_optimizer import (
    ChunkRecommendation,
    ChunkScore,
    ChunkSizeOptimizer,
    DEFAULT_CANDIDATES,
)
from repro.transform.padding import PaddingAdvice, PaddingAdvisor
from repro.transform.parallelize_advisor import (
    LevelScore,
    ParallelizationAdvisor,
    ParallelizationPlan,
)
from repro.transform.rewrite import replace_array
from repro.transform.unroll_advisor import (
    UnrollAdvisor,
    UnrollRecommendation,
    UnrollScore,
)

__all__ = [
    "ChunkRecommendation",
    "ChunkScore",
    "ChunkSizeOptimizer",
    "DEFAULT_CANDIDATES",
    "PaddingAdvice",
    "PaddingAdvisor",
    "LevelScore",
    "ParallelizationAdvisor",
    "ParallelizationPlan",
    "replace_array",
    "UnrollAdvisor",
    "UnrollRecommendation",
    "UnrollScore",
]
