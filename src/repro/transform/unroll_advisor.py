"""Unroll-factor selection from the processor model.

Section II-B1: "The Open64 compiler uses the processor model to make
decisions regarding the best loop unrolling factor."  This pass
reproduces that use of the model:

* unrolling amortizes the per-iteration loop overhead by the factor;
* for latency-bound bodies with no loop-carried recurrence, unrolling
  overlaps independent iterations until the resource bound takes over;
* a loop-carried recurrence (memory accumulator) is a hard serial
  floor that no unroll factor can beat;
* register pressure caps the usable factor (each unrolled copy keeps
  its loaded values live).

The advisor scores candidate factors with this model and returns the
cheapest; like Open64 it prefers the *smallest* factor within 1% of the
best to limit code growth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodels.parallel import ParallelModel
from repro.costmodels.processor import ProcessorModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig

#: Architectural FP registers available for live values (SSE, pre-AVX512).
FP_REGISTERS = 16


@dataclass(frozen=True)
class UnrollScore:
    """Modeled per-original-iteration cost at one unroll factor."""

    factor: int
    cycles_per_iter: float
    resource_bound: float
    latency_bound: float
    loop_overhead: float
    register_limited: bool


@dataclass(frozen=True)
class UnrollRecommendation:
    """The advisor's verdict and its full candidate table."""

    nest_name: str
    best_factor: int
    scores: tuple[UnrollScore, ...]

    @property
    def best(self) -> UnrollScore:
        for s in self.scores:
            if s.factor == self.best_factor:
                return s
        raise AssertionError("best factor missing")

    def speedup_percent(self) -> float:
        """Modeled gain of the recommendation over no unrolling."""
        base = next(s for s in self.scores if s.factor == 1)
        if base.cycles_per_iter == 0:
            return 0.0
        return 100.0 * (
            (base.cycles_per_iter - self.best.cycles_per_iter)
            / base.cycles_per_iter
        )


class UnrollAdvisor:
    """Pick an unroll factor for a nest's innermost loop."""

    CANDIDATES = (1, 2, 4, 8, 16)

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.processor = ProcessorModel(machine)
        self.parallel = ParallelModel(machine)

    def score(self, nest: ParallelLoopNest, factor: int) -> UnrollScore:
        """Per-original-iteration cycles at one unroll factor."""
        if factor <= 0:
            raise ValueError(f"unroll factor must be positive, got {factor}")
        est = self.processor.estimate(nest)
        recurrence = self.processor.recurrence_bound(nest)
        loop_oh = self.parallel.loop_overhead_per_iter(nest) / factor

        # Live FP values per iteration copy ≈ loads feeding FP work.
        live = est.op_counts.get("load", 0) + 1
        register_limited = live * factor > FP_REGISTERS
        spill_penalty = 0.0
        if register_limited:
            spills = live * factor - FP_REGISTERS
            spill_penalty = (
                spills * self.machine.op_latencies["store"] / factor
            )

        resource = est.resource_cycles
        if recurrence > 0:
            # Recurrence serializes successive iterations of the same
            # statement; unrolling does not shorten it.
            latency = recurrence
        else:
            # Independent iterations overlap; the effective latency per
            # original iteration shrinks with the factor.
            latency = est.latency_cycles / factor
        cycles = max(resource, latency) + loop_oh + spill_penalty
        return UnrollScore(
            factor=factor,
            cycles_per_iter=cycles,
            resource_bound=resource,
            latency_bound=latency,
            loop_overhead=loop_oh,
            register_limited=register_limited,
        )

    def recommend(
        self, nest: ParallelLoopNest, candidates: tuple[int, ...] = CANDIDATES
    ) -> UnrollRecommendation:
        """Score the candidates; prefer the smallest factor within 1%."""
        trip = nest.innermost().trip_count()
        usable = [f for f in candidates if f <= max(trip, 1)]
        scores = tuple(self.score(nest, f) for f in usable)
        best_cost = min(s.cycles_per_iter for s in scores)
        best = next(
            s for s in scores if s.cycles_per_iter <= best_cost * 1.01
        )
        return UnrollRecommendation(
            nest_name=nest.name, best_factor=best.factor, scores=scores
        )
