"""Array-padding advisor: eliminate FS by layout transformation.

The classical compile-time FS cure (Jeremiassen & Eggers, cited as [10]
by the paper) pads each element of a falsely-shared array of aggregates
out to a cache-line multiple so no two elements cohabit a line.  The
advisor uses the FS model to (a) find victim arrays, (b) construct the
padded declaration, and (c) *verify the cure* by re-running the model on
the rewritten nest — reporting the FS counts before and after alongside
the memory cost of the padding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.layout import ArrayType, CHAR, StructType, align_up
from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import ArrayDecl
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.transform.rewrite import replace_array
from repro.util import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class PaddingAdvice:
    """One padding recommendation, with model-verified effect."""

    array: str
    element_bytes: int
    padded_bytes: int
    extra_memory_bytes: int
    fs_before: int
    fs_after: int
    nest_after: ParallelLoopNest

    @property
    def pad_bytes(self) -> int:
        return self.padded_bytes - self.element_bytes

    @property
    def fs_reduction_percent(self) -> float:
        if self.fs_before == 0:
            return 0.0
        return 100.0 * (self.fs_before - self.fs_after) / self.fs_before

    def emit_c(self) -> str:
        """The transformed kernel as compilable C/OpenMP source."""
        from repro.ir.emit import emit_nest

        return emit_nest(self.nest_after)


class PaddingAdvisor:
    """Recommend and verify element padding for falsely-shared arrays.

    Only arrays of *structs* are padded (padding a plain scalar array
    changes its indexing semantics; for those the chunk-size optimizer
    is the right tool — the advisor says so in its log).
    """

    def __init__(self, machine: MachineConfig, mode: str = "invalidate") -> None:
        self.machine = machine
        self.model = FalseSharingModel(machine, mode=mode)

    def padded_struct(self, struct: StructType) -> StructType:
        """The struct padded out to the next cache-line multiple."""
        line = self.machine.line_size
        target = align_up(struct.size, line)
        pad = target - struct.size
        if pad == 0:
            return struct
        members = [(f.name, f.ctype) for f in struct.fields]
        members.append(("_fs_pad", ArrayType(CHAR, pad)))
        return StructType.create(f"{struct.name}_padded", members)

    def advise(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        min_fs_share: float = 0.05,
    ) -> list[PaddingAdvice]:
        """Produce verified padding advice for a nest.

        Parameters
        ----------
        min_fs_share:
            Arrays below this share of total FS cases are ignored.
        """
        baseline = self.model.analyze(nest, num_threads)
        if baseline.fs_cases == 0:
            return []
        advices: list[PaddingAdvice] = []
        arrays = {a.name: a for a in nest.arrays()}
        for victim in baseline.victim_arrays():
            if victim.fs_cases < baseline.fs_cases * min_fs_share:
                continue
            decl = arrays.get(victim.name)
            if decl is None:
                continue
            if not isinstance(decl.element, StructType):
                logger.info(
                    "victim %r is a scalar array; padding does not apply — "
                    "consider the chunk-size optimizer instead",
                    victim.name,
                )
                continue
            padded_elem = self.padded_struct(decl.element)
            if padded_elem.size == decl.element.size:
                continue
            padded_decl = ArrayDecl(decl.name, padded_elem, decl.dims)
            new_nest = replace_array(nest, padded_decl)
            after = self.model.analyze(new_nest, num_threads)
            advices.append(
                PaddingAdvice(
                    array=decl.name,
                    element_bytes=decl.element.size,
                    padded_bytes=padded_elem.size,
                    extra_memory_bytes=(
                        padded_decl.size_bytes() - decl.size_bytes()
                    ),
                    fs_before=baseline.fs_cases,
                    fs_after=after.fs_cases,
                    nest_after=new_nest,
                )
            )
        return advices
