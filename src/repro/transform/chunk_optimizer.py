"""Model-guided chunk-size selection.

The paper closes by noting the model "will be helpful for both
programmers and compilers to choose the optimal chunk size for OpenMP
loops".  This pass implements that use: it scores candidate chunk sizes
with Eq. (1) — non-FS cost from the Open64-style models plus
``FalseSharing_c`` from the FS model (optionally via the fast
linear-regression predictor) — and recommends the cheapest.

The mitigation extension bench validates recommendations against the
simulator (the recommendation should land within a few percent of the
simulated optimum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodels import TotalCostModel
from repro.ir.loops import ParallelLoopNest
from repro.machine import MachineConfig
from repro.model.fsmodel import FalseSharingModel
from repro.model.regression import FalseSharingPredictor
from repro.model.schedule import static_chunk_positions
from repro.util import get_logger

logger = get_logger(__name__)

#: Default chunk candidates, pruned against the loop's trip count.
DEFAULT_CANDIDATES = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128)


@dataclass(frozen=True)
class ChunkScore:
    """Predicted cost of one chunk-size candidate.

    ``imbalance`` is the ratio of the busiest thread's iteration share to
    the perfectly balanced share — large chunks on short loops starve
    some threads, and wall-clock time follows the busiest thread.
    """

    chunk: int
    fs_cases: float
    fs_cycles: float
    base_cycles: float
    imbalance: float = 1.0

    @property
    def total_cycles(self) -> float:
        return (self.base_cycles + self.fs_cycles) * self.imbalance


@dataclass(frozen=True)
class ChunkRecommendation:
    """The optimizer's verdict plus the full candidate table."""

    nest_name: str
    num_threads: int
    best_chunk: int
    scores: tuple[ChunkScore, ...]

    @property
    def best(self) -> ChunkScore:
        for s in self.scores:
            if s.chunk == self.best_chunk:
                return s
        raise AssertionError("best chunk missing from scores")

    def improvement_percent(self, baseline_chunk: int = 1) -> float:
        """Predicted time saving of the best chunk vs a baseline chunk."""
        base = next((s for s in self.scores if s.chunk == baseline_chunk), None)
        if base is None or base.total_cycles == 0:
            return 0.0
        return 100.0 * (base.total_cycles - self.best.total_cycles) / base.total_cycles


class ChunkSizeOptimizer:
    """Pick the chunk size minimizing Eq. (1) total cost.

    Parameters
    ----------
    machine:
        Target machine.
    use_predictor:
        When True (default) FS counts come from the linear-regression
        predictor over ``predictor_runs`` chunk runs — the compile-time-
        friendly mode; otherwise the full model is evaluated per
        candidate.
    predictor_runs:
        Chunk runs sampled per candidate in predictor mode.
    """

    def __init__(
        self,
        machine: MachineConfig,
        use_predictor: bool = True,
        predictor_runs: int = 10,
        mode: str = "invalidate",
    ) -> None:
        self.machine = machine
        self.use_predictor = use_predictor
        self.predictor_runs = predictor_runs
        self.model = FalseSharingModel(machine, mode=mode)
        self.total_model = TotalCostModel(machine)

    def score(
        self, nest: ParallelLoopNest, num_threads: int, chunk: int
    ) -> ChunkScore:
        """Score one candidate chunk size."""
        candidate = nest.with_chunk(chunk)
        if self.use_predictor:
            predictor = FalseSharingPredictor(self.model, n_runs=self.predictor_runs)
            pred = predictor.predict(candidate, num_threads)
            fs_cases = pred.predicted_fs_cases
            prefix = pred.prefix_result
            total = max(prefix.fs_cases, 1)
            fs_cycles = fs_cases * (
                (prefix.fs_read_cases / total) * self.machine.fs_read_penalty_cycles
                + (prefix.fs_write_cases / total) * self.machine.fs_write_penalty_cycles
            )
        else:
            result = self.model.analyze(candidate, num_threads)
            fs_cases = float(result.fs_cases)
            fs_cycles = result.fs_cycles(self.machine)
        base = self.total_model.total_cycles(candidate, num_threads, fs_cases=0.0)
        return ChunkScore(
            chunk=chunk,
            fs_cases=fs_cases,
            fs_cycles=fs_cycles,
            base_cycles=base,
            imbalance=self._imbalance(candidate, num_threads, chunk),
        )

    @staticmethod
    def _imbalance(nest: ParallelLoopNest, num_threads: int, chunk: int) -> float:
        """Busiest thread's share over the balanced share (≥ 1)."""
        trip = nest.trip_counts()[nest.parallel_depth()]
        if trip == 0:
            return 1.0
        busiest = max(
            len(static_chunk_positions(trip, num_threads, chunk, t))
            for t in range(num_threads)
        )
        return busiest / (trip / num_threads)

    def recommend(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    ) -> ChunkRecommendation:
        """Score all candidates and return the cheapest."""
        trip = nest.trip_counts()[nest.parallel_depth()]
        usable = [c for c in candidates if c * num_threads <= trip]
        if not usable:
            usable = [max(trip // num_threads, 1)]
        scores = tuple(self.score(nest, num_threads, c) for c in usable)
        best = min(scores, key=lambda s: s.total_cycles)
        logger.debug(
            "chunk recommendation for %s T=%d: %d (of %s)",
            nest.name, num_threads, best.chunk, usable,
        )
        return ChunkRecommendation(
            nest_name=nest.name,
            num_threads=num_threads,
            best_chunk=best.chunk,
            scores=scores,
        )
