"""Service health state machine: ``starting → ready → degraded → draining``.

PR 7's ``/healthz`` was a constant — useful for "is the port open",
useless for "should the load balancer send traffic here".  This module
gives the daemon a real state machine:

* ``starting`` — journal replay / recovery still running; admission
  refused (503) because job state is not yet authoritative.
* ``ready`` — normal operation.
* ``degraded`` — the supervisor or queue flagged trouble (journal
  write failures, repeated worker restarts, queue depth past the
  configured ceiling).  Existing jobs keep running and results keep
  streaming, but *new* admission is shed with 503 + ``Retry-After``
  so the process backs pressure up instead of falling over.
* ``draining`` — SIGTERM received; no admission, finish what's queued.

States are derived, not stored: ``draining`` and ``starting`` are
explicit phases, while ``degraded`` is simply "any degradation reason
currently set".  Reasons are named strings (``journal-errors``,
``queue-pressure``, ``worker-restarts``, …) so ``/healthz`` can say
*why* and operators can grep the runbook in docs/SERVICE.md.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

__all__ = ["HealthMonitor", "STARTING", "READY", "DEGRADED", "DRAINING"]

STARTING = "starting"
READY = "ready"
DEGRADED = "degraded"
DRAINING = "draining"

#: States that should answer HTTP 200 on /healthz.  ``degraded`` stays
#: 200 because the instance is still serving existing jobs — shedding
#: happens at admission, not at the health probe.
SERVING_STATES = (READY, DEGRADED)


class HealthMonitor:
    """Thread-safe health state shared by queue, supervisor and API."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phase = STARTING
        self._reasons: dict[str, str] = {}
        self._since = time.time()

    # -- phase transitions ---------------------------------------------------

    def mark_ready(self) -> None:
        with self._lock:
            if self._phase == STARTING:
                self._phase = READY
                self._since = time.time()

    def mark_draining(self) -> None:
        with self._lock:
            if self._phase != DRAINING:
                self._phase = DRAINING
                self._since = time.time()

    # -- degradation reasons -------------------------------------------------

    def set_degraded(self, reason: str, detail: str = "") -> None:
        """Flag a named degradation reason (idempotent)."""
        with self._lock:
            self._reasons[reason] = detail

    def clear_degraded(self, reason: str) -> None:
        with self._lock:
            self._reasons.pop(reason, None)

    # -- reads ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if self._phase in (STARTING, DRAINING):
                return self._phase
            return DEGRADED if self._reasons else READY

    @property
    def serving(self) -> bool:
        return self.state in SERVING_STATES

    @property
    def accepting(self) -> bool:
        """Whether *new* jobs should be admitted right now."""
        return self.state == READY

    def reasons(self) -> Mapping[str, str]:
        with self._lock:
            return dict(self._reasons)

    def doc(self) -> dict:
        """The /healthz body fragment for this monitor."""
        with self._lock:
            state = (
                self._phase
                if self._phase in (STARTING, DRAINING)
                else (DEGRADED if self._reasons else READY)
            )
            return {
                "status": state,
                "since": self._since,
                "reasons": [
                    {"reason": k, "detail": v}
                    for k, v in sorted(self._reasons.items())
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HealthMonitor(state={self.state!r})"
