"""Multi-tenancy: API keys, admission quotas and token-bucket rates.

A *tenant* is one API-key-holding consumer of the analysis service.
Tenants are declared in a JSON file (``repro-fs serve
--tenants-file``)::

    {"tenants": [
        {"name": "alice", "api_key": "sk-alice",
         "max_queued_jobs": 4, "max_cells_per_job": 2000,
         "max_steps_per_job": 50000000,
         "rate_per_s": 5.0, "burst": 10},
        {"name": "public", "api_key": null}
    ]}

A tenant with ``"api_key": null`` accepts unauthenticated requests —
ship exactly one of those (or none, to require keys for everything).
Without a tenants file the service runs single-tenant with the
:func:`TenantRegistry.default` ``public`` tenant.

Admission control happens in :meth:`repro.service.queue.JobQueue.submit`
against three per-tenant guards, each surfacing a stable
``REPRO-R10x`` resource error (HTTP 429):

* ``max_queued_jobs`` — queued + running jobs (``REPRO-R101``);
* ``rate_per_s``/``burst`` — a :class:`TokenBucket` per tenant
  (``REPRO-R102``);
* ``max_cells_per_job`` / ``max_steps_per_job`` — grid size and the
  :func:`repro.resilience.budget.estimate_cost` pre-run step estimate
  summed over the grid (``REPRO-R103``), so an oversized sweep is
  rejected in microseconds, before any cell runs.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.resilience.errors import UsageError

__all__ = ["TenantConfig", "TenantRegistry", "TokenBucket"]

#: Ceilings applied when a tenants file omits a field (and used by the
#: key-less default tenant).
DEFAULT_MAX_QUEUED_JOBS = 16
DEFAULT_MAX_CELLS_PER_JOB = 100_000
DEFAULT_RATE_PER_S = 20.0
DEFAULT_BURST = 40


class TokenBucket:
    """Classic token-bucket rate limiter (thread-safe, monotonic clock).

    ``rate_per_s`` tokens accrue per second up to ``burst``; each
    admission takes one.  ``clock`` is injectable for tests.

    >>> bucket = TokenBucket(rate_per_s=1.0, burst=2)
    >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
    (True, True, False)
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock=time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise UsageError("rate_per_s must be positive")
        if burst < 1:
            raise UsageError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate_per_s
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (racy; for metrics/diagnostics only)."""
        return self._tokens


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity and admission limits."""

    name: str
    #: ``None`` makes this the key-less tenant serving unauthenticated
    #: requests; otherwise the exact ``X-Api-Key`` value.
    api_key: str | None = None
    max_queued_jobs: int = DEFAULT_MAX_QUEUED_JOBS
    max_cells_per_job: int = DEFAULT_MAX_CELLS_PER_JOB
    #: Cap on the summed pre-run lockstep-step estimate of a job's grid
    #: (``None`` = unlimited).  Computed by ``estimate_cost`` — pure
    #: trip-count arithmetic, no model execution.
    max_steps_per_job: int | None = None
    rate_per_s: float = DEFAULT_RATE_PER_S
    burst: int = DEFAULT_BURST

    def __post_init__(self) -> None:
        if not self.name:
            raise UsageError("tenant name must be non-empty",
                             code="REPRO-U102")
        if self.max_queued_jobs < 1 or self.max_cells_per_job < 1:
            raise UsageError(
                f"tenant {self.name!r}: quotas must be >= 1",
                code="REPRO-U102",
            )
        if self.max_steps_per_job is not None and self.max_steps_per_job < 1:
            raise UsageError(
                f"tenant {self.name!r}: max_steps_per_job must be >= 1",
                code="REPRO-U102",
            )

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TenantConfig":
        if not isinstance(doc, Mapping):
            raise UsageError(
                f"tenant entry must be an object, got {type(doc).__name__}",
                code="REPRO-U102",
            )
        unknown = set(doc) - {
            "name", "api_key", "max_queued_jobs", "max_cells_per_job",
            "max_steps_per_job", "rate_per_s", "burst",
        }
        if unknown:
            raise UsageError(
                f"tenant entry has unknown fields: {sorted(unknown)}",
                code="REPRO-U102",
            )
        try:
            return cls(
                name=str(doc.get("name", "")),
                api_key=(
                    None if doc.get("api_key") is None
                    else str(doc["api_key"])
                ),
                max_queued_jobs=int(
                    doc.get("max_queued_jobs", DEFAULT_MAX_QUEUED_JOBS)
                ),
                max_cells_per_job=int(
                    doc.get("max_cells_per_job", DEFAULT_MAX_CELLS_PER_JOB)
                ),
                max_steps_per_job=(
                    None if doc.get("max_steps_per_job") is None
                    else int(doc["max_steps_per_job"])
                ),
                rate_per_s=float(doc.get("rate_per_s", DEFAULT_RATE_PER_S)),
                burst=int(doc.get("burst", DEFAULT_BURST)),
            )
        except (TypeError, ValueError) as exc:
            raise UsageError(
                f"malformed tenant entry {doc.get('name', '?')!r}: {exc}",
                code="REPRO-U102",
            ) from exc


class TenantRegistry:
    """API-key → tenant lookup plus per-tenant rate buckets."""

    def __init__(self, tenants: Iterable[TenantConfig]) -> None:
        self.tenants: dict[str, TenantConfig] = {}
        self._by_key: dict[str, TenantConfig] = {}
        self._keyless: TenantConfig | None = None
        for tenant in tenants:
            if tenant.name in self.tenants:
                raise UsageError(
                    f"duplicate tenant name {tenant.name!r}",
                    code="REPRO-U102",
                )
            self.tenants[tenant.name] = tenant
            if tenant.api_key is None:
                if self._keyless is not None:
                    raise UsageError(
                        "at most one tenant may omit api_key "
                        f"({self._keyless.name!r} and {tenant.name!r} both do)",
                        code="REPRO-U102",
                    )
                self._keyless = tenant
            else:
                if tenant.api_key in self._by_key:
                    raise UsageError(
                        f"duplicate api_key across tenants "
                        f"({tenant.name!r})",
                        code="REPRO-U102",
                    )
                self._by_key[tenant.api_key] = tenant
        if not self.tenants:
            raise UsageError("tenants file declares no tenants",
                             code="REPRO-U102")
        self._buckets: dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_per_s, t.burst)
            for t in self.tenants.values()
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def default(cls) -> "TenantRegistry":
        """Single key-less ``public`` tenant (no ``--tenants-file``)."""
        return cls([TenantConfig(name="public", api_key=None)])

    @classmethod
    def from_file(cls, path: str | Path) -> "TenantRegistry":
        """Load a tenants JSON file; malformed input is ``REPRO-U102``."""
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise UsageError(
                f"cannot read tenants file {path}: {exc}",
                code="REPRO-U102",
            ) from exc
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise UsageError(
                f"tenants file {path} is not valid JSON: {exc}",
                code="REPRO-U102",
            ) from exc
        if not isinstance(doc, dict) or not isinstance(
            doc.get("tenants"), list
        ):
            raise UsageError(
                f"tenants file {path} must be an object with a "
                "'tenants' array",
                code="REPRO-U102",
            )
        return cls(TenantConfig.from_dict(t) for t in doc["tenants"])

    # -- lookup --------------------------------------------------------------

    def authenticate(self, api_key: str | None) -> TenantConfig | None:
        """The tenant for ``api_key`` (``None`` = no key supplied),
        or ``None`` when the key is unknown / keys are required."""
        if api_key:
            return self._by_key.get(api_key)
        return self._keyless

    def bucket(self, tenant: TenantConfig) -> TokenBucket:
        """The tenant's admission-rate bucket."""
        return self._buckets[tenant.name]

    def __len__(self) -> int:
        return len(self.tenants)
