"""The HTTP/JSON surface of the analysis service.

Endpoints (all JSON unless noted)::

    GET    /healthz                     health state machine document
    GET    /metrics                     Prometheus text exposition
    POST   /v1/jobs                     submit a job  → 202 {id, ...}
    GET    /v1/jobs                     this tenant's jobs
    GET    /v1/jobs/{id}                poll one job's status
    GET    /v1/jobs/{id}/results        all rows so far (JSON array)
    GET    /v1/jobs/{id}/results?stream=1   live NDJSON (chunked)
    GET    /v1/jobs/{id}/results?stream=1&from=N   resume from row N
    DELETE /v1/jobs/{id}                cancel  → 202

``/healthz`` reports the ``starting → ready → degraded → draining``
state machine (:mod:`repro.service.health`): 200 while the instance
serves traffic (``ready``/``degraded``/``draining`` — existing streams
keep flowing through a drain), 503 + ``Retry-After`` during
``starting`` (journal replay in progress; job state not yet
authoritative).  Back-pressure responses (429 rate limits, 503
shed/drain) all carry ``Retry-After``.

``?from=N`` on the results endpoint skips the first N rows — row
offsets are stable across daemon crashes (see
:mod:`repro.service.journal`), so a client that saw N rows before a
disconnect resumes with ``?from=N`` and receives every row exactly
once.

Authentication: ``X-Api-Key: <key>`` or ``Authorization: Bearer
<key>``; requests without a key land on the key-less tenant when the
registry has one, else 401.  Tenants are isolated — another tenant's
job id answers 404, indistinguishable from a missing one.

Errors are structured: every non-2xx body is ``{"error": {"code":
"REPRO-...", "message": ...}}``, and :data:`STATUS_BY_EXIT` maps the
error taxonomy's process exit codes onto HTTP statuses — usage (2) →
400, frontend (3) → 422, model/resource (4) → 429, engine (5) → 503 —
so a client can branch on the same stable codes the CLI exits with.

Built entirely on :mod:`http.server` (``ThreadingHTTPServer``); the
streaming endpoint speaks HTTP/1.1 chunked transfer encoding by hand
so results flow while the sweep runs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs import get_registry, to_prometheus
from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.resilience.errors import ReproError
from repro.service.queue import JobQueue, JobRequest
from repro.service.tenants import TenantConfig
from repro.util import get_logger

__all__ = ["STATUS_BY_EXIT", "ServiceHandler", "ServiceServer", "make_server"]

logger = get_logger(__name__)

#: Error-taxonomy exit code → HTTP status.  Mirrors
#: ``repro.resilience.errors.EXIT_CODES``: bad requests are the
#: client's fault (400), kernels that fail the frontend are
#: unprocessable (422), quota/budget/model-infeasibility exhaustion is
#: back-pressure (429), engine/drain conditions are transient server
#: state (503).
STATUS_BY_EXIT = {2: 400, 3: 422, 4: 429, 5: 503}

_MAX_BODY_BYTES = 4 << 20  # 4 MiB of kernel source is plenty

#: Default Retry-After (seconds) when the error context names none.
_RETRY_AFTER_DEFAULT = {429: 1, 503: 5}


class ServiceServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the queue + drain flag."""

    daemon_threads = True

    def __init__(self, addr, queue: JobQueue):
        super().__init__(addr, ServiceHandler)
        self.queue = queue
        #: Set by the daemon when SIGTERM lands; streaming handlers
        #: poll it so long-poll readers release during the drain.
        self.draining = threading.Event()


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on the server/queue."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-fs-service"
    server: ServiceServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # quieter than stderr
        logger.debug("%s %s", self.address_string(), fmt % args)

    @property
    def queue(self) -> JobQueue:
        return self.server.queue

    def _observe(self, method: str, route: str, status: int) -> None:
        reg = get_registry()
        reg.counter(
            "service_requests_total", "HTTP requests by route and status"
        ).labels(method=method, route=route, status=str(status)).inc()

    def _send_json(
        self, status: int, doc: Any, route: str, method: str,
        headers: dict | None = None,
    ) -> None:
        body = (json.dumps(doc, indent=1) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        self._observe(method, route, status)

    def _send_error_doc(
        self, status: int, code: str, message: str, route: str, method: str,
        extra: dict | None = None,
    ) -> None:
        err = {"code": code, "message": message}
        if extra:
            err.update(extra)
        self._send_json(status, {"error": err}, route, method)

    def _send_repro_error(
        self, exc: ReproError, route: str, method: str
    ) -> None:
        status = STATUS_BY_EXIT.get(exc.exit_code, 500)
        doc = exc.to_dict()
        headers = None
        if status in _RETRY_AFTER_DEFAULT:
            # Back-pressure responses tell the client when to come
            # back; the error context can carry a site-specific hint.
            context = getattr(exc, "context", None) or {}
            retry_s = context.get(
                "retry_after_s", _RETRY_AFTER_DEFAULT[status]
            )
            try:
                retry_s = max(1, int(float(retry_s) + 0.999))
            except (TypeError, ValueError):
                retry_s = _RETRY_AFTER_DEFAULT[status]
            headers = {"Retry-After": str(retry_s)}
        self._send_json(status, {"error": doc}, route, method,
                        headers=headers)

    def _tenant(self) -> TenantConfig | None:
        key = self.headers.get("X-Api-Key")
        if not key:
            auth = self.headers.get("Authorization", "")
            if auth.startswith("Bearer "):
                key = auth[len("Bearer "):].strip()
        return self.queue.tenants.authenticate(key or None)

    def _auth(self, route: str, method: str) -> TenantConfig | None:
        tenant = self._tenant()
        if tenant is None:
            self._send_error_doc(
                401, "REPRO-U101",
                "missing or unknown API key (X-Api-Key / Bearer)",
                route, method,
            )
        return tenant

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            return None
        return self.rfile.read(length) if length else b""

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._healthz()
        elif url.path == "/metrics":
            self._metrics()
        elif parts[:1] == ["v1"] and parts[1:2] == ["jobs"]:
            tenant = self._auth("/v1/jobs", "GET")
            if tenant is None:
                return
            if len(parts) == 2:
                self._list_jobs(tenant)
            elif len(parts) == 3:
                self._job_status(tenant, parts[2])
            elif len(parts) == 4 and parts[3] == "results":
                q = parse_qs(url.query)
                stream = q.get("stream", ["0"])[0] not in ("0", "", "false")
                try:
                    start = max(0, int(q.get("from", ["0"])[0]))
                except ValueError:
                    self._send_error_doc(
                        400, "REPRO-U101",
                        "query parameter 'from' must be an integer",
                        "/v1/jobs/{id}/results", "GET",
                    )
                    return
                self._job_results(tenant, parts[2], stream=stream,
                                  start=start)
            else:
                self._send_error_doc(
                    404, "REPRO-U101", f"no such route {url.path!r}",
                    "/v1/jobs", "GET",
                )
        else:
            self._send_error_doc(
                404, "REPRO-U101", f"no such route {url.path!r}",
                url.path, "GET",
            )

    def do_POST(self) -> None:  # noqa: N802
        url = urlsplit(self.path)
        if url.path != "/v1/jobs":
            self._send_error_doc(
                404, "REPRO-U101", f"no such route {url.path!r}",
                url.path, "POST",
            )
            return
        tenant = self._auth("/v1/jobs", "POST")
        if tenant is None:
            return
        raw = self._read_body()
        if raw is None:
            self._send_error_doc(
                400, "REPRO-U101",
                f"request body exceeds {_MAX_BODY_BYTES} bytes",
                "/v1/jobs", "POST",
            )
            return
        try:
            doc = json.loads(raw.decode("utf-8") or "null")
        except ValueError as exc:
            self._send_error_doc(
                400, "REPRO-U101", f"request body is not valid JSON: {exc}",
                "/v1/jobs", "POST",
            )
            return
        try:
            request = JobRequest.from_dict(doc)
            job = self.queue.submit(tenant, request)
        except ReproError as exc:
            self._send_repro_error(exc, "/v1/jobs", "POST")
            return
        self._send_json(202, {
            "id": job.id,
            "status": job.status,
            "cells": job.cells_total,
            "links": {
                "self": f"/v1/jobs/{job.id}",
                "results": f"/v1/jobs/{job.id}/results",
                "stream": f"/v1/jobs/{job.id}/results?stream=1",
            },
        }, "/v1/jobs", "POST")

    def do_DELETE(self) -> None:  # noqa: N802
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) != 3 or parts[:2] != ["v1", "jobs"]:
            self._send_error_doc(
                404, "REPRO-U101", f"no such route {url.path!r}",
                url.path, "DELETE",
            )
            return
        tenant = self._auth("/v1/jobs/{id}", "DELETE")
        if tenant is None:
            return
        job = self.queue.cancel(parts[2], tenant)
        if job is None:
            self._send_error_doc(
                404, "REPRO-U101", f"no job {parts[2]!r} for this tenant",
                "/v1/jobs/{id}", "DELETE",
            )
            return
        self._send_json(
            202, {"id": job.id, "status": job.status},
            "/v1/jobs/{id}", "DELETE",
        )

    # -- handlers ------------------------------------------------------------

    def _healthz(self) -> None:
        """The health state machine document.

        200 whenever the instance serves traffic — including
        ``degraded`` (shedding happens at admission, not here) and
        ``draining`` (existing streams must keep flowing) — and 503 +
        ``Retry-After`` only for ``starting``, when journal replay has
        not yet made job state authoritative.
        """
        doc = self.queue.health.doc()
        if self.server.draining.is_set():
            doc["status"] = "draining"
        doc.update({
            "tenants": len(self.queue.tenants),
            "queued": sum(
                1 for j in self.queue.jobs() if j.status == "queued"
            ),
            "running": sum(
                1 for j in self.queue.jobs() if j.status == "running"
            ),
        })
        if doc["status"] == "starting":
            self._send_json(503, doc, "/healthz", "GET",
                            headers={"Retry-After": "1"})
        else:
            self._send_json(200, doc, "/healthz", "GET")

    def _metrics(self) -> None:
        body = to_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", _PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
        self._observe("GET", "/metrics", 200)

    def _list_jobs(self, tenant: TenantConfig) -> None:
        docs = [
            j.status_doc() for j in self.queue.jobs()
            if j.tenant == tenant.name
        ]
        docs.sort(key=lambda d: d["created_at"])
        self._send_json(200, {"jobs": docs}, "/v1/jobs", "GET")

    def _job_status(self, tenant: TenantConfig, job_id: str) -> None:
        job = self.queue.get(job_id, tenant)
        if job is None:
            self._send_error_doc(
                404, "REPRO-U101", f"no job {job_id!r} for this tenant",
                "/v1/jobs/{id}", "GET",
            )
            return
        self._send_json(200, job.status_doc(), "/v1/jobs/{id}", "GET")

    def _job_results(
        self, tenant: TenantConfig, job_id: str, stream: bool,
        start: int = 0,
    ) -> None:
        job = self.queue.get(job_id, tenant)
        if job is None:
            self._send_error_doc(
                404, "REPRO-U101", f"no job {job_id!r} for this tenant",
                "/v1/jobs/{id}/results", "GET",
            )
            return
        if not stream:
            self._send_json(
                200, {"id": job.id, "status": job.status,
                      "from": start, "rows": job.rows()[start:]},
                "/v1/jobs/{id}/results", "GET",
            )
            return
        # Live NDJSON: chunked transfer, one JSON object per line,
        # following the job until it reaches a terminal state (or the
        # server starts draining).
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        sent = 0
        try:
            for row in job.stream(
                should_abort=self.server.draining.is_set, start=start
            ):
                line = (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
                self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
                self.wfile.write(line + b"\r\n")
                self.wfile.flush()
                sent += 1
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            logger.debug("stream for job %s dropped after %d rows",
                         job.id, sent)
            self.close_connection = True
        self._observe("GET", "/v1/jobs/{id}/results?stream", 200)


def make_server(host: str, port: int, queue: JobQueue) -> ServiceServer:
    """Bind a :class:`ServiceServer`; ``port=0`` picks an ephemeral one."""
    return ServiceServer((host, port), queue)
