"""The multi-tenant job queue feeding one shared analysis engine.

Submission flow (:meth:`JobQueue.submit`)::

    shed check (health) ──► rate bucket ──► queued-jobs quota ──►
    parse kernels ──► grid size + step estimate vs tenant budget ──►
    journal admit record ──► ServiceJob(queued) ──► worker

Admission rejections raise structured resource errors (``REPRO-R101``
rate/quota, ``REPRO-R102`` token bucket, ``REPRO-R103`` oversized job)
that the HTTP layer maps to 429; a degraded/overloaded service sheds
with ``REPRO-E106`` (503 + ``Retry-After``); frontend errors from the
submit-time parse keep their ``REPRO-F*`` codes and map to 422.
Nothing about a rejected job ever reaches the engine.

Execution: ``concurrency`` worker threads pull queued jobs and run
their sweep grids through the **shared** :class:`repro.engine.Engine`
in small batches (``batch_cells`` cells per call, serialized by a
lock).  Sharing one engine means one result store: a cell any tenant
ever computed is a warm cache hit for every other tenant, and batching
keeps cancellation (client ``DELETE`` or SIGTERM drain) responsive —
at most one batch of cells is in flight per job when the stop signal
lands.

Durability: when a :class:`~repro.service.journal.Journal` is
configured, every admission / batch of rows / cancellation / crash
count / terminal state is appended to the write-ahead journal *before*
it becomes visible to streaming clients (journal-then-publish).  Row
offsets are therefore stable across a crash: a SIGKILLed daemon
restarted with the same ``--journal-dir`` re-admits unfinished jobs
via :meth:`recover`, resumes mid-sweep from the last durable batch
(already-completed cells are filtered out and their rows restored
verbatim), and a client resuming its NDJSON stream with ``?from=N``
sees every row exactly once.  A journal that cannot write degrades the
service (health → ``degraded``, admission shed) instead of failing
jobs.

Self-healing: a supervisor thread restarts dead worker threads
(``service_worker_restarts_total``), reopens an engine pool that was
closed outside a drain, and watches worker heartbeats.  Jobs that
repeatedly crash worker *processes* (``REPRO-E102`` outcomes) are
quarantined after ``quarantine_after`` crashes with a terminal
``REPRO-E105`` poison-job diagnostic — the pool survives, other
tenants keep streaming.

Drain (:meth:`JobQueue.drain`): stop admitting, let the in-flight
batch finish, park running jobs back in the queue, persist queue state
and join the workers.  With a journal the journal *is* the persistent
state; without one the legacy state file (:meth:`save_state` /
:meth:`load_state`) keeps working exactly as before.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.engine import Engine
from repro.machine import paper_machine
from repro.model.whatif import SweepPoint, WhatIfSweep
from repro.obs import get_registry, span
from repro.resilience.budget import Budget, estimate_cost
from repro.resilience.errors import (
    CircuitOpenError,
    JobCancelledError,
    PoisonJobError,
    QuotaExceededError,
    ReproError,
    ServiceOverloadedError,
    UsageError,
)
from repro.resilience.faults import fault_point
from repro.resilience.partial import FailurePolicy, FailureReport
from repro.service.health import HealthMonitor
from repro.service.journal import Journal
from repro.service.tenants import TenantConfig, TenantRegistry
from repro.util import get_logger

__all__ = ["JobQueue", "JobRequest", "ServiceJob", "STATUSES"]

logger = get_logger(__name__)

#: Job lifecycle states.  queued → running → {done, failed, cancelled};
#: a drain parks running jobs back at queued.
STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Hard ceiling on grid-axis lengths, independent of tenant quotas —
#: keeps a malformed request from allocating an absurd grid before the
#: per-tenant cell quota is even consulted.
_MAX_AXIS = 256

_QUEUE_STATE_VERSION = 1


def _usage(message: str) -> UsageError:
    return UsageError(message, code="REPRO-U101")


@dataclass(frozen=True)
class JobRequest:
    """One submitted analysis: kernel source + machine/schedule grid.

    The wire form (``POST /v1/jobs`` body) is :meth:`from_dict` /
    :meth:`to_dict`; the same round trip persists queued jobs across a
    daemon restart.
    """

    source: str
    filename: str = "<job>"
    threads: tuple[int, ...] = (2, 4, 8)
    chunks: tuple[int, ...] = (1, 2, 4, 8, 16)
    cores: int = 48
    mode: str = "invalidate"
    #: ``True`` requests the exact model per cell (subject to budgets),
    #: ``False`` the regression predictor.
    exact: bool = False
    predictor_runs: int = 8
    macros: Mapping[str, int] = field(default_factory=dict)
    deadline_s: float | None = None
    max_iters: int | None = None
    max_failure_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.source or not self.source.strip():
            raise _usage("request carries no kernel source")
        for axis_name, axis in (("threads", self.threads),
                                ("chunks", self.chunks)):
            if not axis:
                raise _usage(f"{axis_name} list must be non-empty")
            if len(axis) > _MAX_AXIS:
                raise _usage(
                    f"{axis_name} list longer than {_MAX_AXIS} entries"
                )
            if any(v < 1 for v in axis):
                raise _usage(f"{axis_name} values must be >= 1")
        if self.cores < 1:
            raise _usage("cores must be >= 1")
        if self.mode not in ("invalidate", "literal"):
            raise _usage(f"unknown mode {self.mode!r}")
        if self.predictor_runs < 1:
            raise _usage("predictor_runs must be >= 1")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise _usage("max_failure_rate must be in [0, 1]")

    def budget(self) -> Budget | None:
        """The per-cell resource budget this request asks for."""
        if self.deadline_s is None and self.max_iters is None:
            return None
        return Budget(deadline_s=self.deadline_s, max_steps=self.max_iters)

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "source": self.source,
            "filename": self.filename,
            "threads": list(self.threads),
            "chunks": list(self.chunks),
            "cores": self.cores,
            "mode": self.mode,
            "exact": self.exact,
            "predictor_runs": self.predictor_runs,
        }
        if self.macros:
            doc["macros"] = dict(self.macros)
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.max_iters is not None:
            doc["max_iters"] = self.max_iters
        if self.max_failure_rate != 1.0:
            doc["max_failure_rate"] = self.max_failure_rate
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobRequest":
        """Validate a wire/persisted request (``REPRO-U101`` on junk)."""
        if not isinstance(doc, Mapping):
            raise _usage(
                f"request body must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        unknown = set(doc) - {
            "source", "filename", "threads", "chunks", "cores", "mode",
            "exact", "predictor_runs", "macros", "deadline_s",
            "max_iters", "max_failure_rate",
        }
        if unknown:
            raise _usage(f"request has unknown fields: {sorted(unknown)}")
        if not isinstance(doc.get("source"), str):
            raise _usage("request field 'source' must be a string")
        macros = doc.get("macros", {})
        if not isinstance(macros, Mapping):
            raise _usage("request field 'macros' must be an object")
        try:
            return cls(
                source=doc["source"],
                filename=str(doc.get("filename", "<job>")),
                threads=tuple(int(t) for t in doc.get("threads", (2, 4, 8))),
                chunks=tuple(
                    int(c) for c in doc.get("chunks", (1, 2, 4, 8, 16))
                ),
                cores=int(doc.get("cores", 48)),
                mode=str(doc.get("mode", "invalidate")),
                exact=bool(doc.get("exact", False)),
                predictor_runs=int(doc.get("predictor_runs", 8)),
                macros={str(k): int(v) for k, v in macros.items()},
                deadline_s=(
                    None if doc.get("deadline_s") is None
                    else float(doc["deadline_s"])
                ),
                max_iters=(
                    None if doc.get("max_iters") is None
                    else int(doc["max_iters"])
                ),
                max_failure_rate=float(doc.get("max_failure_rate", 1.0)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ReproError):
                raise
            raise _usage(f"malformed request field: {exc}") from exc


def _cell_key(row: Mapping[str, Any]) -> tuple | None:
    """The grid-cell identity of a ``cell``/``diagnostic`` row, if any.

    Job-level diagnostics (no ``kernel`` field) have no cell identity
    and are never used to skip re-execution.
    """
    if row.get("type") not in ("cell", "diagnostic"):
        return None
    if "kernel" not in row:
        return None
    return (row.get("kernel"), row.get("threads"), row.get("chunk"))


class ServiceJob:
    """One tenant job: request, lifecycle state and streamed rows.

    Rows are JSON-able dicts with a ``type`` discriminator (``cell`` /
    ``diagnostic`` / ``summary``); readers follow them live through
    :meth:`stream` while the sweep runs.
    """

    def __init__(
        self,
        tenant: str,
        request: JobRequest,
        cells_total: int,
        job_id: str | None = None,
        created_at: float | None = None,
    ) -> None:
        self.id = job_id or uuid.uuid4().hex[:20]
        self.tenant = tenant
        self.request = request
        self.cells_total = cells_total
        self.created_at = created_at if created_at is not None else time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.status = "queued"
        self.error: dict | None = None
        #: Set once the job was parked by a drain or crash recovery.
        self.requeues = 0
        #: Worker-process deaths attributed to this job (quarantine input).
        self.crashes = 0
        #: Grid cells already resolved (restored from the journal) —
        #: re-execution after a crash skips these entirely.
        self.completed_cells: set[tuple] = set()
        self.cells_done = 0
        self.cells_failed = 0
        self.cells_cached = 0
        # Cache-tier breakdown of the cached cells ("mem" / "disk" /
        # "dedupe") — the summary's reuse block.
        self.cells_mem = 0
        self.cells_disk = 0
        self.cancel_event = threading.Event()
        self._rows: list[dict] = []
        self._cond = threading.Condition()

    # -- state transitions (called by the queue) -----------------------------

    def _set_status(self, status: str, error: dict | None = None) -> None:
        assert status in STATUSES, status
        with self._cond:
            self.status = status
            if status == "running" and self.started_at is None:
                self.started_at = time.time()
            if status in ("done", "failed", "cancelled"):
                self.finished_at = time.time()
            if error is not None:
                self.error = error
            self._cond.notify_all()

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    # -- rows ----------------------------------------------------------------

    def append_row(self, row: dict) -> None:
        with self._cond:
            self._rows.append(row)
            self._cond.notify_all()

    def append_rows(self, rows: list[dict]) -> None:
        if not rows:
            return
        with self._cond:
            self._rows.extend(rows)
            self._cond.notify_all()

    def rows(self) -> list[dict]:
        """Snapshot of every row produced so far."""
        with self._cond:
            return list(self._rows)

    def row_count(self) -> int:
        with self._cond:
            return len(self._rows)

    @property
    def has_summary(self) -> bool:
        with self._cond:
            return any(r.get("type") == "summary" for r in self._rows)

    def restore_rows(self, rows: list[dict]) -> None:
        """Adopt journal-replayed rows (crash recovery).

        Re-derives the per-cell counters and the completed-cell set so
        re-execution resumes after the last durable batch with row
        offsets identical to what clients already streamed.
        """
        with self._cond:
            self._rows = list(rows)
            self.cells_done = self.cells_failed = self.cells_cached = 0
            self.cells_mem = self.cells_disk = 0
            self.completed_cells = set()
            for row in self._rows:
                key = _cell_key(row)
                if key is None:
                    continue
                self.completed_cells.add(key)
                if row.get("type") == "cell":
                    self.cells_done += 1
                    if row.get("from_cache"):
                        self.cells_cached += 1
                        tier = row.get("cache_tier")
                        if tier == "mem":
                            self.cells_mem += 1
                        elif tier == "disk":
                            self.cells_disk += 1
                else:
                    self.cells_failed += 1
            self._cond.notify_all()

    def stream(
        self,
        poll_s: float = 0.2,
        should_abort=None,
        start: int = 0,
    ) -> Iterator[dict]:
        """Yield rows as they land, finishing when the job is terminal.

        ``start`` skips already-seen rows (the HTTP ``?from=N``
        resume), so a client reconnecting after a disconnect or a
        daemon crash continues exactly where it left off.

        ``should_abort`` (optional callable) lets the HTTP layer break
        a long-poll when the server itself is draining; the iterator
        then ends after an ``interrupted`` row instead of blocking on a
        job that was parked back into the queue.
        """
        i = max(0, start)
        while True:
            with self._cond:
                while (
                    i >= len(self._rows)
                    and not self.terminal
                    and not (should_abort is not None and should_abort())
                ):
                    self._cond.wait(timeout=poll_s)
                rows = self._rows[i:]
                i = len(self._rows)
                terminal = self.terminal
            for row in rows:
                yield row
            if terminal:
                return
            if should_abort is not None and should_abort():
                yield {
                    "type": "interrupted",
                    "job": self.id,
                    "status": self.status,
                    "reason": "server draining; job state persisted",
                }
                return

    # -- wire forms ----------------------------------------------------------

    def status_doc(self) -> dict:
        """The ``GET /v1/jobs/{id}`` document."""
        with self._cond:
            doc: dict[str, Any] = {
                "id": self.id,
                "tenant": self.tenant,
                "status": self.status,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cells": {
                    "total": self.cells_total,
                    "done": self.cells_done,
                    "failed": self.cells_failed,
                    "from_cache": self.cells_cached,
                },
                "rows": len(self._rows),
                "requeues": self.requeues,
                "crashes": self.crashes,
            }
            if self.error is not None:
                doc["error"] = self.error
            return doc

    def persist_doc(self) -> dict:
        """The queue-state form (enough to re-queue after a restart)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "requeues": self.requeues,
            "request": self.request.to_dict(),
        }


class JobQueue:
    """Admission control + worker threads over one shared engine."""

    def __init__(
        self,
        tenants: TenantRegistry,
        engine: Engine,
        concurrency: int = 2,
        batch_cells: int = 16,
        state_path: str | os.PathLike | None = None,
        journal: Journal | None = None,
        health: HealthMonitor | None = None,
        quarantine_after: int = 3,
        max_queue_depth: int = 0,
        heartbeat_timeout_s: float = 30.0,
        supervise_interval_s: float = 0.2,
        detector_engine: str = "auto",
        sim_jobs: int = 1,
    ) -> None:
        if concurrency < 1:
            raise UsageError("concurrency must be >= 1")
        if batch_cells < 1:
            raise UsageError("batch_cells must be >= 1")
        if quarantine_after < 0:
            raise UsageError("quarantine_after must be >= 0 (0 disables)")
        if max_queue_depth < 0:
            raise UsageError("max_queue_depth must be >= 0 (0 = unbounded)")
        self.tenants = tenants
        self.engine = engine
        self.concurrency = concurrency
        self.batch_cells = batch_cells
        self.state_path = Path(state_path) if state_path else None
        self.journal = journal
        #: 0 disables quarantine; N ≥ 1 quarantines a job after its Nth
        #: attributed worker-process crash (``REPRO-E105``).
        self.quarantine_after = quarantine_after
        #: 0 = unbounded; N ≥ 1 sheds admission (``REPRO-E106``) while
        #: the queue holds ≥ N waiting jobs, recovering below N//2.
        self.max_queue_depth = max_queue_depth
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.supervise_interval_s = supervise_interval_s
        #: Detector engine + segment-parallel workers for every sweep
        #: the queue evaluates (pure perf knobs; result-invariant and
        #: excluded from cache keys, so tenants share cached cells
        #: regardless of the serving configuration).
        self.detector_engine = detector_engine
        self.sim_jobs = sim_jobs
        if health is None:
            # A standalone queue (no daemon boot phase) is ready the
            # moment it exists; the daemon passes its own monitor and
            # marks it ready after recovery.
            health = HealthMonitor()
            health.mark_ready()
        self.health = health
        self._jobs: dict[str, ServiceJob] = {}
        self._pending: deque[str] = deque()
        self._cond = threading.Condition()
        self._engine_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._draining = False
        self._threads: list[threading.Thread] = []
        self._sup_thread: threading.Thread | None = None
        #: worker-thread name → monotonic timestamp of its last loop.
        self._heartbeats: dict[str, float] = {}
        #: worker-thread name → job id it is currently executing.
        self._active: dict[str, str] = {}
        reg = get_registry()
        self._m_jobs = reg.counter(
            "service_jobs_total",
            "service jobs by tenant and terminal status",
        )
        self._m_cells = reg.counter(
            "service_cells_total",
            "sweep cells evaluated by the service, by terminal status",
        )
        self._m_cache_tier = reg.counter(
            "service_cells_cache_tier_total",
            "cached sweep cells by serving tier (mem/disk/dedupe)",
        )
        self._m_rejections = reg.counter(
            "service_rejections_total",
            "jobs rejected at admission, by quota guard",
        )
        self._m_queued = reg.gauge(
            "service_jobs_queued", "jobs currently waiting in the queue"
        )
        self._m_running = reg.gauge(
            "service_jobs_running", "jobs currently executing"
        )
        self._m_depth = reg.gauge(
            "service_queue_depth",
            "jobs currently waiting in the queue (admission shed input)",
        )
        self._m_inflight = reg.gauge(
            "service_jobs_inflight",
            "jobs currently claimed by a worker thread",
        )
        self._m_worker_restarts = reg.counter(
            "service_worker_restarts_total",
            "dead queue-worker threads restarted by the supervisor",
        )
        self._m_journal_errors = reg.counter(
            "service_journal_errors_total",
            "journal writes that failed (service degraded, jobs kept)",
        )
        self._m_quarantined = reg.counter(
            "service_jobs_quarantined_total",
            "jobs quarantined as poison (REPRO-E105) after repeated "
            "worker crashes",
        )
        self._m_job_seconds = reg.histogram(
            "service_job_seconds", "wall time of completed service jobs"
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def start(self) -> None:
        """Spawn the worker + supervisor threads (idempotent)."""
        if self._threads:
            return
        self._draining = False
        for i in range(self.concurrency):
            self._threads.append(self._spawn_worker(i))
        self._sup_thread = threading.Thread(
            target=self._supervise, name="repro-svc-supervisor", daemon=True
        )
        self._sup_thread.start()
        self.health.mark_ready()

    def _spawn_worker(self, index: int) -> threading.Thread:
        t = threading.Thread(
            target=self._worker,
            name=f"repro-svc-worker-{index}",
            daemon=True,
        )
        self._heartbeats[t.name] = time.monotonic()
        t.start()
        return t

    def drain(self, persist: bool = True, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: finish in-flight cells, park running jobs,
        persist queue state, stop the workers.

        The engine pool is closed *after* the workers notice the drain,
        so the batch each worker has in flight completes with real
        results; anything later resolves as ``REPRO-E104``.  With a
        journal configured the journal is already the durable state, so
        the legacy state file is not written.
        """
        self.health.mark_draining()
        with self._cond:
            self._draining = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout_s
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._sup_thread is not None:
            self._sup_thread.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            self._sup_thread = None
        self.engine.close(drain=True)
        self._threads = []
        if persist and self.journal is None:
            self.save_state()
        if self.journal is not None:
            self.journal.close()
        logger.info(
            "queue drained: %d job(s) left queued", len(self._pending)
        )

    # -- supervision ---------------------------------------------------------

    def _supervise(self) -> None:
        """Heartbeat watchdog: restart dead workers, reopen the pool.

        Runs until the drain flag is set.  Every interval it (1)
        replaces worker threads that died (an injected
        ``worker.heartbeat`` fault, or anything else that escaped the
        per-job exception net), re-parking or quarantining the job the
        victim held; (2) flags stalled heartbeats as a degradation; (3)
        reopens an engine pool that was closed outside a drain (e.g. a
        stray ``close`` from a crashed caller).
        """
        while not self._draining:
            time.sleep(self.supervise_interval_s)
            if self._draining:
                break
            try:
                self._supervise_once()
            except Exception:  # noqa: BLE001 - the supervisor must survive
                logger.exception("supervisor iteration failed")

    def _supervise_once(self) -> None:
        restarted = []
        for i, t in enumerate(list(self._threads)):
            if t.is_alive():
                continue
            self._recover_worker_job(t.name)
            nt = self._spawn_worker(i)
            self._threads[i] = nt
            restarted.append(t.name)
            self._m_worker_restarts.inc()
        if restarted:
            logger.warning("supervisor restarted worker(s): %s",
                           ", ".join(restarted))
            self.health.set_degraded(
                "worker-restarts", f"restarted {', '.join(restarted)}"
            )
        else:
            self.health.clear_degraded("worker-restarts")
        now = time.monotonic()
        stalled = [
            name for name, ts in list(self._heartbeats.items())
            if now - ts > self.heartbeat_timeout_s
        ]
        if stalled:
            self.health.set_degraded(
                "worker-stalled",
                f"no heartbeat from {', '.join(sorted(stalled))} in "
                f"{self.heartbeat_timeout_s:g}s",
            )
        else:
            self.health.clear_degraded("worker-stalled")
        # Single-pool Engine exposes .pool; ShardedEngine exposes .pools.
        pools = getattr(self.engine, "pools", None)
        if pools is None:
            pool = getattr(self.engine, "pool", None)
            pools = [pool] if pool is not None else []
        for pool in pools:
            if pool.closing and not self._draining:
                logger.warning("supervisor reopening engine pool closed "
                               "outside a drain")
                pool.reopen()

    def _recover_worker_job(self, worker_name: str) -> None:
        """A worker thread died; salvage the job it was executing."""
        job_id = self._active.pop(worker_name, None)
        if job_id is None:
            return
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return
        self._m_running.inc(-1)
        self._m_inflight.set(len(self._active))
        job.crashes += 1
        self._journal_safe("record_crashes", job.id, job.crashes)
        if self._maybe_quarantine(job):
            return
        job.requeues += 1
        job._set_status("queued")
        with self._cond:
            self._pending.appendleft(job.id)
            self._update_depth_locked()
            self._cond.notify()
        logger.warning(
            "job %s re-parked after worker %s died (crash #%d)",
            job.id, worker_name, job.crashes,
        )

    def _beat(self, name: str) -> None:
        """One worker heartbeat.  The ``worker.heartbeat`` fault site
        raises here — outside the per-job exception net — so an
        injected fault kills the thread and exercises the supervisor's
        restart path end to end."""
        self._heartbeats[name] = time.monotonic()
        fault_point("worker.heartbeat", label=name)

    # -- journal plumbing ----------------------------------------------------

    def _journal_safe(self, op: str, *args) -> None:
        """Apply one journal write; degrade (never raise) on failure.

        A journal that cannot write must not take jobs down with it:
        the failure is counted, the service flips to ``degraded`` (so
        admission sheds while durability is compromised), and the row/
        record is still published in memory.  The first successful
        write clears the degradation.
        """
        if self.journal is None:
            return
        try:
            with self._journal_lock:
                getattr(self.journal, op)(*args)
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            self._m_journal_errors.inc()
            self.health.set_degraded(
                "journal-errors", f"{type(exc).__name__}: {exc}"
            )
            logger.warning("journal %s failed (service degraded): %s",
                           op, exc)
        else:
            self.health.clear_degraded("journal-errors")

    def _publish_row(self, job: ServiceJob, row: dict) -> None:
        """Journal-then-publish one row (stable offsets across crashes)."""
        self._journal_safe("record_rows", job.id, job.row_count(), [row])
        job.append_row(row)

    def _publish_rows(self, job: ServiceJob, rows: list[dict]) -> None:
        if not rows:
            return
        self._journal_safe("record_rows", job.id, job.row_count(),
                           list(rows))
        job.append_rows(rows)

    # -- admission -----------------------------------------------------------

    def submit(self, tenant: TenantConfig, request: JobRequest) -> ServiceJob:
        """Admit one job for ``tenant`` or raise a structured error.

        Checks, in order: drain state (503 via ``REPRO-E104``), the
        ``queue.admit`` fault site, load shedding (``REPRO-E106`` while
        degraded or past ``max_queue_depth``), the tenant's token
        bucket (``REPRO-R102``), its queued-jobs quota (``REPRO-R101``),
        the submit-time parse (``REPRO-F*``), and the grid-size/
        step-estimate budget (``REPRO-R103``).
        """
        if self._draining:
            raise JobCancelledError(
                "service is draining; resubmit after restart"
            )
        fault_point("queue.admit", label=tenant.name)
        with self._cond:
            depth = len(self._pending)
        if self.max_queue_depth and depth >= self.max_queue_depth:
            self.health.set_degraded(
                "queue-pressure",
                f"{depth} job(s) queued >= limit {self.max_queue_depth}",
            )
        if not self.health.accepting:
            state = self.health.state
            reasons = self.health.reasons()
            self._m_rejections.labels(quota="shed").inc()
            raise ServiceOverloadedError(
                f"service is {state}"
                f"{' (' + ', '.join(sorted(reasons)) + ')' if reasons else ''}"
                "; retry later",
                context={"retry_after_s": 5.0, "state": state,
                         "reasons": dict(reasons)},
            )
        if not self.tenants.bucket(tenant).try_acquire():
            self._m_rejections.labels(quota="rate").inc()
            raise QuotaExceededError(
                f"tenant {tenant.name!r} exceeded its submission rate "
                f"({tenant.rate_per_s:g}/s, burst {tenant.burst})",
                code="REPRO-R102",
                context={"quota": "rate", "tenant": tenant.name,
                         "limit": tenant.rate_per_s,
                         "retry_after_s": max(1.0, 1.0 / tenant.rate_per_s)
                         if tenant.rate_per_s > 0 else 1.0},
            )
        with self._cond:
            active = sum(
                1 for j in self._jobs.values()
                if j.tenant == tenant.name and j.status in ("queued", "running")
            )
        if active >= tenant.max_queued_jobs:
            self._m_rejections.labels(quota="queued_jobs").inc()
            raise QuotaExceededError(
                f"tenant {tenant.name!r} already has {active} queued/"
                f"running job(s) (limit {tenant.max_queued_jobs})",
                code="REPRO-R101",
                context={"quota": "queued_jobs", "tenant": tenant.name,
                         "limit": tenant.max_queued_jobs,
                         "active": active},
            )
        cells_total = self._admit_grid(tenant, request)
        job = ServiceJob(
            tenant=tenant.name, request=request, cells_total=cells_total
        )
        # Journal the admission *before* the job becomes runnable so no
        # rows record can ever precede its admit record.
        self._journal_safe(
            "record_admit", job.id, tenant.name, request.to_dict(),
            cells_total, job.created_at, job.requeues,
        )
        self._enqueue(job)
        logger.info(
            "job %s admitted for %s: %d cell(s)",
            job.id, tenant.name, cells_total,
        )
        return job

    def _admit_grid(self, tenant: TenantConfig, request: JobRequest) -> int:
        """Parse + size the request's sweep; enforce the cell/step
        budget.  Returns the total feasible cell count."""
        kernels = self._parse(request)
        machine = paper_machine(num_cores=request.cores)
        sweep = self._sweep_for(request)
        cells = 0
        steps = 0
        for kernel in kernels:
            grid = sweep.feasible_grid(
                kernel.nest, request.threads, request.chunks
            )
            cells += len(grid)
            if tenant.max_steps_per_job is not None:
                for threads, chunk in grid:
                    steps += estimate_cost(
                        kernel.nest, threads, machine, chunk=chunk
                    ).steps
        if cells > tenant.max_cells_per_job:
            self._m_rejections.labels(quota="cells").inc()
            raise QuotaExceededError(
                f"job spans {cells:,} cells; tenant {tenant.name!r} "
                f"allows {tenant.max_cells_per_job:,} per job",
                code="REPRO-R103",
                context={"quota": "cells", "tenant": tenant.name,
                         "limit": tenant.max_cells_per_job,
                         "estimate": cells},
            )
        if (
            tenant.max_steps_per_job is not None
            and steps > tenant.max_steps_per_job
        ):
            self._m_rejections.labels(quota="steps").inc()
            raise QuotaExceededError(
                f"job's estimated {steps:,} lockstep steps exceed tenant "
                f"{tenant.name!r}'s budget of "
                f"{tenant.max_steps_per_job:,}",
                code="REPRO-R103",
                context={"quota": "steps", "tenant": tenant.name,
                         "limit": tenant.max_steps_per_job,
                         "estimate": steps},
            )
        return cells

    @staticmethod
    def _parse(request: JobRequest):
        from repro.frontend import parse_c_source

        return parse_c_source(
            request.source,
            extra_macros=dict(request.macros),
            filename=request.filename,
        )

    def _sweep_for(self, request: JobRequest) -> WhatIfSweep:
        return WhatIfSweep(
            paper_machine(num_cores=request.cores),
            use_predictor=not request.exact,
            predictor_runs=request.predictor_runs,
            mode=request.mode,
            detector_engine=self.detector_engine,
            sim_jobs=self.sim_jobs,
        )

    def _update_depth_locked(self) -> None:
        """Refresh depth gauges + queue-pressure health (``_cond`` held)."""
        depth = len(self._pending)
        self._m_queued.set(depth)
        self._m_depth.set(depth)
        if self.max_queue_depth:
            if depth >= self.max_queue_depth:
                self.health.set_degraded(
                    "queue-pressure",
                    f"{depth} job(s) queued >= limit {self.max_queue_depth}",
                )
            elif depth <= self.max_queue_depth // 2:
                self.health.clear_degraded("queue-pressure")

    def _enqueue(self, job: ServiceJob, front: bool = False) -> None:
        with self._cond:
            self._jobs[job.id] = job
            if front:
                self._pending.appendleft(job.id)
            else:
                self._pending.append(job.id)
            self._update_depth_locked()
            self._cond.notify()

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str, tenant: TenantConfig | None = None) -> ServiceJob | None:
        """The job, or ``None`` if unknown / owned by another tenant."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if tenant is not None and job.tenant != tenant.name:
            return None
        return job

    def jobs(self) -> list[ServiceJob]:
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str, tenant: TenantConfig | None = None) -> ServiceJob | None:
        """Request cancellation; immediate for queued jobs, at the next
        batch boundary for running ones.  Returns the job or ``None``."""
        job = self.get(job_id, tenant)
        if job is None:
            return None
        job.cancel_event.set()
        self._journal_safe("record_cancel", job.id)
        with self._cond:
            if job.status == "queued":
                try:
                    self._pending.remove(job.id)
                except ValueError:
                    pass
                self._update_depth_locked()
                self._finish(job, "cancelled")
        return job

    # -- worker loop ---------------------------------------------------------

    def _next_job(self) -> ServiceJob | None:
        with self._cond:
            while not self._pending and not self._draining:
                self._cond.wait(timeout=0.2)
                if not self._pending:
                    return None
            if self._draining or not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            self._update_depth_locked()
            if job.terminal:  # cancelled while queued
                return None
            job._set_status("running")
            self._m_running.inc(1)
            return job

    def _worker(self) -> None:
        name = threading.current_thread().name
        while not self._draining:
            # Heartbeat outside the per-job try: an injected
            # worker.heartbeat fault kills this thread, and the
            # supervisor must bring it back.
            self._beat(name)
            job = self._next_job()
            if job is None:
                continue
            self._active[name] = job.id
            self._m_inflight.set(len(self._active))
            try:
                self._run_job(job)
            except ReproError as exc:
                self._publish_row(job, {"type": "diagnostic",
                                        **exc.to_dict()})
                self._finish(job, "failed", error=exc.to_dict())
            except Exception as exc:  # noqa: BLE001 - never kill the worker
                logger.exception("job %s died unexpectedly", job.id)
                self._finish(job, "failed", error={
                    "code": "REPRO-X000",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            finally:
                self._active.pop(name, None)
                self._m_inflight.set(len(self._active))
                self._m_running.inc(-1)

    def _finish(self, job: ServiceJob, status: str,
                error: dict | None = None) -> None:
        job._set_status(status, error=error)
        self._journal_safe("record_terminal", job.id, status, error)
        self._m_jobs.labels(tenant=job.tenant, status=status).inc()
        if job.started_at is not None and job.finished_at is not None:
            self._m_job_seconds.observe(job.finished_at - job.started_at)

    def _park(self, job: ServiceJob) -> None:
        """Drain hit mid-job: back to the queue, front position."""
        job.requeues += 1
        job._set_status("queued")
        with self._cond:
            self._pending.appendleft(job.id)
            self._update_depth_locked()
        logger.info("job %s parked by drain (requeue #%d)",
                    job.id, job.requeues)

    def _maybe_quarantine(self, job: ServiceJob) -> bool:
        """Quarantine ``job`` if its crash count crossed the threshold.

        Terminal ``REPRO-E105``: the job fails with a stable poison-job
        diagnostic instead of being retried forever, the worker pool
        (which already rebuilt itself) keeps serving everyone else.
        """
        if not self.quarantine_after or job.crashes < self.quarantine_after:
            return False
        if job.terminal:
            return True
        exc = PoisonJobError(
            f"job {job.id} crashed worker processes {job.crashes} time(s) "
            f"(threshold {self.quarantine_after}); quarantined",
            context={"job": job.id, "tenant": job.tenant,
                     "crashes": job.crashes,
                     "threshold": self.quarantine_after},
        )
        doc = exc.to_dict()
        logger.error("quarantining poison job %s after %d worker "
                     "crash(es)", job.id, job.crashes)
        self._publish_row(job, {"type": "diagnostic", **doc})
        self._m_quarantined.inc()
        self._finish(job, "failed", error=doc)
        return True

    def _run_job(self, job: ServiceJob) -> None:
        """Evaluate one job's grid in batches through the shared engine."""
        if self._maybe_quarantine(job):  # restored poison job
            return
        request = job.request
        policy = FailurePolicy(
            keep_going=True, max_failure_rate=request.max_failure_rate
        )
        try:
            kernels = self._parse(request)
        except ReproError as exc:
            # The submit-time parse succeeded, so this is rare (a parse
            # of a restored job after a restart, with the bug fixed in
            # neither); surface it as the job's terminal error.
            self._publish_row(job, {"type": "diagnostic", **exc.to_dict()})
            self._finish(job, "failed", error=exc.to_dict())
            return
        sweep = self._sweep_for(request)
        budget = request.budget()
        t0 = time.monotonic()
        with span("service.job", job=job.id, tenant=job.tenant):
            for kernel in kernels:
                cell_jobs = sweep.point_jobs(
                    kernel.nest, request.threads, request.chunks,
                    budget=budget,
                )
                if job.completed_cells:
                    # Crash recovery: cells whose rows are already
                    # durable (and visible to clients) are not re-run —
                    # a restart costs only the interrupted batch.
                    cell_jobs = [
                        cj for cj in cell_jobs
                        if (kernel.name, cj.spec.get("threads"),
                            cj.spec.get("chunk"))
                        not in job.completed_cells
                    ]
                for start in range(0, len(cell_jobs), self.batch_cells):
                    if self._draining:
                        self._park(job)
                        return
                    if job.cancel_event.is_set():
                        self._finish(job, "cancelled")
                        return
                    batch = cell_jobs[start:start + self.batch_cells]
                    try:
                        self._run_batch(job, kernel.name, batch, policy)
                    except CircuitOpenError as exc:
                        self._publish_row(
                            job, {"type": "diagnostic", **exc.to_dict()}
                        )
                        self._summarize(job, policy, t0, status="failed",
                                        error=exc.to_dict())
                        return
                    if self._maybe_quarantine(job):
                        return
        if job.cancel_event.is_set():
            self._finish(job, "cancelled")
            return
        self._summarize(job, policy, t0, status="done")

    def _run_batch(self, job: ServiceJob, kernel_name: str, batch,
                   policy: FailurePolicy) -> None:
        """One engine batch.

        Without a journal, rows publish per cell (lowest latency).
        With one, rows buffer for the batch and hit the journal as a
        single checksummed record *before* publishing — so every row a
        client ever saw is durable and its offset survives a SIGKILL.
        """
        buffer: list[dict] = []
        publish = buffer.append if self.journal is not None \
            else job.append_row
        crashes = 0

        def _on_outcome(outcome) -> None:
            nonlocal crashes
            spec = outcome.job.spec
            cell = {
                "kernel": kernel_name,
                "threads": spec.get("threads"),
                "chunk": spec.get("chunk"),
            }
            if outcome.ok:
                point = SweepPoint.from_dict(outcome.result)
                row = {
                    "type": "cell",
                    **cell,
                    "fs_cases": point.fs_cases,
                    "fs_cycles": point.fs_cycles,
                    "wall_cycles": point.wall_cycles,
                    "fs_share": point.fs_share,
                    "fidelity": point.fidelity,
                    "from_cache": outcome.from_cache,
                }
                if outcome.from_cache and outcome.cache_tier:
                    row["cache_tier"] = outcome.cache_tier
                if point.degradation is not None:
                    row["degradation"] = point.degradation
                publish(row)
                with job._cond:
                    job.cells_done += 1
                    if outcome.from_cache:
                        job.cells_cached += 1
                        if outcome.cache_tier == "mem":
                            job.cells_mem += 1
                        elif outcome.cache_tier == "disk":
                            job.cells_disk += 1
                self._m_cells.labels(status="done").inc()
                if outcome.from_cache:
                    self._m_cells.labels(status="from_cache").inc()
                    self._m_cache_tier.labels(
                        tier=outcome.cache_tier or "disk"
                    ).inc()
                policy.record_success()
            else:
                cancelled = outcome.error_code == JobCancelledError.code
                report = FailureReport.from_outcome(
                    outcome, kind="service.cell", point=cell
                )
                publish({
                    "type": "diagnostic",
                    **cell,
                    "code": report.code,
                    "message": report.message,
                    "attempts": report.attempts,
                })
                with job._cond:
                    job.cells_failed += 1
                self._m_cells.labels(
                    status="cancelled" if cancelled else "failed"
                ).inc()
                if not cancelled:
                    # Cancellations are back-pressure, not failures:
                    # they must not trip the circuit breaker.
                    policy.record_failure(report)
            # Attribute worker-process deaths to this job: each retry
            # that ended in a crash plus a terminal REPRO-E102 verdict.
            crashes += sum(
                1 for h in outcome.retry_history if "crash" in h
            )
            if not outcome.ok and outcome.error_code == "REPRO-E102":
                crashes += 1
            job.completed_cells.add((kernel_name, cell["threads"],
                                     cell["chunk"]))

        with self._engine_lock:
            self.engine.run(
                batch,
                on_outcome=_on_outcome,
                should_stop=job.cancel_event.is_set,
            )
        if self.journal is not None:
            self._publish_rows(job, buffer)
        if crashes:
            job.crashes += crashes
            self._journal_safe("record_crashes", job.id, job.crashes)

    def _summarize(self, job: ServiceJob, policy: FailurePolicy,
                   t0: float, status: str,
                   error: dict | None = None) -> None:
        if job.has_summary:
            # Crash recovery edge: the summary row was already durable
            # (and possibly streamed) before the terminal record made
            # it to disk — never emit it twice.
            self._finish(job, status, error=error)
            return
        best = None
        best_wall = None
        for row in job.rows():
            if row.get("type") == "cell" and (
                best_wall is None or row["wall_cycles"] < best_wall
            ):
                best_wall = row["wall_cycles"]
                best = {k: row[k] for k in
                        ("kernel", "threads", "chunk", "wall_cycles")}
        from repro.engine.incremental import ReuseReport

        reuse = ReuseReport(
            total=job.cells_done + job.cells_failed,
            computed=job.cells_done - job.cells_cached,
            mem_hits=job.cells_mem,
            disk_hits=job.cells_disk,
            deduped=job.cells_cached - job.cells_mem - job.cells_disk,
            failed=job.cells_failed,
        )
        summary: dict[str, Any] = {
            "type": "summary",
            "job": job.id,
            "status": status,
            "cells": {
                "total": job.cells_total,
                "done": job.cells_done,
                "failed": job.cells_failed,
                "from_cache": job.cells_cached,
            },
            "reuse": reuse.to_dict(),
            "failures": len(policy.failures),
            "elapsed_s": round(time.monotonic() - t0, 6),
        }
        if best is not None:
            summary["best"] = best
        self._publish_row(job, summary)
        self._finish(job, status, error=error)

    # -- journal recovery ----------------------------------------------------

    def recover(self) -> int:
        """Replay the journal; re-admit unfinished jobs.  Returns count.

        Completed cells are restored verbatim (stable row offsets →
        exactly-once streaming across the crash) and filtered out of
        re-execution; crash counts survive so a poison job cannot dodge
        quarantine by killing the whole daemon.  The replayed history
        is compacted into a fresh segment so a crash loop cannot grow
        the journal without bound.  Idempotent against duplicated or
        torn journal tails (see :mod:`repro.service.journal`).
        """
        if self.journal is None:
            return 0
        ledgers = self.journal.replay()
        stats = self.journal.last_replay
        restored = 0
        for ledger in ledgers.values():
            if ledger.terminal:
                continue
            if ledger.tenant not in self.tenants.tenants:
                logger.warning(
                    "dropping journaled job %s: tenant %r no longer "
                    "exists", ledger.job_id, ledger.tenant,
                )
                ledger.status = "cancelled"
                continue
            try:
                request = JobRequest.from_dict(ledger.request)
            except ReproError as exc:
                logger.warning("dropping journaled job %s: %s",
                               ledger.job_id, exc)
                ledger.status = "cancelled"
                continue
            ledger.requeues += 1
            job = ServiceJob(
                tenant=ledger.tenant,
                request=request,
                cells_total=ledger.cells_total,
                job_id=ledger.job_id,
                created_at=ledger.created_at,
            )
            job.requeues = ledger.requeues
            job.crashes = ledger.crashes
            job.restore_rows(ledger.rows)
            if ledger.cancelled:
                job.cancel_event.set()
            self._enqueue(job)
            restored += 1
        self.journal.compact(ledgers)
        logger.info(
            "journal recovery: %d job(s) re-admitted from %d record(s) "
            "in %d segment(s)%s%s",
            restored, stats.records, stats.segments,
            " (torn tail tolerated)" if stats.torn_tail else "",
            f" ({stats.corrupt_records} corrupt record(s) skipped)"
            if stats.corrupt_records else "",
        )
        return restored

    # -- persistence (legacy state file, journal-less mode) ------------------

    def queue_state(self) -> dict:
        """JSON-able snapshot of every job still waiting to run."""
        with self._cond:
            queued = [
                self._jobs[job_id].persist_doc()
                for job_id in self._pending
                if not self._jobs[job_id].terminal
            ]
        return {"version": _QUEUE_STATE_VERSION, "jobs": queued}

    def save_state(self, path: str | os.PathLike | None = None) -> Path | None:
        """Atomically persist :meth:`queue_state` (drain survivors)."""
        target = Path(path) if path else self.state_path
        if target is None:
            return None
        state = self.queue_state()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=".queue-", suffix=".json"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=1)
        os.replace(tmp, target)
        logger.info(
            "queue state: %d job(s) persisted to %s",
            len(state["jobs"]), target,
        )
        return target

    def load_state(self, path: str | os.PathLike | None = None) -> int:
        """Re-queue jobs persisted by an earlier drain; returns count.

        Jobs whose tenant no longer exists are dropped with a warning
        (quota identity is gone); everything else re-enters the queue in
        its persisted order.  The consumed state file is removed so a
        crash loop cannot double-queue.
        """
        target = Path(path) if path else self.state_path
        if target is None or not target.is_file():
            return 0
        try:
            state = json.loads(target.read_text(encoding="utf-8"))
            if state.get("version") != _QUEUE_STATE_VERSION:
                raise ValueError(f"unknown version {state.get('version')!r}")
            docs = state["jobs"]
        except (ValueError, KeyError, OSError) as exc:
            logger.warning("ignoring unreadable queue state %s: %s",
                           target, exc)
            return 0
        restored = 0
        for doc in docs:
            tenant_name = str(doc.get("tenant", ""))
            if tenant_name not in self.tenants.tenants:
                logger.warning(
                    "dropping persisted job %s: tenant %r no longer exists",
                    doc.get("id"), tenant_name,
                )
                continue
            try:
                request = JobRequest.from_dict(doc["request"])
                cells = self._admit_grid(
                    self.tenants.tenants[tenant_name], request
                )
            except (ReproError, KeyError) as exc:
                logger.warning("dropping persisted job %s: %s",
                               doc.get("id"), exc)
                continue
            job = ServiceJob(
                tenant=tenant_name,
                request=request,
                cells_total=cells,
                job_id=str(doc.get("id")) or None,
                created_at=doc.get("created_at"),
            )
            job.requeues = int(doc.get("requeues", 0))
            self._enqueue(job)
            restored += 1
        try:
            target.unlink()
        except OSError:
            pass
        if restored:
            logger.info("restored %d job(s) from %s", restored, target)
        return restored
