"""The multi-tenant job queue feeding one shared analysis engine.

Submission flow (:meth:`JobQueue.submit`)::

    rate bucket ──► queued-jobs quota ──► parse kernels ──► grid size +
    step estimate vs tenant budget ──► ServiceJob(queued) ──► worker

Admission rejections raise structured resource errors (``REPRO-R101``
rate/quota, ``REPRO-R102`` token bucket, ``REPRO-R103`` oversized job)
that the HTTP layer maps to 429; frontend errors from the submit-time
parse keep their ``REPRO-F*`` codes and map to 422.  Nothing about a
rejected job ever reaches the engine.

Execution: ``concurrency`` worker threads pull queued jobs and run
their sweep grids through the **shared** :class:`repro.engine.Engine`
in small batches (``batch_cells`` cells per call, serialized by a
lock).  Sharing one engine means one result store: a cell any tenant
ever computed is a warm cache hit for every other tenant, and batching
keeps cancellation (client ``DELETE`` or SIGTERM drain) responsive —
at most one batch of cells is in flight per job when the stop signal
lands.

Per-cell results stream: each terminal cell immediately appends an
NDJSON-ready row to its job (``type: cell`` for successes, ``type:
diagnostic`` carrying the stable ``REPRO-*`` code for isolated
failures — :class:`~repro.resilience.partial.FailurePolicy` keep-going
semantics, so one broken cell never kills the sweep), and
:meth:`ServiceJob.stream` hands them to waiting HTTP readers as they
land.

Drain (:meth:`JobQueue.drain`): stop admitting, let the in-flight
batch finish, park running jobs back in the queue, persist queue state
to disk (:meth:`save_state`) and join the workers.  On restart,
:meth:`load_state` re-queues the parked jobs — their already-computed
cells live in the content-addressed store, so re-execution is served
almost entirely warm.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.engine import Engine
from repro.machine import paper_machine
from repro.model.whatif import SweepPoint, WhatIfSweep
from repro.obs import get_registry, span
from repro.resilience.budget import Budget, estimate_cost
from repro.resilience.errors import (
    CircuitOpenError,
    JobCancelledError,
    QuotaExceededError,
    ReproError,
    UsageError,
)
from repro.resilience.partial import FailurePolicy, FailureReport
from repro.service.tenants import TenantConfig, TenantRegistry
from repro.util import get_logger

__all__ = ["JobQueue", "JobRequest", "ServiceJob", "STATUSES"]

logger = get_logger(__name__)

#: Job lifecycle states.  queued → running → {done, failed, cancelled};
#: a drain parks running jobs back at queued.
STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Hard ceiling on grid-axis lengths, independent of tenant quotas —
#: keeps a malformed request from allocating an absurd grid before the
#: per-tenant cell quota is even consulted.
_MAX_AXIS = 256

_QUEUE_STATE_VERSION = 1


def _usage(message: str) -> UsageError:
    return UsageError(message, code="REPRO-U101")


@dataclass(frozen=True)
class JobRequest:
    """One submitted analysis: kernel source + machine/schedule grid.

    The wire form (``POST /v1/jobs`` body) is :meth:`from_dict` /
    :meth:`to_dict`; the same round trip persists queued jobs across a
    daemon restart.
    """

    source: str
    filename: str = "<job>"
    threads: tuple[int, ...] = (2, 4, 8)
    chunks: tuple[int, ...] = (1, 2, 4, 8, 16)
    cores: int = 48
    mode: str = "invalidate"
    #: ``True`` requests the exact model per cell (subject to budgets),
    #: ``False`` the regression predictor.
    exact: bool = False
    predictor_runs: int = 8
    macros: Mapping[str, int] = field(default_factory=dict)
    deadline_s: float | None = None
    max_iters: int | None = None
    max_failure_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.source or not self.source.strip():
            raise _usage("request carries no kernel source")
        for axis_name, axis in (("threads", self.threads),
                                ("chunks", self.chunks)):
            if not axis:
                raise _usage(f"{axis_name} list must be non-empty")
            if len(axis) > _MAX_AXIS:
                raise _usage(
                    f"{axis_name} list longer than {_MAX_AXIS} entries"
                )
            if any(v < 1 for v in axis):
                raise _usage(f"{axis_name} values must be >= 1")
        if self.cores < 1:
            raise _usage("cores must be >= 1")
        if self.mode not in ("invalidate", "literal"):
            raise _usage(f"unknown mode {self.mode!r}")
        if self.predictor_runs < 1:
            raise _usage("predictor_runs must be >= 1")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise _usage("max_failure_rate must be in [0, 1]")

    def budget(self) -> Budget | None:
        """The per-cell resource budget this request asks for."""
        if self.deadline_s is None and self.max_iters is None:
            return None
        return Budget(deadline_s=self.deadline_s, max_steps=self.max_iters)

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "source": self.source,
            "filename": self.filename,
            "threads": list(self.threads),
            "chunks": list(self.chunks),
            "cores": self.cores,
            "mode": self.mode,
            "exact": self.exact,
            "predictor_runs": self.predictor_runs,
        }
        if self.macros:
            doc["macros"] = dict(self.macros)
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.max_iters is not None:
            doc["max_iters"] = self.max_iters
        if self.max_failure_rate != 1.0:
            doc["max_failure_rate"] = self.max_failure_rate
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "JobRequest":
        """Validate a wire/persisted request (``REPRO-U101`` on junk)."""
        if not isinstance(doc, Mapping):
            raise _usage(
                f"request body must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        unknown = set(doc) - {
            "source", "filename", "threads", "chunks", "cores", "mode",
            "exact", "predictor_runs", "macros", "deadline_s",
            "max_iters", "max_failure_rate",
        }
        if unknown:
            raise _usage(f"request has unknown fields: {sorted(unknown)}")
        if not isinstance(doc.get("source"), str):
            raise _usage("request field 'source' must be a string")
        macros = doc.get("macros", {})
        if not isinstance(macros, Mapping):
            raise _usage("request field 'macros' must be an object")
        try:
            return cls(
                source=doc["source"],
                filename=str(doc.get("filename", "<job>")),
                threads=tuple(int(t) for t in doc.get("threads", (2, 4, 8))),
                chunks=tuple(
                    int(c) for c in doc.get("chunks", (1, 2, 4, 8, 16))
                ),
                cores=int(doc.get("cores", 48)),
                mode=str(doc.get("mode", "invalidate")),
                exact=bool(doc.get("exact", False)),
                predictor_runs=int(doc.get("predictor_runs", 8)),
                macros={str(k): int(v) for k, v in macros.items()},
                deadline_s=(
                    None if doc.get("deadline_s") is None
                    else float(doc["deadline_s"])
                ),
                max_iters=(
                    None if doc.get("max_iters") is None
                    else int(doc["max_iters"])
                ),
                max_failure_rate=float(doc.get("max_failure_rate", 1.0)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ReproError):
                raise
            raise _usage(f"malformed request field: {exc}") from exc


class ServiceJob:
    """One tenant job: request, lifecycle state and streamed rows.

    Rows are JSON-able dicts with a ``type`` discriminator (``cell`` /
    ``diagnostic`` / ``summary``); readers follow them live through
    :meth:`stream` while the sweep runs.
    """

    def __init__(
        self,
        tenant: str,
        request: JobRequest,
        cells_total: int,
        job_id: str | None = None,
        created_at: float | None = None,
    ) -> None:
        self.id = job_id or uuid.uuid4().hex[:20]
        self.tenant = tenant
        self.request = request
        self.cells_total = cells_total
        self.created_at = created_at if created_at is not None else time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.status = "queued"
        self.error: dict | None = None
        #: Set once the job was parked by a drain (for status/runbooks).
        self.requeues = 0
        self.cells_done = 0
        self.cells_failed = 0
        self.cells_cached = 0
        self.cancel_event = threading.Event()
        self._rows: list[dict] = []
        self._cond = threading.Condition()

    # -- state transitions (called by the queue) -----------------------------

    def _set_status(self, status: str, error: dict | None = None) -> None:
        assert status in STATUSES, status
        with self._cond:
            self.status = status
            if status == "running" and self.started_at is None:
                self.started_at = time.time()
            if status in ("done", "failed", "cancelled"):
                self.finished_at = time.time()
            if error is not None:
                self.error = error
            self._cond.notify_all()

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    # -- rows ----------------------------------------------------------------

    def append_row(self, row: dict) -> None:
        with self._cond:
            self._rows.append(row)
            self._cond.notify_all()

    def rows(self) -> list[dict]:
        """Snapshot of every row produced so far."""
        with self._cond:
            return list(self._rows)

    def stream(
        self,
        poll_s: float = 0.2,
        should_abort=None,
    ) -> Iterator[dict]:
        """Yield rows as they land, finishing when the job is terminal.

        ``should_abort`` (optional callable) lets the HTTP layer break
        a long-poll when the server itself is draining; the iterator
        then ends after an ``interrupted`` row instead of blocking on a
        job that was parked back into the queue.
        """
        i = 0
        while True:
            with self._cond:
                while (
                    i >= len(self._rows)
                    and not self.terminal
                    and not (should_abort is not None and should_abort())
                ):
                    self._cond.wait(timeout=poll_s)
                rows = self._rows[i:]
                i = len(self._rows)
                terminal = self.terminal
            for row in rows:
                yield row
            if terminal:
                return
            if should_abort is not None and should_abort():
                yield {
                    "type": "interrupted",
                    "job": self.id,
                    "status": self.status,
                    "reason": "server draining; job state persisted",
                }
                return

    # -- wire forms ----------------------------------------------------------

    def status_doc(self) -> dict:
        """The ``GET /v1/jobs/{id}`` document."""
        with self._cond:
            doc: dict[str, Any] = {
                "id": self.id,
                "tenant": self.tenant,
                "status": self.status,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cells": {
                    "total": self.cells_total,
                    "done": self.cells_done,
                    "failed": self.cells_failed,
                    "from_cache": self.cells_cached,
                },
                "rows": len(self._rows),
                "requeues": self.requeues,
            }
            if self.error is not None:
                doc["error"] = self.error
            return doc

    def persist_doc(self) -> dict:
        """The queue-state form (enough to re-queue after a restart)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "requeues": self.requeues,
            "request": self.request.to_dict(),
        }


class JobQueue:
    """Admission control + worker threads over one shared engine."""

    def __init__(
        self,
        tenants: TenantRegistry,
        engine: Engine,
        concurrency: int = 2,
        batch_cells: int = 16,
        state_path: str | os.PathLike | None = None,
    ) -> None:
        if concurrency < 1:
            raise UsageError("concurrency must be >= 1")
        if batch_cells < 1:
            raise UsageError("batch_cells must be >= 1")
        self.tenants = tenants
        self.engine = engine
        self.concurrency = concurrency
        self.batch_cells = batch_cells
        self.state_path = Path(state_path) if state_path else None
        self._jobs: dict[str, ServiceJob] = {}
        self._pending: deque[str] = deque()
        self._cond = threading.Condition()
        self._engine_lock = threading.Lock()
        self._draining = False
        self._threads: list[threading.Thread] = []
        reg = get_registry()
        self._m_jobs = reg.counter(
            "service_jobs_total",
            "service jobs by tenant and terminal status",
        )
        self._m_cells = reg.counter(
            "service_cells_total",
            "sweep cells evaluated by the service, by terminal status",
        )
        self._m_rejections = reg.counter(
            "service_rejections_total",
            "jobs rejected at admission, by quota guard",
        )
        self._m_queued = reg.gauge(
            "service_jobs_queued", "jobs currently waiting in the queue"
        )
        self._m_running = reg.gauge(
            "service_jobs_running", "jobs currently executing"
        )
        self._m_job_seconds = reg.histogram(
            "service_job_seconds", "wall time of completed service jobs"
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._draining = False
        for i in range(self.concurrency):
            t = threading.Thread(
                target=self._worker, name=f"repro-svc-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def drain(self, persist: bool = True, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: finish in-flight cells, park running jobs,
        persist queue state, stop the workers.

        The engine pool is closed *after* the workers notice the drain,
        so the batch each worker has in flight completes with real
        results; anything later resolves as ``REPRO-E104``.
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout_s
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        self.engine.close(drain=True)
        self._threads = []
        if persist:
            self.save_state()
        logger.info(
            "queue drained: %d job(s) left queued", len(self._pending)
        )

    # -- admission -----------------------------------------------------------

    def submit(self, tenant: TenantConfig, request: JobRequest) -> ServiceJob:
        """Admit one job for ``tenant`` or raise a structured error.

        Checks, in order: drain state (503 via ``REPRO-E104``), the
        tenant's token bucket (``REPRO-R102``), its queued-jobs quota
        (``REPRO-R101``), the submit-time parse (``REPRO-F*``), and the
        grid-size/step-estimate budget (``REPRO-R103``).
        """
        if self._draining:
            raise JobCancelledError(
                "service is draining; resubmit after restart"
            )
        if not self.tenants.bucket(tenant).try_acquire():
            self._m_rejections.labels(quota="rate").inc()
            raise QuotaExceededError(
                f"tenant {tenant.name!r} exceeded its submission rate "
                f"({tenant.rate_per_s:g}/s, burst {tenant.burst})",
                code="REPRO-R102",
                context={"quota": "rate", "tenant": tenant.name,
                         "limit": tenant.rate_per_s},
            )
        with self._cond:
            active = sum(
                1 for j in self._jobs.values()
                if j.tenant == tenant.name and j.status in ("queued", "running")
            )
        if active >= tenant.max_queued_jobs:
            self._m_rejections.labels(quota="queued_jobs").inc()
            raise QuotaExceededError(
                f"tenant {tenant.name!r} already has {active} queued/"
                f"running job(s) (limit {tenant.max_queued_jobs})",
                code="REPRO-R101",
                context={"quota": "queued_jobs", "tenant": tenant.name,
                         "limit": tenant.max_queued_jobs,
                         "active": active},
            )
        cells_total = self._admit_grid(tenant, request)
        job = ServiceJob(
            tenant=tenant.name, request=request, cells_total=cells_total
        )
        self._enqueue(job)
        logger.info(
            "job %s admitted for %s: %d cell(s)",
            job.id, tenant.name, cells_total,
        )
        return job

    def _admit_grid(self, tenant: TenantConfig, request: JobRequest) -> int:
        """Parse + size the request's sweep; enforce the cell/step
        budget.  Returns the total feasible cell count."""
        kernels = self._parse(request)
        machine = paper_machine(num_cores=request.cores)
        sweep = self._sweep_for(request)
        cells = 0
        steps = 0
        for kernel in kernels:
            grid = sweep.feasible_grid(
                kernel.nest, request.threads, request.chunks
            )
            cells += len(grid)
            if tenant.max_steps_per_job is not None:
                for threads, chunk in grid:
                    steps += estimate_cost(
                        kernel.nest, threads, machine, chunk=chunk
                    ).steps
        if cells > tenant.max_cells_per_job:
            self._m_rejections.labels(quota="cells").inc()
            raise QuotaExceededError(
                f"job spans {cells:,} cells; tenant {tenant.name!r} "
                f"allows {tenant.max_cells_per_job:,} per job",
                code="REPRO-R103",
                context={"quota": "cells", "tenant": tenant.name,
                         "limit": tenant.max_cells_per_job,
                         "estimate": cells},
            )
        if (
            tenant.max_steps_per_job is not None
            and steps > tenant.max_steps_per_job
        ):
            self._m_rejections.labels(quota="steps").inc()
            raise QuotaExceededError(
                f"job's estimated {steps:,} lockstep steps exceed tenant "
                f"{tenant.name!r}'s budget of "
                f"{tenant.max_steps_per_job:,}",
                code="REPRO-R103",
                context={"quota": "steps", "tenant": tenant.name,
                         "limit": tenant.max_steps_per_job,
                         "estimate": steps},
            )
        return cells

    @staticmethod
    def _parse(request: JobRequest):
        from repro.frontend import parse_c_source

        return parse_c_source(
            request.source,
            extra_macros=dict(request.macros),
            filename=request.filename,
        )

    @staticmethod
    def _sweep_for(request: JobRequest) -> WhatIfSweep:
        return WhatIfSweep(
            paper_machine(num_cores=request.cores),
            use_predictor=not request.exact,
            predictor_runs=request.predictor_runs,
            mode=request.mode,
        )

    def _enqueue(self, job: ServiceJob, front: bool = False) -> None:
        with self._cond:
            self._jobs[job.id] = job
            if front:
                self._pending.appendleft(job.id)
            else:
                self._pending.append(job.id)
            self._m_queued.set(len(self._pending))
            self._cond.notify()

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str, tenant: TenantConfig | None = None) -> ServiceJob | None:
        """The job, or ``None`` if unknown / owned by another tenant."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if tenant is not None and job.tenant != tenant.name:
            return None
        return job

    def jobs(self) -> list[ServiceJob]:
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str, tenant: TenantConfig | None = None) -> ServiceJob | None:
        """Request cancellation; immediate for queued jobs, at the next
        batch boundary for running ones.  Returns the job or ``None``."""
        job = self.get(job_id, tenant)
        if job is None:
            return None
        job.cancel_event.set()
        with self._cond:
            if job.status == "queued":
                try:
                    self._pending.remove(job.id)
                except ValueError:
                    pass
                self._m_queued.set(len(self._pending))
                self._finish(job, "cancelled")
        return job

    # -- worker loop ---------------------------------------------------------

    def _next_job(self) -> ServiceJob | None:
        with self._cond:
            while not self._pending and not self._draining:
                self._cond.wait(timeout=0.2)
                if not self._pending:
                    return None
            if self._draining or not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            self._m_queued.set(len(self._pending))
            if job.terminal:  # cancelled while queued
                return None
            job._set_status("running")
            self._m_running.inc(1)
            return job

    def _worker(self) -> None:
        while not self._draining:
            job = self._next_job()
            if job is None:
                continue
            try:
                self._run_job(job)
            except ReproError as exc:
                job.append_row({"type": "diagnostic", **exc.to_dict()})
                self._finish(job, "failed", error=exc.to_dict())
            except Exception as exc:  # noqa: BLE001 - never kill the worker
                logger.exception("job %s died unexpectedly", job.id)
                self._finish(job, "failed", error={
                    "code": "REPRO-X000",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            finally:
                self._m_running.inc(-1)

    def _finish(self, job: ServiceJob, status: str,
                error: dict | None = None) -> None:
        job._set_status(status, error=error)
        self._m_jobs.labels(tenant=job.tenant, status=status).inc()
        if job.started_at is not None and job.finished_at is not None:
            self._m_job_seconds.observe(job.finished_at - job.started_at)

    def _park(self, job: ServiceJob) -> None:
        """Drain hit mid-job: back to the queue, front position."""
        job.requeues += 1
        job._set_status("queued")
        with self._cond:
            self._pending.appendleft(job.id)
            self._m_queued.set(len(self._pending))
        logger.info("job %s parked by drain (requeue #%d)",
                    job.id, job.requeues)

    def _run_job(self, job: ServiceJob) -> None:
        """Evaluate one job's grid in batches through the shared engine."""
        request = job.request
        policy = FailurePolicy(
            keep_going=True, max_failure_rate=request.max_failure_rate
        )
        try:
            kernels = self._parse(request)
        except ReproError as exc:
            # The submit-time parse succeeded, so this is rare (a parse
            # of a restored job after a restart, with the bug fixed in
            # neither); surface it as the job's terminal error.
            job.append_row({"type": "diagnostic", **exc.to_dict()})
            self._finish(job, "failed", error=exc.to_dict())
            return
        sweep = self._sweep_for(request)
        budget = request.budget()
        t0 = time.monotonic()
        with span("service.job", job=job.id, tenant=job.tenant):
            for kernel in kernels:
                cell_jobs = sweep.point_jobs(
                    kernel.nest, request.threads, request.chunks,
                    budget=budget,
                )
                for start in range(0, len(cell_jobs), self.batch_cells):
                    if self._draining:
                        self._park(job)
                        return
                    if job.cancel_event.is_set():
                        self._finish(job, "cancelled")
                        return
                    batch = cell_jobs[start:start + self.batch_cells]
                    try:
                        self._run_batch(job, kernel.name, batch, policy)
                    except CircuitOpenError as exc:
                        job.append_row(
                            {"type": "diagnostic", **exc.to_dict()}
                        )
                        self._summarize(job, policy, t0, status="failed",
                                        error=exc.to_dict())
                        return
        if job.cancel_event.is_set():
            self._finish(job, "cancelled")
            return
        self._summarize(job, policy, t0, status="done")

    def _run_batch(self, job: ServiceJob, kernel_name: str, batch,
                   policy: FailurePolicy) -> None:
        def _on_outcome(outcome) -> None:
            spec = outcome.job.spec
            cell = {
                "kernel": kernel_name,
                "threads": spec.get("threads"),
                "chunk": spec.get("chunk"),
            }
            if outcome.ok:
                point = SweepPoint.from_dict(outcome.result)
                row = {
                    "type": "cell",
                    **cell,
                    "fs_cases": point.fs_cases,
                    "fs_cycles": point.fs_cycles,
                    "wall_cycles": point.wall_cycles,
                    "fs_share": point.fs_share,
                    "fidelity": point.fidelity,
                    "from_cache": outcome.from_cache,
                }
                if point.degradation is not None:
                    row["degradation"] = point.degradation
                job.append_row(row)
                with job._cond:
                    job.cells_done += 1
                    if outcome.from_cache:
                        job.cells_cached += 1
                self._m_cells.labels(status="done").inc()
                if outcome.from_cache:
                    self._m_cells.labels(status="from_cache").inc()
                policy.record_success()
            else:
                cancelled = outcome.error_code == JobCancelledError.code
                report = FailureReport.from_outcome(
                    outcome, kind="service.cell", point=cell
                )
                job.append_row({
                    "type": "diagnostic",
                    **cell,
                    "code": report.code,
                    "message": report.message,
                    "attempts": report.attempts,
                })
                with job._cond:
                    job.cells_failed += 1
                self._m_cells.labels(
                    status="cancelled" if cancelled else "failed"
                ).inc()
                if not cancelled:
                    # Cancellations are back-pressure, not failures:
                    # they must not trip the circuit breaker.
                    policy.record_failure(report)

        with self._engine_lock:
            self.engine.run(
                batch,
                on_outcome=_on_outcome,
                should_stop=job.cancel_event.is_set,
            )

    def _summarize(self, job: ServiceJob, policy: FailurePolicy,
                   t0: float, status: str,
                   error: dict | None = None) -> None:
        best = None
        best_wall = None
        for row in job.rows():
            if row.get("type") == "cell" and (
                best_wall is None or row["wall_cycles"] < best_wall
            ):
                best_wall = row["wall_cycles"]
                best = {k: row[k] for k in
                        ("kernel", "threads", "chunk", "wall_cycles")}
        summary: dict[str, Any] = {
            "type": "summary",
            "job": job.id,
            "status": status,
            "cells": {
                "total": job.cells_total,
                "done": job.cells_done,
                "failed": job.cells_failed,
                "from_cache": job.cells_cached,
            },
            "failures": len(policy.failures),
            "elapsed_s": round(time.monotonic() - t0, 6),
        }
        if best is not None:
            summary["best"] = best
        job.append_row(summary)
        self._finish(job, status, error=error)

    # -- persistence ---------------------------------------------------------

    def queue_state(self) -> dict:
        """JSON-able snapshot of every job still waiting to run."""
        with self._cond:
            queued = [
                self._jobs[job_id].persist_doc()
                for job_id in self._pending
                if not self._jobs[job_id].terminal
            ]
        return {"version": _QUEUE_STATE_VERSION, "jobs": queued}

    def save_state(self, path: str | os.PathLike | None = None) -> Path | None:
        """Atomically persist :meth:`queue_state` (drain survivors)."""
        target = Path(path) if path else self.state_path
        if target is None:
            return None
        state = self.queue_state()
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=".queue-", suffix=".json"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=1)
        os.replace(tmp, target)
        logger.info(
            "queue state: %d job(s) persisted to %s",
            len(state["jobs"]), target,
        )
        return target

    def load_state(self, path: str | os.PathLike | None = None) -> int:
        """Re-queue jobs persisted by an earlier drain; returns count.

        Jobs whose tenant no longer exists are dropped with a warning
        (quota identity is gone); everything else re-enters the queue in
        its persisted order.  The consumed state file is removed so a
        crash loop cannot double-queue.
        """
        target = Path(path) if path else self.state_path
        if target is None or not target.is_file():
            return 0
        try:
            state = json.loads(target.read_text(encoding="utf-8"))
            if state.get("version") != _QUEUE_STATE_VERSION:
                raise ValueError(f"unknown version {state.get('version')!r}")
            docs = state["jobs"]
        except (ValueError, KeyError, OSError) as exc:
            logger.warning("ignoring unreadable queue state %s: %s",
                           target, exc)
            return 0
        restored = 0
        for doc in docs:
            tenant_name = str(doc.get("tenant", ""))
            if tenant_name not in self.tenants.tenants:
                logger.warning(
                    "dropping persisted job %s: tenant %r no longer exists",
                    doc.get("id"), tenant_name,
                )
                continue
            try:
                request = JobRequest.from_dict(doc["request"])
                cells = self._admit_grid(
                    self.tenants.tenants[tenant_name], request
                )
            except (ReproError, KeyError) as exc:
                logger.warning("dropping persisted job %s: %s",
                               doc.get("id"), exc)
                continue
            job = ServiceJob(
                tenant=tenant_name,
                request=request,
                cells_total=cells,
                job_id=str(doc.get("id")) or None,
                created_at=doc.get("created_at"),
            )
            job.requeues = int(doc.get("requeues", 0))
            self._enqueue(job)
            restored += 1
        try:
            target.unlink()
        except OSError:
            pass
        if restored:
            logger.info("restored %d job(s) from %s", restored, target)
        return restored
