"""``repro.service`` — analysis-as-a-service over HTTP/JSON.

PR-7 layer: a stdlib-only daemon (``repro-fs serve``) that accepts
kernel source + machine/schedule grids over ``POST /v1/jobs``, runs
the sweeps through one shared, memoizing
:class:`~repro.engine.Engine`, streams per-cell results back as NDJSON
while they compute, and exposes its own health on a Prometheus
``/metrics`` endpoint.

Layout::

    tenants.py   API keys, quotas, token-bucket rate limits
    queue.py     admission control + worker threads + drain persistence
    api.py       ThreadingHTTPServer routes, REPRO-* → HTTP mapping
    client.py    stdlib urllib client (scripts, CI smoke, tests)
    daemon.py    boot/serve/SIGTERM-drain lifecycle

See ``docs/SERVICE.md`` for the API reference and runbook.
"""

from repro.service.api import STATUS_BY_EXIT, make_server
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ServeConfig, build_queue, serve
from repro.service.queue import JobQueue, JobRequest, ServiceJob
from repro.service.tenants import TenantConfig, TenantRegistry, TokenBucket

__all__ = [
    "STATUS_BY_EXIT",
    "make_server",
    "ServiceClient",
    "ServiceClientError",
    "ServeConfig",
    "build_queue",
    "serve",
    "JobQueue",
    "JobRequest",
    "ServiceJob",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
]
