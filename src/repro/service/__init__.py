"""``repro.service`` — analysis-as-a-service over HTTP/JSON.

PR-7 layer: a stdlib-only daemon (``repro-fs serve``) that accepts
kernel source + machine/schedule grids over ``POST /v1/jobs``, runs
the sweeps through one shared, memoizing
:class:`~repro.engine.Engine`, streams per-cell results back as NDJSON
while they compute, and exposes its own health on a Prometheus
``/metrics`` endpoint.

PR-8 hardening: crash-durable, self-healing operation — a write-ahead
job journal with checkpoint/resume (``journal.py``), a ``starting →
ready → degraded → draining`` health state machine with load shedding
(``health.py``), worker supervision with poison-job quarantine
(``REPRO-E105``), and disconnect-safe client streaming (``?from=N``).

Layout::

    tenants.py   API keys, quotas, token-bucket rate limits
    queue.py     admission control + workers + supervision + recovery
    journal.py   fsync'd, checksummed write-ahead journal segments
    health.py    the health state machine feeding /healthz + shedding
    api.py       ThreadingHTTPServer routes, REPRO-* → HTTP mapping
    client.py    stdlib urllib client (retry/backoff, stream resume)
    daemon.py    boot/recover/serve/SIGTERM-drain lifecycle

See ``docs/SERVICE.md`` for the API reference and the operations &
failure-modes runbook.
"""

from repro.service.api import STATUS_BY_EXIT, make_server
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ServeConfig, build_queue, serve
from repro.service.health import HealthMonitor
from repro.service.journal import Journal, JobLedger
from repro.service.queue import JobQueue, JobRequest, ServiceJob
from repro.service.tenants import TenantConfig, TenantRegistry, TokenBucket

__all__ = [
    "STATUS_BY_EXIT",
    "make_server",
    "ServiceClient",
    "ServiceClientError",
    "ServeConfig",
    "build_queue",
    "serve",
    "HealthMonitor",
    "Journal",
    "JobLedger",
    "JobQueue",
    "JobRequest",
    "ServiceJob",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
]
