"""Daemon lifecycle: boot, serve, drain on SIGTERM/SIGINT, exit 0.

:func:`serve` is what ``repro-fs serve`` runs.  Boot order:

1. load tenants (``--tenants-file`` or the key-less ``public`` default),
2. build the shared :class:`~repro.engine.Engine` (one result store →
   cross-tenant warm cache),
3. recover durable state — with ``--journal-dir``, replay the
   write-ahead journal (:meth:`JobQueue.recover`): unfinished jobs are
   re-admitted with their already-streamed rows restored at the same
   offsets, so a client resuming with ``?from=N`` sees every row
   exactly once even after a SIGKILL; without a journal, fall back to
   the legacy drain state file (:meth:`JobQueue.load_state`),
4. start the queue workers + supervisor (health flips ``starting →
   ready``) and the ``ThreadingHTTPServer`` (HTTP runs on a background
   thread; the main thread parks on a shutdown event).

Shutdown contract (the part ops scripts rely on): the **first**
SIGTERM or SIGINT flips the service into draining mode —

* ``/healthz`` reports ``draining`` and new submissions answer 503
  (``REPRO-E104``) with ``Retry-After``,
* streaming readers are released with an ``interrupted`` row,
* in-flight sweep batches run to completion; running jobs are then
  parked back into the queue,
* queue state is persisted (journal when configured, else
  ``--state-file``),
* the process exits **0**.

A SIGKILL (or OOM kill, or power loss) skips all of that — which is
exactly what the journal exists for: the next boot replays it and
resumes mid-sweep from the last durable batch.  Crashes are *supposed*
to be survivable; ``make chaos-smoke`` proves it in a kill-9 loop.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.engine import make_engine
from repro.service.health import HealthMonitor
from repro.service.journal import Journal
from repro.service.queue import JobQueue
from repro.service.tenants import TenantRegistry
from repro.util import get_logger

__all__ = ["ServeConfig", "build_queue", "serve"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro-fs serve`` needs to boot a daemon."""

    host: str = "127.0.0.1"
    port: int = 8377
    #: Engine worker processes (sweep cells run here); per shard when
    #: ``shards > 1``.
    workers: int = 2
    #: Partition engine batches by job key across this many independent
    #: worker pools (1 = the classic single-pool engine).
    shards: int = 1
    #: In-memory result-tier budget in MiB, shared across every
    #: shard/tenant (0 disables the memory tier).
    mem_cache_mb: int = 64
    #: Queue worker threads (jobs progressing concurrently).
    concurrency: int = 2
    batch_cells: int = 16
    tenants_file: str | None = None
    #: Queue-state file for drain/restart round trips (legacy path;
    #: superseded by ``journal_dir`` when both are given).
    state_file: str | None = None
    #: Result-store override; ``None`` = the shared default cache dir.
    store_dir: str | None = None
    use_cache: bool = True
    timeout_s: float | None = None
    #: Write-ahead journal directory.  Set → crash-durable operation:
    #: admissions/rows/terminal states are fsync'd before publication
    #: and replayed on boot.
    journal_dir: str | None = None
    #: Worker-process crashes a single job may cause before it is
    #: quarantined with ``REPRO-E105`` (0 disables).
    quarantine_after: int = 3
    #: Queued-job ceiling before admission sheds with 503 ``REPRO-E106``
    #: (0 = unbounded).
    max_queue_depth: int = 0
    #: Detector engine for every sweep cell ("auto" prefers the JIT
    #: tier when numba is installed).  Result-invariant perf knob.
    detector_engine: str = "auto"
    #: Segment-parallel simulation workers per analysis (1 = serial;
    #: result-invariant, see repro.model.simparallel).
    sim_jobs: int = 1

    def tenants(self) -> TenantRegistry:
        if self.tenants_file:
            return TenantRegistry.from_file(self.tenants_file)
        return TenantRegistry.default()


def build_queue(config: ServeConfig) -> JobQueue:
    """Tenants + engine + journal + queue, wired but not yet started."""
    from repro.engine import ResultStore

    store = None
    if config.store_dir:
        store = ResultStore(Path(config.store_dir))
    mem_cache = None
    if config.use_cache and config.mem_cache_mb > 0:
        # The process-wide shared tier: every shard — and therefore
        # every tenant's warm cells — reads the same memory LRU.
        from repro.engine import shared_memcache

        mem_cache = shared_memcache(
            max_bytes=config.mem_cache_mb * 2**20
        )
    engine = make_engine(
        jobs=config.workers,
        shards=config.shards,
        use_cache=config.use_cache,
        store=store,
        mem_cache=mem_cache,
        mem_cache_mb=config.mem_cache_mb,
        timeout_s=config.timeout_s,
    )
    journal = Journal(config.journal_dir) if config.journal_dir else None
    return JobQueue(
        config.tenants(),
        engine,
        concurrency=config.concurrency,
        batch_cells=config.batch_cells,
        state_path=config.state_file,
        journal=journal,
        health=HealthMonitor(),
        quarantine_after=config.quarantine_after,
        max_queue_depth=config.max_queue_depth,
        detector_engine=config.detector_engine,
        sim_jobs=config.sim_jobs,
    )


def serve(config: ServeConfig, ready=None, stop_event=None) -> int:
    """Run the daemon until a signal (or ``stop_event``) drains it.

    ``ready`` (optional callable) fires with the bound
    :class:`~repro.service.api.ServiceServer` once the socket is
    listening — tests use it to learn the ephemeral port.
    ``stop_event`` substitutes for the signal handlers when serving
    from a thread that cannot own them.  Returns the process exit code
    (0 for a clean drain).
    """
    from repro.service.api import make_server

    queue = build_queue(config)
    if queue.journal is not None:
        restored = queue.recover()
        if restored:
            logger.info("recovered %d journaled job(s) from %s",
                        restored, config.journal_dir)
    else:
        restored = queue.load_state()
        if restored:
            logger.info("restored %d drained job(s) from %s",
                        restored, config.state_file)
    queue.start()  # health: starting → ready
    server = make_server(config.host, config.port, queue)
    host, port = server.server_address[:2]
    logger.info(
        "repro-fs service listening on %s:%d (%d tenant(s), "
        "%d engine worker(s) in %d shard(s), %d queue worker(s)%s)",
        host, port, len(queue.tenants), queue.engine.jobs, config.shards,
        config.concurrency,
        ", journaled" if queue.journal is not None else "",
    )

    shutdown = stop_event if stop_event is not None else threading.Event()

    if stop_event is None and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):  # noqa: ARG001 - signal API
            logger.info(
                "received %s: draining", signal.Signals(signum).name
            )
            shutdown.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    http_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1},
        name="repro-svc-http", daemon=True,
    )
    http_thread.start()
    if ready is not None:
        ready(server)

    try:
        shutdown.wait()
    finally:
        # Drain: release streaming readers, stop accepting, finish
        # in-flight batches, persist the queue, exit clean.
        server.draining.set()
        queue.drain(persist=True)
        server.shutdown()
        http_thread.join(timeout=5.0)
        server.server_close()
        logger.info("drain complete; exiting 0")
    return 0
