"""A tiny stdlib client for the analysis service.

Wraps the HTTP/JSON API in typed helpers so scripts, tests and the CI
smoke job never hand-roll ``urllib`` calls::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8377", api_key="sk-alice")
    job = client.submit(source=open("kernel.c").read(), threads=[2, 4])
    for row in client.stream(job["id"]):     # live NDJSON rows
        print(row["type"], row)
    final = client.wait(job["id"])           # poll until terminal

Server-side ``REPRO-*`` rejections surface as
:class:`ServiceClientError` carrying the HTTP status and the
structured error document, so callers can branch on
``exc.code``/``exc.status`` exactly like the CLI branches on exit
codes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx response, carrying the server's structured error."""

    def __init__(self, status: int, error: Mapping[str, Any] | None):
        self.status = status
        self.error = dict(error or {})
        #: The stable ``REPRO-*`` diagnostic code, when the server sent one.
        self.code = str(self.error.get("code", ""))
        message = self.error.get("message", "no error document")
        super().__init__(f"HTTP {status} [{self.code or '?'}]: {message}")


class ServiceClient:
    """HTTP client for one service endpoint (and optionally one tenant)."""

    def __init__(
        self,
        base_url: str,
        api_key: str | None = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> urllib.request.Request:
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers["X-Api-Key"] = self.api_key
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )

    def _json(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict:
        req = self._request(method, path, body)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._wrap(exc) from exc

    @staticmethod
    def _wrap(exc: urllib.error.HTTPError) -> ServiceClientError:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            error = doc.get("error")
        except (ValueError, OSError):
            error = None
        return ServiceClientError(exc.code, error)

    # -- API -----------------------------------------------------------------

    def healthz(self) -> dict:
        """The service's liveness document."""
        return self._json("GET", "/healthz")

    def submit(
        self,
        source: str,
        threads: Sequence[int] | None = None,
        chunks: Sequence[int] | None = None,
        **options: Any,
    ) -> dict:
        """``POST /v1/jobs``; returns the 202 document (``id`` inside).

        ``options`` passes through any other :class:`JobRequest` field
        (``cores``, ``mode``, ``exact``, ``macros``, ``deadline_s``,
        ``max_iters``, ...).
        """
        body: dict[str, Any] = {"source": source, **options}
        if threads is not None:
            body["threads"] = list(threads)
        if chunks is not None:
            body["chunks"] = list(chunks)
        return self._json("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """This tenant's jobs, oldest first."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def results(self, job_id: str) -> dict:
        """All rows produced so far (non-streaming snapshot)."""
        return self._json("GET", f"/v1/jobs/{job_id}/results")

    def stream(self, job_id: str) -> Iterator[dict]:
        """``GET .../results?stream=1`` — yield NDJSON rows as they
        arrive, ending when the job reaches a terminal state."""
        req = self._request("GET", f"/v1/jobs/{job_id}/results?stream=1")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                for raw in resp:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._wrap(exc) from exc

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/{id}``."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout_s: float = 120.0, poll_s: float = 0.15
    ) -> dict:
        """Poll until the job is terminal; returns its final status doc."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id)
            if doc["status"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']!r} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)

    def wait_ready(self, timeout_s: float = 15.0, poll_s: float = 0.1) -> dict:
        """Block until ``/healthz`` answers (daemon boot helper)."""
        deadline = time.monotonic() + timeout_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last = exc
                time.sleep(poll_s)
        raise TimeoutError(
            f"service at {self.base_url} not ready after {timeout_s:g}s: "
            f"{last}"
        )

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus text exposition."""
        req = self._request("GET", "/metrics")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._wrap(exc) from exc

    def metric_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """One sample's value from ``/metrics``, or ``None`` if absent.

        ``labels`` must match the sample's label set exactly (order
        does not matter) — a subset does not match.
        """
        want = dict(labels or {})
        for line in self.metrics().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            metric, _, value = line.rpartition(" ")
            if "{" in metric:
                mname, _, rest = metric.partition("{")
                pairs = {}
                for item in rest.rstrip("}").split(","):
                    if not item:
                        continue
                    k, _, v = item.partition("=")
                    pairs[k] = v.strip('"')
            else:
                mname, pairs = metric, {}
            if mname == name and pairs == want:
                try:
                    return float(value)
                except ValueError:
                    return None
        return None
