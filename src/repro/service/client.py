"""A tiny stdlib client for the analysis service.

Wraps the HTTP/JSON API in typed helpers so scripts, tests and the CI
smoke job never hand-roll ``urllib`` calls::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8377", api_key="sk-alice")
    job = client.submit(source=open("kernel.c").read(), threads=[2, 4])
    for row in client.stream(job["id"]):     # live NDJSON rows
        print(row["type"], row)
    final = client.wait(job["id"])           # poll until terminal

Resilience: idempotent **GET** requests retry on connection failures
and 503 back-pressure with exponential backoff + deterministic-free
jitter (POST/DELETE are never retried — submission is not idempotent),
and :meth:`stream` survives disconnects — including a daemon SIGKILL +
restart — by reconnecting with ``?from=N`` at the last row offset it
saw, so callers observe every row exactly once.  503 responses honour
the server's ``Retry-After`` header when present.

Server-side ``REPRO-*`` rejections surface as
:class:`ServiceClientError` carrying the HTTP status, the structured
error document and any ``Retry-After`` hint, so callers can branch on
``exc.code``/``exc.status`` exactly like the CLI branches on exit
codes.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["ServiceClient", "ServiceClientError"]

#: Network-level failures worth retrying on idempotent requests.  Note
#: ``urllib.error.HTTPError`` is an ``OSError`` subclass — it must be
#: caught first wherever both can fire.
_RETRYABLE = (
    urllib.error.URLError,
    ConnectionError,
    http.client.HTTPException,
    OSError,
)


class ServiceClientError(Exception):
    """A non-2xx response, carrying the server's structured error."""

    def __init__(
        self,
        status: int,
        error: Mapping[str, Any] | None,
        retry_after_s: float | None = None,
    ):
        self.status = status
        self.error = dict(error or {})
        #: The stable ``REPRO-*`` diagnostic code, when the server sent one.
        self.code = str(self.error.get("code", ""))
        #: Parsed ``Retry-After`` header on 429/503 responses, if any.
        self.retry_after_s = retry_after_s
        message = self.error.get("message", "no error document")
        super().__init__(f"HTTP {status} [{self.code or '?'}]: {message}")


class ServiceClient:
    """HTTP client for one service endpoint (and optionally one tenant).

    ``retries``/``backoff_s``/``backoff_max_s`` govern the idempotent
    retry loop: attempt *k* sleeps ``min(backoff_s * 2**(k-1),
    backoff_max_s)`` plus up to 25% jitter.
    """

    def __init__(
        self,
        base_url: str,
        api_key: str | None = None,
        timeout_s: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.1,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s

    # -- plumbing ------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> urllib.request.Request:
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers["X-Api-Key"] = self.api_key
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_s * (2 ** (attempt - 1)), self.backoff_max_s)
        return base + random.uniform(0.0, base * 0.25)

    def _json(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict:
        """One request → parsed JSON; GETs retry, writes never do."""
        idempotent = method == "GET"
        attempt = 0
        while True:
            req = self._request(method, path, body)
            try:
                with urllib.request.urlopen(
                    req, timeout=self.timeout_s
                ) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                err = self._wrap(exc)
                if (
                    idempotent and err.status == 503
                    and attempt < self.retries
                ):
                    attempt += 1
                    delay = self._backoff(attempt)
                    if err.retry_after_s is not None:
                        delay = min(err.retry_after_s, self.backoff_max_s)
                    time.sleep(delay)
                    continue
                raise err from exc
            except _RETRYABLE:
                if not idempotent or attempt >= self.retries:
                    raise
                attempt += 1
                time.sleep(self._backoff(attempt))

    @staticmethod
    def _wrap(exc: urllib.error.HTTPError) -> ServiceClientError:
        try:
            doc = json.loads(exc.read().decode("utf-8"))
            error = doc.get("error")
        except (ValueError, OSError):
            error = None
        retry_after: float | None = None
        raw = exc.headers.get("Retry-After") if exc.headers else None
        if raw is not None:
            try:
                retry_after = float(raw)
            except ValueError:
                retry_after = None
        return ServiceClientError(exc.code, error, retry_after)

    # -- API -----------------------------------------------------------------

    def healthz(self) -> dict:
        """The service's health state machine document."""
        return self._json("GET", "/healthz")

    def submit(
        self,
        source: str,
        threads: Sequence[int] | None = None,
        chunks: Sequence[int] | None = None,
        **options: Any,
    ) -> dict:
        """``POST /v1/jobs``; returns the 202 document (``id`` inside).

        ``options`` passes through any other :class:`JobRequest` field
        (``cores``, ``mode``, ``exact``, ``macros``, ``deadline_s``,
        ``max_iters``, ...).  Never retried — submission is not
        idempotent; on a 429/503 the raised error carries
        ``retry_after_s`` for the caller's own loop.
        """
        body: dict[str, Any] = {"source": source, **options}
        if threads is not None:
            body["threads"] = list(threads)
        if chunks is not None:
            body["chunks"] = list(chunks)
        return self._json("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """This tenant's jobs, oldest first."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def results(self, job_id: str, from_offset: int = 0) -> dict:
        """Rows produced so far (non-streaming snapshot).

        ``from_offset`` skips rows already seen (server-side ``?from``).
        """
        path = f"/v1/jobs/{job_id}/results"
        if from_offset:
            path += f"?from={from_offset}"
        return self._json("GET", path)

    def stream(
        self,
        job_id: str,
        from_offset: int = 0,
        retries: int | None = None,
    ) -> Iterator[dict]:
        """``GET .../results?stream=1`` — yield NDJSON rows as they
        arrive, ending when the job reaches a terminal state.

        Disconnect-safe: on a dropped connection (server restart,
        SIGKILL, network blip) the stream reconnects with ``?from=N``
        at the last row offset it delivered, after exponential backoff.
        Row offsets are crash-stable on the server, so every row is
        yielded exactly once even across a daemon crash + recovery.

        ``retries`` bounds *consecutive* failed reconnect attempts
        (default: the client's ``retries``); any successfully delivered
        row resets the count.  Synthetic ``interrupted`` rows (server
        drain markers) are yielded but do not advance the offset — they
        are not stored rows.
        """
        budget = self.retries if retries is None else retries
        seen = from_offset
        failures = 0
        while True:
            req = self._request(
                "GET", f"/v1/jobs/{job_id}/results?stream=1&from={seen}"
            )
            try:
                with urllib.request.urlopen(
                    req, timeout=self.timeout_s
                ) as resp:
                    for raw in resp:
                        line = raw.strip()
                        if not line:
                            continue
                        row = json.loads(line.decode("utf-8"))
                        if row.get("type") != "interrupted":
                            seen += 1
                            failures = 0
                        yield row
                return
            except urllib.error.HTTPError as exc:
                raise self._wrap(exc) from exc
            except _RETRYABLE:
                failures += 1
                if failures > budget:
                    raise
                time.sleep(self._backoff(failures))

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/{id}``."""
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout_s: float = 120.0, poll_s: float = 0.15
    ) -> dict:
        """Poll until the job is terminal; returns its final status doc."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id)
            if doc["status"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']!r} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)

    def wait_ready(self, timeout_s: float = 15.0, poll_s: float = 0.1) -> dict:
        """Block until ``/healthz`` answers ``ready``/``degraded``/
        ``draining`` (daemon boot helper).  A 503 ``starting`` answer —
        journal replay still running — keeps polling like a connection
        failure does."""
        deadline = time.monotonic() + timeout_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceClientError as exc:
                if exc.status != 503:
                    raise
                last = exc
                time.sleep(poll_s)
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last = exc
                time.sleep(poll_s)
        raise TimeoutError(
            f"service at {self.base_url} not ready after {timeout_s:g}s: "
            f"{last}"
        )

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> str:
        """The raw ``/metrics`` Prometheus text exposition."""
        req = self._request("GET", "/metrics")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._wrap(exc) from exc

    def metric_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """One sample's value from ``/metrics``, or ``None`` if absent.

        ``labels`` must match the sample's label set exactly (order
        does not matter) — a subset does not match.
        """
        want = dict(labels or {})
        for line in self.metrics().splitlines():
            if line.startswith("#") or not line.strip():
                continue
            metric, _, value = line.rpartition(" ")
            if "{" in metric:
                mname, _, rest = metric.partition("{")
                pairs = {}
                for item in rest.rstrip("}").split(","):
                    if not item:
                        continue
                    k, _, v = item.partition("=")
                    pairs[k] = v.strip('"')
            else:
                mname, pairs = metric, {}
            if mname == name and pairs == want:
                try:
                    return float(value)
                except ValueError:
                    return None
        return None
