"""Durable append-only job journal: the service's write-ahead log.

The queue-state file from PR 7 only survives *graceful* drains — a
SIGKILL, OOM kill or power loss between SIGTERM and the state write
loses every queued job and all in-flight sweep progress.  The journal
closes that gap with classic write-ahead-logging:

* every job **admission**, **batch of result rows**, **cancellation**,
  **worker-crash count** and **terminal state** is appended to an
  on-disk segment *before* it becomes visible to clients;
* each record is one NDJSON line framed with a CRC32 checksum, and the
  file is flushed + ``fsync``'d per append (batched per result batch),
  so a record the client ever saw is durable;
* on startup :meth:`Journal.replay` folds the segments back into
  per-job state — unfinished jobs are re-admitted with their already
  published rows intact, so a restart re-runs only the interrupted
  batch and a resumed NDJSON stream (``?from=N``) sees neither a lost
  nor a duplicated row;
* replay is **idempotent**: duplicated tails (a record flushed twice
  around a crash) and torn tails (a record half-written when the power
  went) change nothing — row records carry absolute offsets, crash
  records carry absolute totals, terminal records are last-wins, and an
  unparseable/checksum-failing final line is tolerated as a torn write.

Segments rotate by **compaction**: when the active segment outgrows
``max_segment_bytes``, the live (non-terminal) jobs are snapshotted
into a fresh segment which atomically replaces the old ones — the
journal's size is bounded by the working set, not by history.

Record grammar (one line each, ``crc32hex json\\n``)::

    {"type": "admit",    "job": id, "tenant": t, "request": {...},
     "cells_total": n, "created_at": ts, "requeues": n}
    {"type": "rows",     "job": id, "offset": n, "rows": [...]}
    {"type": "cancel",   "job": id}
    {"type": "crash",    "job": id, "count": total}
    {"type": "terminal", "job": id, "status": s, "error": {...}|null}

Fault-injection sites (``REPRO_FAULTS``): ``journal.append`` fires
before a record is framed, ``journal.fsync`` before the fsync syscall
— both let the chaos harness prove the queue degrades instead of
dying when the journal's disk misbehaves.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.resilience.faults import fault_point
from repro.util import get_logger

__all__ = ["Journal", "JournalStats", "JobLedger", "replay_records"]

logger = get_logger(__name__)

#: Bump when the record grammar changes incompatibly; replay ignores
#: segments written by a different major version.
JOURNAL_VERSION = 1

_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.ndjson$")

_RECORD_TYPES = ("admit", "rows", "cancel", "crash", "terminal")


def _frame(record: Mapping[str, Any]) -> bytes:
    """One journal line: ``crc32hex payload\\n`` (crc over the payload)."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def _unframe(line: bytes) -> dict | None:
    """Parse one framed line; ``None`` when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:].rstrip(b"\n")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


@dataclass
class JobLedger:
    """Replayed state of one journaled job.

    ``rows`` holds every durably published result row in offset order;
    ``status`` is ``queued`` until a terminal record lands (``cancel``
    only marks intent — the terminal record still decides).
    """

    job_id: str
    tenant: str = ""
    request: dict = field(default_factory=dict)
    cells_total: int = 0
    created_at: float | None = None
    requeues: int = 0
    rows: list[dict] = field(default_factory=list)
    cancelled: bool = False
    crashes: int = 0
    status: str = "queued"
    error: dict | None = None

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")


def replay_records(records: Iterator[dict]) -> dict[str, JobLedger]:
    """Fold journal records into per-job ledgers (pure, idempotent).

    Unknown record types and records for never-admitted jobs are
    skipped — forward compatibility and torn-compaction tolerance both
    reduce to "ignore what you cannot attribute".
    """
    jobs: dict[str, JobLedger] = {}
    for rec in records:
        rtype = rec.get("type")
        job_id = str(rec.get("job", ""))
        if not job_id or rtype not in _RECORD_TYPES:
            continue
        if rtype == "admit":
            if job_id not in jobs:  # duplicate admits are no-ops
                jobs[job_id] = JobLedger(
                    job_id=job_id,
                    tenant=str(rec.get("tenant", "")),
                    request=dict(rec.get("request") or {}),
                    cells_total=int(rec.get("cells_total", 0)),
                    created_at=rec.get("created_at"),
                    requeues=int(rec.get("requeues", 0)),
                )
            continue
        ledger = jobs.get(job_id)
        if ledger is None:
            continue
        if rtype == "rows":
            offset = int(rec.get("offset", 0))
            rows = rec.get("rows") or []
            have = len(ledger.rows)
            if offset > have:
                # A gap means an earlier record vanished (torn
                # compaction); appending would mis-offset every later
                # row, so drop the record and let re-execution fill in.
                logger.warning(
                    "journal: dropping rows record for %s at offset %d "
                    "(have %d rows)", job_id, offset, have,
                )
                continue
            # Overlap = duplicated tail; keep only the new suffix.
            ledger.rows.extend(rows[have - offset:])
        elif rtype == "cancel":
            ledger.cancelled = True
        elif rtype == "crash":
            ledger.crashes = max(ledger.crashes, int(rec.get("count", 0)))
        elif rtype == "terminal":
            status = str(rec.get("status", "failed"))
            if status in ("done", "failed", "cancelled"):
                ledger.status = status
                err = rec.get("error")
                ledger.error = dict(err) if isinstance(err, Mapping) else None
    return jobs


@dataclass(frozen=True)
class JournalStats:
    """Counters from the last :meth:`Journal.replay`."""

    segments: int = 0
    records: int = 0
    torn_tail: bool = False
    corrupt_records: int = 0


class Journal:
    """Checksummed, fsync'd, atomically-rotated NDJSON segments.

    Thread safety is the caller's job — :class:`repro.service.queue.
    JobQueue` serializes appends under its own lock (appends from
    multiple worker threads must not interleave within one record).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        fsync: bool = True,
        max_segment_bytes: int = 8 << 20,
    ) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self.max_segment_bytes = max_segment_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self._seq = self._latest_seq()
        self.last_replay = JournalStats()

    # -- segment bookkeeping -------------------------------------------------

    def _segments(self) -> list[Path]:
        """Existing segment files, oldest first."""
        found = []
        for entry in self.root.iterdir():
            m = _SEGMENT_RE.match(entry.name)
            if m:
                found.append((int(m.group(1)), entry))
        return [p for _, p in sorted(found)]

    def _latest_seq(self) -> int:
        segs = self._segments()
        if not segs:
            return 0
        return int(_SEGMENT_RE.match(segs[-1].name).group(1))

    def _segment_path(self, seq: int) -> Path:
        return self.root / f"journal-{seq:08d}.ndjson"

    @property
    def active_path(self) -> Path:
        return self._segment_path(self._seq)

    def _open(self):
        if self._fh is None:
            self._fh = open(self.active_path, "ab")
        return self._fh

    # -- writing -------------------------------------------------------------

    def append(self, record: Mapping[str, Any], sync: bool = True) -> None:
        """Durably append one record (fsync'd unless disabled).

        Raises whatever the filesystem raises — the queue catches and
        degrades; a journal that cannot write must not take jobs down
        with it.
        """
        fault_point("journal.append", label=str(record.get("type", "")))
        fh = self._open()
        fh.write(_frame(record))
        fh.flush()
        if sync and self.fsync:
            fault_point("journal.fsync", label=str(record.get("type", "")))
            os.fsync(fh.fileno())
        if fh.tell() >= self.max_segment_bytes:
            self.compact(replay_records(self.records()))

    def sync(self) -> None:
        """fsync the active segment (after a run of ``sync=False`` appends)."""
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                fault_point("journal.fsync", label="batch")
                os.fsync(self._fh.fileno())

    # -- reading -------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Yield every intact record across all segments, oldest first.

        A corrupt/torn *final* line of the *newest* segment is the
        expected signature of a crash mid-write and is silently
        tolerated; corrupt records anywhere else are skipped with a
        warning (and counted in :attr:`last_replay`).
        """
        segments = self._segments()
        torn_tail = False
        corrupt = 0
        total = 0
        for si, seg in enumerate(segments):
            try:
                raw = seg.read_bytes()
            except OSError as exc:
                logger.warning("journal: cannot read %s: %s", seg, exc)
                continue
            lines = raw.split(b"\n")
            if lines and lines[-1] == b"":
                lines.pop()
            for li, line in enumerate(lines):
                rec = _unframe(line + b"\n")
                if rec is None:
                    last_segment = si == len(segments) - 1
                    last_line = li == len(lines) - 1
                    if last_segment and last_line:
                        torn_tail = True  # crash mid-append: expected
                    else:
                        corrupt += 1
                        logger.warning(
                            "journal: skipping corrupt record %s:%d",
                            seg.name, li + 1,
                        )
                    continue
                total += 1
                yield rec
        self.last_replay = JournalStats(
            segments=len(segments), records=total,
            torn_tail=torn_tail, corrupt_records=corrupt,
        )

    def replay(self) -> dict[str, JobLedger]:
        """Fold the whole journal into per-job ledgers."""
        return replay_records(self.records())

    # -- rotation ------------------------------------------------------------

    def compact(self, jobs: Mapping[str, JobLedger] | None = None) -> int:
        """Snapshot live jobs into a fresh segment; drop the history.

        Terminal jobs are forgotten (their results live in the engine
        store); live jobs are rewritten as ``admit`` + one full ``rows``
        record + their crash count.  The new segment is written to a
        temp file, fsync'd and renamed before the old segments are
        removed, so a crash mid-compaction leaves either the old
        history or the complete snapshot — never neither.  Returns the
        number of live jobs carried forward.
        """
        if jobs is None:
            jobs = self.replay()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        old = self._segments()
        self._seq = (self._latest_seq() + 1) if old else self._seq + 1
        target = self._segment_path(self._seq)
        tmp = target.with_suffix(".tmp")
        live = 0
        with open(tmp, "wb") as fh:
            for ledger in jobs.values():
                if ledger.terminal:
                    continue
                live += 1
                fh.write(_frame({
                    "type": "admit", "job": ledger.job_id,
                    "tenant": ledger.tenant, "request": ledger.request,
                    "cells_total": ledger.cells_total,
                    "created_at": ledger.created_at,
                    "requeues": ledger.requeues,
                }))
                if ledger.rows:
                    fh.write(_frame({
                        "type": "rows", "job": ledger.job_id,
                        "offset": 0, "rows": ledger.rows,
                    }))
                if ledger.crashes:
                    fh.write(_frame({
                        "type": "crash", "job": ledger.job_id,
                        "count": ledger.crashes,
                    }))
                if ledger.cancelled:
                    fh.write(_frame({"type": "cancel",
                                     "job": ledger.job_id}))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, target)
        self._sync_dir()
        for seg in old:
            try:
                seg.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        logger.info(
            "journal compacted into %s: %d live job(s) carried forward",
            target.name, live,
        )
        return live

    def _sync_dir(self) -> None:
        """fsync the journal directory (rename durability on POSIX)."""
        if not self.fsync:
            return
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- convenience record writers -----------------------------------------

    def record_admit(self, job_id: str, tenant: str, request: dict,
                     cells_total: int, created_at: float,
                     requeues: int = 0) -> None:
        self.append({
            "type": "admit", "job": job_id, "tenant": tenant,
            "request": request, "cells_total": cells_total,
            "created_at": created_at, "requeues": requeues,
        })

    def record_rows(self, job_id: str, offset: int,
                    rows: list[dict]) -> None:
        self.append({"type": "rows", "job": job_id, "offset": offset,
                     "rows": rows})

    def record_cancel(self, job_id: str) -> None:
        self.append({"type": "cancel", "job": job_id})

    def record_crashes(self, job_id: str, count: int) -> None:
        self.append({"type": "crash", "job": job_id, "count": count})

    def record_terminal(self, job_id: str, status: str,
                        error: dict | None = None) -> None:
        self.append({"type": "terminal", "job": job_id, "status": status,
                     "error": error})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal(root={str(self.root)!r}, seq={self._seq})"
