"""Baseline detectors the paper positions itself against.

Currently: the runtime/trace-based detector family (Section V's related
work) — full-trace replay with word-granularity true/false sharing
classification.
"""

from repro.baselines.runtime_detector import (
    RuntimeFSDetector,
    RuntimeReport,
    RuntimeStats,
    WORD_BYTES,
)

__all__ = ["RuntimeFSDetector", "RuntimeReport", "RuntimeStats", "WORD_BYTES"]
