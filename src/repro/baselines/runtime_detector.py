"""Runtime (trace-based) false-sharing detection — the baseline family.

The paper's related work detects FS *after the fact*: instrument the
binary, capture every memory access, and classify coherence events
offline (Günther & Weidendorfer's DBI tool, MemSpy, Liu's analysis —
refs [8], [16], [13]).  This module implements that approach over the
reproduction's execution traces so the compile-time model can be
compared against the baseline it claims to replace:

* it observes the *executed* interleaved access stream (thread, byte
  address, read/write) — nothing is predicted;
* it tracks the last writer of every cache line *and of every word*,
  classifying each cross-thread event as **true sharing** (the accessor
  touches the very word another thread wrote) or **false sharing**
  (same line, different word) — the word-granularity classification is
  exactly what runtime tools add over hardware counters;
* like all trace tools it pays per-access cost proportional to the
  whole execution, the overhead the paper's Section V holds against it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir.loops import ParallelLoopNest
from repro.ir.refs import AddressSpace
from repro.ir.validate import validate_nest
from repro.machine import MachineConfig
from repro.model.ownership import OwnershipListGenerator

#: Classification granularity: one machine word.
WORD_BYTES = 8


@dataclass
class RuntimeStats:
    """Counts produced by a trace pass."""

    accesses: int = 0
    false_sharing_events: int = 0
    true_sharing_events: int = 0
    lines_with_false_sharing: int = 0
    fs_by_line: Counter = field(default_factory=Counter)

    @property
    def sharing_events(self) -> int:
        return self.false_sharing_events + self.true_sharing_events


@dataclass
class RuntimeReport:
    """Outcome of a runtime-detection pass over one execution."""

    nest_name: str
    num_threads: int
    chunk: int
    stats: RuntimeStats
    space: AddressSpace
    line_size: int

    def victim_arrays(self) -> list[tuple[str, int]]:
        """Arrays ranked by attributed false-sharing events."""
        per_array: Counter = Counter()
        for line, events in self.stats.fs_by_line.items():
            addr = line * self.line_size
            name = "<unknown>"
            for arr in self.space.arrays():
                base = self.space.base(arr.name)
                if base <= addr < base + arr.size_bytes():
                    name = arr.name
                    break
            per_array[name] += events
        return per_array.most_common()


class RuntimeFSDetector:
    """Trace-based FS detection with true/false classification.

    Parameters
    ----------
    machine:
        Supplies the cache line size (the sharing granularity).
    """

    def __init__(self, machine: MachineConfig, block_steps: int = 4096) -> None:
        self.machine = machine
        self.block_steps = block_steps

    def run(
        self,
        nest: ParallelLoopNest,
        num_threads: int,
        chunk: int | None = None,
        space: AddressSpace | None = None,
        max_steps: int | None = None,
    ) -> RuntimeReport:
        """Replay the execution trace and classify sharing events.

        An event is recorded whenever a thread touches a cache line whose
        last writer is a different thread; it is *true* sharing when the
        accessed word itself was last written by that other thread,
        *false* sharing otherwise.  The line's writer is updated on every
        write, mirroring what a DBI tool observes through its hooks.
        """
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        if chunk is not None:
            nest = nest.with_chunk(chunk)
        validate_nest(nest)
        gen = OwnershipListGenerator(
            nest, num_threads, line_size=self.machine.line_size,
            space=space, block_steps=self.block_steps,
        )
        writes = tuple(bool(w) for w in gen.write_mask)
        n_refs = len(writes)
        line_size = self.machine.line_size

        line_writer: dict[int, int] = {}
        word_writer: dict[int, int] = {}
        stats = RuntimeStats()
        fs_lines: set[int] = set()

        for start, envs in gen.enum.blocks(max_steps):
            addr_blocks = [gen.addresses_for_env(e).tolist() for e in envs]
            lengths = [len(b) for b in addr_blocks]
            n_steps = max(lengths, default=0)
            for s in range(n_steps):
                for t in range(num_threads):
                    if s >= lengths[t]:
                        continue
                    row = addr_blocks[t][s]
                    for k in range(n_refs):
                        addr = row[k]
                        line = addr // line_size
                        word = addr // WORD_BYTES
                        last = line_writer.get(line)
                        if last is not None and last != t:
                            if word_writer.get(word) == last:
                                stats.true_sharing_events += 1
                            else:
                                stats.false_sharing_events += 1
                                stats.fs_by_line[line] += 1
                                fs_lines.add(line)
                            if not writes[k]:
                                # A read does not take ownership; the
                                # remote writer keeps the line dirty.
                                pass
                        if writes[k]:
                            line_writer[line] = t
                            word_writer[word] = t
                    stats.accesses += n_refs
        stats.lines_with_false_sharing = len(fs_lines)
        return RuntimeReport(
            nest_name=nest.name,
            num_threads=num_threads,
            chunk=gen.iteration_space.chunk,
            stats=stats,
            space=gen.space,
            line_size=line_size,
        )
