"""Fault injection for the resilience test harness.

Every degradation path in docs/RESILIENCE.md is provable on demand:
the pipeline is instrumented with cheap :func:`fault_point` probes, and
a :class:`FaultPlan` — installed programmatically or via the
``REPRO_FAULTS`` environment variable — decides whether a probe fires
and what happens when it does.

With no plan installed a probe is a single dict lookup plus an environ
``get`` — well under a microsecond, on code paths that are called once
per kernel/job, never per iteration.

Plan syntax (``REPRO_FAULTS``)
------------------------------
Comma-separated fault specs; each spec is colon-separated
``site:action[:key=value...]``::

    REPRO_FAULTS="frontend.parse:raise:match=bad.c"
    REPRO_FAULTS="engine.job:crash:match=t4c8"
    REPRO_FAULTS="store.get:corrupt:times=1,engine.job:latency:delay=0.05"
    REPRO_FAULTS="engine.job:flaky:times=2:dir=/tmp/flaky"

Sites (instrumented probes)
    ``frontend.parse``   start of :func:`repro.frontend.parse_c_source`
    ``engine.job``       inside :func:`repro.engine.job.run_job`
                         (executes in the worker process for pooled
                         runs — a ``crash`` action kills the worker)
    ``store.get``        before a result-store read (``corrupt``
                         garbles the entry on disk first)
    ``store.put``        before a result-store write
    ``journal.append``   before a service-journal record is framed
                         (:meth:`repro.service.journal.Journal.append`)
    ``journal.fsync``    before the journal's fsync syscall
    ``worker.heartbeat`` each queue-worker loop iteration — a ``raise``
                         kills the worker thread, exercising the
                         supervisor's restart path
    ``queue.admit``      start of :meth:`repro.service.queue.JobQueue.
                         submit` (label: tenant name)

Actions
    ``raise``    raise a structured error for the site's layer
                 (``REPRO-X901``)
    ``crash``    ``os._exit(137)`` — indistinguishable from a segfault
                 or OOM kill (``REPRO-X902``)
    ``latency``  sleep ``delay`` seconds, then continue (``REPRO-X903``)
    ``timeout``  sleep ``delay`` seconds (default 3600) — long enough to
                 trip any per-job watchdog
    ``flaky``    raise until ``times`` firings have happened, then
                 succeed — firings are counted in marker files under
                 ``dir`` so they survive worker-process crashes
    ``corrupt``  (``store.get``/``store.put`` only) overwrite the entry
                 with garbage bytes before the real operation runs

Modifiers
    ``match=S``  fire only when the probe's label contains ``S``
    ``times=N``  fire at most N times (per process unless ``dir`` is
                 given; with ``dir``, N times across all processes)
    ``p=F``      fire with probability F (deterministic per label:
                 hashed, not random — reruns behave identically)
    ``delay=F``  seconds for ``latency``/``timeout``
    ``dir=PATH`` marker directory for cross-process counting
"""

from __future__ import annotations

import hashlib
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Iterable

from repro.resilience.errors import FaultInjectedError, UsageError
from repro.util import get_logger

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fault_point",
    "install_plan",
    "wants_corruption",
]

logger = get_logger(__name__)

ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "crash", "latency", "timeout", "flaky", "corrupt")


@dataclass
class FaultSpec:
    """One parsed fault: where it fires, what it does, how often."""

    site: str
    action: str
    match: str = ""
    times: int | None = None
    probability: float | None = None
    delay_s: float = 0.05
    state_dir: str | None = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise UsageError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {_ACTIONS}",
                code="REPRO-U001",
            )

    # -- firing decision -----------------------------------------------------

    def _count(self) -> int:
        """Firings so far (cross-process via marker files when dir set)."""
        if self.state_dir:
            try:
                return len(os.listdir(self.state_dir))
            except FileNotFoundError:
                return 0
        return self.fired

    def _record(self) -> None:
        self.fired += 1
        if self.state_dir:
            os.makedirs(self.state_dir, exist_ok=True)
            marker = os.path.join(self.state_dir, uuid.uuid4().hex)
            with open(marker, "w", encoding="utf-8"):
                pass

    def should_fire(self, site: str, label: str) -> bool:
        if site != self.site:
            return False
        if self.match and self.match not in label:
            return False
        if self.probability is not None:
            # Deterministic "probability": hash the label so that the
            # same point fires identically across retries and reruns.
            h = hashlib.sha256(label.encode("utf-8", "replace")).digest()
            if (h[0] / 255.0) >= self.probability:
                return False
        if self.times is not None and self._count() >= self.times:
            return False
        return True

    # -- execution -----------------------------------------------------------

    def fire(self, site: str, label: str) -> None:
        """Perform the configured action (may raise or kill the process)."""
        self._record()
        where = f"{site}({label})" if label else site
        if self.action == "raise":
            raise FaultInjectedError(
                f"injected failure at {where}",
                code="REPRO-X901",
                context={"site": site, "label": label},
            )
        if self.action == "crash":
            logger.warning("fault plan: crashing process at %s", where)
            os._exit(137)
        if self.action in ("latency", "timeout"):
            delay = self.delay_s if self.action == "latency" else max(
                self.delay_s, 3600.0
            )
            time.sleep(delay)
            return
        if self.action == "flaky":
            budget = self.times if self.times is not None else 1
            if self._count() <= budget:
                raise FaultInjectedError(
                    f"injected flaky failure at {where} "
                    f"({self._count()}/{budget})",
                    code="REPRO-X901",
                    context={"site": site, "label": label},
                )
            return
        # "corrupt" is handled by the instrumented site itself via
        # wants_corruption(); firing it here is a no-op.


def _parse_spec(text: str) -> FaultSpec:
    parts = [p for p in text.strip().split(":") if p != ""]
    if len(parts) < 2:
        raise UsageError(
            f"malformed fault spec {text!r}; expected site:action[:k=v...]",
            code="REPRO-U001",
        )
    site, action, *mods = parts
    spec = FaultSpec(site=site.strip(), action=action.strip().lower())
    for mod in mods:
        key, sep, value = mod.partition("=")
        if not sep:
            raise UsageError(
                f"malformed fault modifier {mod!r} in {text!r}",
                code="REPRO-U001",
            )
        key = key.strip().lower()
        try:
            if key == "match":
                spec.match = value
            elif key == "times":
                spec.times = int(value)
            elif key == "p":
                spec.probability = float(value)
            elif key == "delay":
                spec.delay_s = float(value)
            elif key == "dir":
                spec.state_dir = value
            else:
                raise UsageError(
                    f"unknown fault modifier {key!r} in {text!r}",
                    code="REPRO-U001",
                )
        except ValueError as exc:
            raise UsageError(
                f"bad value for fault modifier {key!r} in {text!r}: {exc}",
                code="REPRO-U001",
            ) from exc
    # flaky without an explicit budget fails exactly once.
    if spec.action == "flaky" and spec.times is None:
        spec.times = 1
    return spec


@dataclass
class FaultPlan:
    """A set of :class:`FaultSpec` entries consulted by every probe."""

    specs: list[FaultSpec] = field(default_factory=list)
    source: str = ""

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` string (empty string → empty plan)."""
        specs = [
            _parse_spec(entry)
            for entry in text.split(",")
            if entry.strip()
        ]
        return cls(specs=specs, source=text)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=list(specs), source="<programmatic>")

    def matching(self, site: str, label: str = "") -> Iterable[FaultSpec]:
        return (s for s in self.specs if s.should_fire(site, label))

    def fire(self, site: str, label: str = "") -> None:
        for spec in list(self.matching(site, label)):
            if spec.action != "corrupt":
                spec.fire(site, label)

    def wants_corruption(self, site: str, label: str = "") -> bool:
        for spec in list(self.matching(site, label)):
            if spec.action == "corrupt":
                spec._record()
                return True
        return False


# -- process-wide plan resolution --------------------------------------------

#: Programmatic override (tests / doctor); wins over the environment.
_OVERRIDE: FaultPlan | None = None
#: Cache of the last parsed environment value.
_ENV_CACHE: tuple[str, FaultPlan] | None = None


class install_plan:
    """Context manager installing a programmatic plan for this process.

    >>> from repro.resilience.faults import FaultPlan, install_plan
    >>> with install_plan(FaultPlan.parse("")):
    ...     pass
    """

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan
        self._saved: FaultPlan | None = None

    def __enter__(self) -> FaultPlan | None:
        global _OVERRIDE
        self._saved = _OVERRIDE
        _OVERRIDE = self.plan
        return self.plan

    def __exit__(self, *exc_info) -> None:
        global _OVERRIDE
        _OVERRIDE = self._saved


def active_plan() -> FaultPlan | None:
    """The plan in force: programmatic override, else ``REPRO_FAULTS``.

    The environment value is re-read on every call (tests monkeypatch
    it) but re-parsed only when it changes.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    global _ENV_CACHE
    raw = os.environ.get(ENV_VAR, "")
    if not raw.strip():
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.parse(raw))
    return _ENV_CACHE[1]


def fault_point(site: str, label: str = "") -> None:
    """Probe: fire any matching fault for ``site``.

    No-op (one environ lookup) unless a plan is installed.  Raising
    probes raise :class:`FaultInjectedError` (or kill the process for
    ``crash`` actions); ``latency`` probes sleep and return.
    """
    plan = active_plan()
    if plan is not None:
        plan.fire(site, label)


def wants_corruption(site: str, label: str = "") -> bool:
    """Probe for sites that implement corruption themselves
    (:meth:`repro.engine.store.ResultStore.get`)."""
    plan = active_plan()
    return plan is not None and plan.wants_corruption(site, label)
