"""Resilience layer: error taxonomy, resource guards, fault injection.

This package is the robustness backbone of the pipeline (see
``docs/RESILIENCE.md``):

- :mod:`repro.resilience.errors` — structured :class:`ReproError`
  taxonomy with stable codes, severities, source spans and CLI exit
  codes;
- :mod:`repro.resilience.budget` — resource budgets and pre-run cost
  estimation for the false-sharing model;
- :mod:`repro.resilience.ladder` — the graceful-degradation ladder
  (exact detector → regression prediction → analytic bound);
- :mod:`repro.resilience.partial` — partial-result semantics for
  sweeps and experiment suites (failure reports, circuit breaker);
- :mod:`repro.resilience.faults` — the fault-injection harness used by
  the resilience test suite and ``repro-fs doctor``;
- :mod:`repro.resilience.doctor` — the self-check behind the
  ``repro-fs doctor`` subcommand.
"""

from __future__ import annotations

from repro.resilience.budget import Budget, CostEstimate, estimate_cost
from repro.resilience.errors import (
    ERROR_CODES,
    EXIT_CODES,
    BudgetExceededError,
    CircuitOpenError,
    CostModelError,
    EngineError,
    FaultInjectedError,
    JobCancelledError,
    ModelError,
    QuotaExceededError,
    ReproError,
    SourceSpan,
    StoreError,
    UsageError,
    WorkerCrashError,
    WorkerTimeoutError,
    error_from_dict,
    register_code,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_point,
    install_plan,
    wants_corruption,
)
from repro.resilience.ladder import (
    FIDELITY_LEVELS,
    LadderOutcome,
    analyze_with_ladder,
)
from repro.resilience.partial import FailurePolicy, FailureReport

__all__ = [
    "ERROR_CODES",
    "EXIT_CODES",
    "FIDELITY_LEVELS",
    "Budget",
    "BudgetExceededError",
    "CircuitOpenError",
    "CostEstimate",
    "CostModelError",
    "EngineError",
    "FailurePolicy",
    "FailureReport",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "JobCancelledError",
    "LadderOutcome",
    "ModelError",
    "QuotaExceededError",
    "ReproError",
    "SourceSpan",
    "StoreError",
    "UsageError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "active_plan",
    "analyze_with_ladder",
    "error_from_dict",
    "estimate_cost",
    "fault_point",
    "install_plan",
    "register_code",
    "wants_corruption",
]
