"""The graceful-degradation ladder: exact → regression → analytic.

When a :class:`~repro.resilience.budget.Budget` rules out the requested
analysis, the right answer inside a compiler pass is not "crash" and
not "silently skip" — it is *the best answer the budget affords, tagged
with how it was obtained*.  The ladder formalizes the three fidelity
levels the paper's machinery supports:

``exact``
    the full lockstep detector over every iteration
    (:meth:`~repro.model.fsmodel.FalseSharingModel.analyze`);
``regression``
    the Section III-E prediction — evaluate a short chunk-run prefix,
    fit ``y = a·x + b``, extrapolate to ``x_max``
    (:class:`~repro.model.regression.FalseSharingPredictor`), with the
    prefix length shrunk to whatever the steps budget allows;
``analytic``
    a closed-form upper bound requiring *no* iteration walk: every
    modeled access can collide with at most ``num_threads − 1`` other
    threads' cached copies, so ``fs_cases ≤ accesses × (T − 1)``.
    Wildly pessimistic, but computable from trip counts alone and
    therefore always within budget.

:func:`analyze_with_ladder` tries levels from the requested one down,
returns a :class:`LadderOutcome` tagging the achieved ``fidelity`` and
the ``degradation`` reason (the budget guard that forced the drop), and
bumps ``resilience_fallbacks_total{level=...}`` so degraded sweeps are
visible in the metrics dump, not just in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.obs import get_registry, span
from repro.resilience.budget import Budget, CostEstimate, estimate_cost
from repro.resilience.errors import BudgetExceededError
from repro.util import get_logger

__all__ = [
    "FIDELITY_LEVELS",
    "LadderOutcome",
    "analyze_with_ladder",
    "fidelity_tier",
]

logger = get_logger(__name__)

#: Fidelity levels in decreasing order of faithfulness.  The exact tier
#: has two spellings: ``"exact"`` (every chunk run simulated) and
#: ``"exact-steady-state"`` (a detected periodic steady state let the
#: model extrapolate the remaining runs *without* approximation — the
#: counters are still bit-identical to the full simulation).  Both map
#: to the ``"exact"`` rung; use :func:`fidelity_tier` to normalize.
FIDELITY_LEVELS = ("exact", "regression", "analytic")

#: Fidelity tags that belong to the exact tier.
EXACT_FIDELITIES = ("exact", "exact-steady-state")


def fidelity_tier(fidelity: str) -> str:
    """Map a result fidelity tag onto its ladder rung.

    ``"exact-steady-state"`` is an *exact* result (the steady-state
    early exit is a lossless extrapolation), so it normalizes to
    ``"exact"``; every other tag maps to itself.
    """
    return "exact" if fidelity in EXACT_FIDELITIES else fidelity


@dataclass(frozen=True)
class LadderOutcome:
    """Result of one budgeted analysis, tagged with how it was obtained.

    ``fs_cases`` is exact (``fidelity="exact"``), extrapolated
    (``"regression"``) or an upper bound (``"analytic"``).
    ``fs_read_fraction`` / ``fs_write_fraction`` carry the observed
    read/write split (the analytic level assumes all-write: invalidation
    cost is the conservative choice).  ``degradation`` is ``None`` when
    the requested level ran, else a human-readable reason naming the
    guard that forced the drop.
    """

    nest_name: str
    num_threads: int
    chunk: int
    fidelity: str
    requested: str
    fs_cases: float
    fs_read_fraction: float
    fs_write_fraction: float
    degradation: str | None = None
    #: Level-specific detail object: FSModelResult for "exact",
    #: FSPrediction for "regression", CostEstimate for "analytic".
    detail: object | None = None

    @property
    def degraded(self) -> bool:
        return self.degradation is not None

    def fs_cycles(self, machine) -> float:
        """``FalseSharing_c`` under this outcome's read/write split."""
        return self.fs_cases * (
            self.fs_read_fraction * machine.fs_read_penalty_cycles
            + self.fs_write_fraction * machine.fs_write_penalty_cycles
        )


def _record_fallback(level: str, reason: str, kernel: str) -> None:
    get_registry().counter(
        "resilience_fallbacks_total",
        "analyses degraded to a cheaper fidelity level by a budget guard",
    ).labels(level=level).inc()
    logger.info(
        "falling back to %s for %s: %s", level, kernel, reason
    )


def _split(fs_cases: int, read_cases: int, write_cases: int) -> tuple[float, float]:
    total = max(fs_cases, 1)
    return read_cases / total, write_cases / total


def _try_exact(model, nest, num_threads, chunk, budget) -> LadderOutcome:
    result = model.analyze(nest, num_threads, chunk=chunk, budget=budget)
    read_f, write_f = _split(
        result.fs_cases, result.fs_read_cases, result.fs_write_cases
    )
    return LadderOutcome(
        nest_name=result.nest_name,
        num_threads=num_threads,
        chunk=result.chunk,
        # Pass the model's own tag through: "exact-steady-state" when the
        # periodic early exit fired (still bit-identical counters), plain
        # "exact" otherwise.  Ladder consumers compare tiers via
        # fidelity_tier(), so both count as the exact rung.
        fidelity=getattr(result, "fidelity", "exact"),
        requested="exact",
        fs_cases=float(result.fs_cases),
        fs_read_fraction=read_f,
        fs_write_fraction=write_f,
        detail=result,
    )


def _fit_runs(estimate: CostEstimate, budget: Budget | None, requested: int) -> int:
    """Largest prefix (in chunk runs) the steps budget allows, capped at
    ``requested``; 0 when not even one run fits."""
    runs = min(requested, max(estimate.total_chunk_runs, 1))
    if budget is None or budget.max_steps is None:
        return runs
    per_run = max(estimate.steps_per_chunk_run, 1)
    affordable = budget.max_steps // per_run
    return min(runs, affordable)


def _try_regression(
    model, nest, num_threads, chunk, budget, predictor_runs, method
) -> tuple[LadderOutcome | None, str | None]:
    """Attempt the regression level; (outcome, None) on success,
    (None, reason) when it cannot fit the budget."""
    from repro.model.regression import FalseSharingPredictor

    estimate = estimate_cost(nest, num_threads, model.machine, chunk=chunk)
    runs = _fit_runs(estimate, budget, predictor_runs)
    if runs <= 0:
        return None, (
            f"not even one chunk run ({estimate.steps_per_chunk_run:,} "
            f"steps) fits the steps budget"
        )
    if budget is not None and not budget.allows_state(estimate.state_bytes):
        return None, (
            f"estimated cache-state memory ({estimate.state_bytes:,} B) "
            "exceeds the budget"
        )
    predictor = FalseSharingPredictor(model, n_runs=runs, method=method)
    try:
        pred = predictor.predict(nest, num_threads, chunk=chunk, budget=budget)
    except BudgetExceededError as exc:
        return None, exc.message
    prefix = pred.prefix_result
    read_f, write_f = _split(
        prefix.fs_cases, prefix.fs_read_cases, prefix.fs_write_cases
    )
    return (
        LadderOutcome(
            nest_name=pred.nest_name,
            num_threads=num_threads,
            chunk=pred.chunk,
            fidelity="regression",
            requested="regression",
            fs_cases=pred.predicted_fs_cases,
            fs_read_fraction=read_f,
            fs_write_fraction=write_f,
            detail=pred,
        ),
        None,
    )


def _analytic_bound(machine, nest, num_threads, chunk) -> LadderOutcome:
    """The always-affordable level: ``fs_cases ≤ accesses × (T − 1)``.

    Each modeled access touches one cache line; in the detector's
    1-to-All comparison that line can at worst be resident in every
    other thread's cache state, contributing ``T − 1`` FS cases.  The
    bound is computed from trip-count arithmetic only — no iteration is
    ever enumerated, so it cannot exceed any budget.
    """
    estimate = estimate_cost(nest, num_threads, machine, chunk=chunk)
    if chunk is not None:
        bound_chunk = chunk
    else:
        from repro.model.schedule import effective_chunk

        bound_chunk = effective_chunk(nest, num_threads)
    return LadderOutcome(
        nest_name=nest.name,
        num_threads=num_threads,
        chunk=bound_chunk,
        fidelity="analytic",
        requested="analytic",
        fs_cases=float(estimate.accesses * max(num_threads - 1, 0)),
        # Upper bound: price every case as a write (invalidation), the
        # conservative end of the detector's cost split.
        fs_read_fraction=0.0,
        fs_write_fraction=1.0,
        detail=estimate,
    )


def analyze_with_ladder(
    machine,
    nest,
    num_threads: int,
    chunk: int | None = None,
    budget: Budget | None = None,
    prefer: str = "exact",
    predictor_runs: int = 8,
    mode: str = "invalidate",
    method: str = "paper",
    model=None,
) -> LadderOutcome:
    """Run the best analysis the budget affords, never raising for
    budget reasons.

    Parameters
    ----------
    prefer:
        The requested fidelity: ``"exact"`` or ``"regression"``
        (requesting ``"analytic"`` directly is allowed but unusual).
    model:
        Optional pre-built :class:`~repro.model.fsmodel.FalseSharingModel`
        (reused across a sweep); built from ``machine``/``mode`` when
        omitted.

    Frontend/model errors (:class:`~repro.resilience.errors.ModelError`
    etc.) still propagate — the ladder degrades on *resource* pressure,
    not on wrong inputs.
    """
    if prefer not in FIDELITY_LEVELS:
        raise ValueError(f"unknown fidelity level {prefer!r}")
    if model is None:
        from repro.model.fsmodel import FalseSharingModel

        model = FalseSharingModel(machine, mode=mode)

    requested = prefer
    degradation: str | None = None
    with span(
        "resilience.ladder", kernel=nest.name, threads=num_threads,
        prefer=prefer,
    ) as sp:
        if prefer == "exact":
            try:
                outcome = _try_exact(model, nest, num_threads, chunk, budget)
                sp.set(fidelity=outcome.fidelity)
                return outcome
            except BudgetExceededError as exc:
                degradation = f"exact analysis over budget: {exc.message}"
                _record_fallback("regression", degradation, nest.name)

        if prefer in ("exact", "regression"):
            outcome, reason = _try_regression(
                model, nest, num_threads, chunk, budget, predictor_runs,
                method,
            )
            if outcome is not None:
                sp.set(fidelity="regression")
                if requested == "regression":
                    return outcome
                return replace(
                    outcome, requested=requested, degradation=degradation
                )
            next_reason = f"regression prefix over budget: {reason}"
            degradation = (
                f"{degradation}; {next_reason}" if degradation else next_reason
            )
            _record_fallback("analytic", next_reason, nest.name)

        outcome = _analytic_bound(machine, nest, num_threads, chunk)
        sp.set(fidelity="analytic")
        if requested == "analytic":
            return outcome
        return replace(outcome, requested=requested, degradation=degradation)
