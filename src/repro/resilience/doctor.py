"""Self-checks behind ``repro-fs doctor``.

The doctor proves, in-process and in a couple of seconds, that every
robustness mechanism documented in docs/RESILIENCE.md actually works in
this installation:

* the error-code registry is consistent (format, categories, exit
  codes);
* taxonomy compatibility holds (``ModelError`` *is a* ``ValueError``,
  ``EngineError`` *is a* ``RuntimeError``, errors survive pickling);
* budget guards reject over-budget analyses *before* running them;
* the degradation ladder reaches every fidelity level and degrades
  under pressure instead of crashing;
* fault injection fires (and filters by ``match=``) so the test
  harness' failures are real failures;
* the result store round-trips entries and treats corruption as a
  cache miss rather than an error;
* partial-result policies isolate failures and the circuit breaker
  trips at its threshold.

Each check is independent; :func:`run_doctor` runs them all and
returns structured :class:`CheckResult` rows, so a broken installation
reports *every* broken subsystem, not just the first.
"""

from __future__ import annotations

import pickle
import re
import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.resilience.budget import Budget, estimate_cost
from repro.resilience.errors import (
    ERROR_CODES,
    EXIT_CODES,
    BudgetExceededError,
    CircuitOpenError,
    EngineError,
    FaultInjectedError,
    ModelError,
    ReproError,
    UsageError,
)
from repro.resilience.faults import FaultPlan, fault_point, install_plan
from repro.resilience.ladder import (
    FIDELITY_LEVELS,
    analyze_with_ladder,
    fidelity_tier,
)
from repro.resilience.partial import FailurePolicy, FailureReport

__all__ = ["CheckResult", "run_doctor"]

_CODE_RE = re.compile(r"^REPRO-[UFMREX]\d{3}$")


@dataclass(frozen=True)
class CheckResult:
    """One doctor check's verdict."""

    name: str
    ok: bool
    detail: str

    def one_line(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return f"[{mark}] {self.name:<20} {self.detail}"


def _check_error_codes() -> str:
    if not ERROR_CODES:
        raise AssertionError("error-code registry is empty")
    for code, description in ERROR_CODES.items():
        if not _CODE_RE.match(code):
            raise AssertionError(f"malformed code {code!r}")
        if not description:
            raise AssertionError(f"code {code} has no description")
    for category in ("usage", "frontend", "model", "resource", "engine"):
        if category not in EXIT_CODES:
            raise AssertionError(f"no exit code for category {category!r}")
    return f"{len(ERROR_CODES)} registered codes, all well-formed"


def _check_taxonomy() -> str:
    if not issubclass(ModelError, ValueError):
        raise AssertionError("ModelError must remain a ValueError")
    if not issubclass(EngineError, RuntimeError):
        raise AssertionError("EngineError must remain a RuntimeError")
    if not issubclass(UsageError, ValueError):
        raise AssertionError("UsageError must remain a ValueError")
    err = ModelError("doctor probe", context={"n": 1})
    clone = pickle.loads(pickle.dumps(err))
    if (clone.code, clone.message) != (err.code, err.message):
        raise AssertionError("ReproError does not survive pickling")
    if err.exit_code != EXIT_CODES["model"]:
        raise AssertionError("model errors map to the wrong exit code")
    return "MRO compat + pickling + exit-code mapping hold"


def _nest():
    from repro.kernels import build_linreg_nest

    return build_linreg_nest(8, 16)


def _machine():
    from repro.machine import paper_machine

    return paper_machine(num_cores=8)


def _check_budget_guards() -> str:
    machine, nest = _machine(), _nest()
    estimate = estimate_cost(nest, 4, machine)
    if estimate.steps <= 0 or estimate.accesses <= 0:
        raise AssertionError("cost estimate is degenerate")
    try:
        Budget(max_steps=1).check_estimate(estimate, where="doctor")
    except BudgetExceededError as exc:
        if exc.code != "REPRO-R001":
            raise AssertionError(f"steps guard raised {exc.code}, not R001")
    else:
        raise AssertionError("steps guard did not fire on a 1-step budget")
    expired = Budget(deadline_s=1e-9)
    try:
        expired.check_deadline("doctor")
    except BudgetExceededError as exc:
        if exc.code != "REPRO-R002":
            raise AssertionError(f"deadline guard raised {exc.code}")
    else:
        raise AssertionError("deadline guard did not fire")
    try:
        Budget(max_steps=-1)
    except UsageError:
        pass
    else:
        raise AssertionError("negative budget accepted")
    return "pre-run steps + deadline guards fire with stable codes"


def _check_ladder() -> str:
    machine, nest = _machine(), _nest()
    exact = analyze_with_ladder(machine, nest, 4, prefer="exact")
    if fidelity_tier(exact.fidelity) != "exact" or exact.degraded:
        raise AssertionError("unbudgeted analysis did not stay exact")
    squeezed = analyze_with_ladder(
        machine, nest, 4, prefer="exact", budget=Budget(max_steps=1)
    )
    if fidelity_tier(squeezed.fidelity) == "exact":
        raise AssertionError("1-step budget did not force a fallback")
    if not squeezed.degraded:
        raise AssertionError("degraded outcome carries no reason")
    if squeezed.fidelity not in FIDELITY_LEVELS:
        raise AssertionError(f"unknown fidelity {squeezed.fidelity!r}")
    bound = analyze_with_ladder(machine, nest, 4, prefer="analytic")
    if bound.fs_cases < exact.fs_cases:
        raise AssertionError(
            f"analytic bound {bound.fs_cases} below exact {exact.fs_cases}"
        )
    return (
        f"exact={exact.fs_cases:.0f} cases; 1-step budget degrades to "
        f"{squeezed.fidelity}; analytic bound holds"
    )


def _check_faults() -> str:
    with install_plan(FaultPlan.parse("doctor.site:raise:match=yes")):
        fault_point("doctor.site", label="no-thanks")  # filtered by match=
        fault_point("other.site", label="yes")  # filtered by site
        try:
            fault_point("doctor.site", label="yes-please")
        except FaultInjectedError as exc:
            if exc.code != "REPRO-X901":
                raise AssertionError(f"injected fault code {exc.code}")
        else:
            raise AssertionError("matching fault did not fire")
    fault_point("doctor.site", label="yes")  # plan uninstalled: no-op
    return "probes fire, filter on site/match, and uninstall cleanly"


def _check_store() -> str:
    from repro.engine.store import ResultStore

    with tempfile.TemporaryDirectory(prefix="repro-doctor-") as root:
        store = ResultStore(root)
        key = "ab" * 32
        store.put(key, {"value": 42}, kind="doctor")
        entry = store.get(key)
        if entry is None or entry.get("value") != 42:
            raise AssertionError("store round-trip failed")
        store._path(key).write_bytes(b"\x00 definitely not json \xff")
        if store.get(key) is not None:
            raise AssertionError("corrupt entry served instead of missed")
    return "round-trip works; corruption reads back as a miss"


def _check_partial() -> str:
    policy = FailurePolicy(keep_going=True, max_failure_rate=1.0)
    policy.record_success()
    policy.record_failure(
        FailureReport.from_exception(
            ModelError("doctor probe"), label="doctor", kind="doctor"
        )
    )
    if len(policy.failures) != 1 or policy.evaluated != 2:
        raise AssertionError("keep-going policy mis-counted")
    breaker = FailurePolicy(keep_going=True, max_failure_rate=0.5,
                            min_evaluated=2)
    report = FailureReport(label="doctor", kind="doctor",
                           code="REPRO-M100", message="probe")
    try:
        breaker.record_failure(report)
        breaker.record_failure(report)
    except CircuitOpenError:
        pass
    else:
        raise AssertionError("circuit breaker never tripped")
    round_trip = FailureReport.from_dict(report.to_dict())
    if round_trip != report:
        raise AssertionError("FailureReport dict round-trip lossy")
    return "failure isolation, breaker trip and report round-trip hold"


def _check_service() -> str:
    """Service plumbing: socket bind, tenants parsing, store
    writability, queue-state persistence round-trip."""
    import json
    import socket
    from pathlib import Path

    from repro.engine import Engine
    from repro.engine.store import ResultStore
    from repro.service.queue import JobQueue, JobRequest
    from repro.service.tenants import TenantRegistry

    # 1. a TCP socket is bindable (ephemeral port, immediately released)
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    if not port:
        raise AssertionError("could not bind an ephemeral TCP port")

    with tempfile.TemporaryDirectory(prefix="repro-doctor-svc-") as root:
        # 2. a well-formed tenants file parses; a malformed one is U102
        tenants_path = Path(root) / "tenants.json"
        tenants_path.write_text(json.dumps({"tenants": [
            {"name": "doctor", "api_key": "sk-doctor",
             "max_queued_jobs": 2, "max_cells_per_job": 64},
        ]}), encoding="utf-8")
        registry = TenantRegistry.from_file(tenants_path)
        if registry.authenticate("sk-doctor") is None:
            raise AssertionError("tenants file did not authenticate its key")
        try:
            TenantRegistry.from_file(__file__)  # python source != JSON
        except UsageError as exc:
            if exc.code != "REPRO-U102":
                raise AssertionError(
                    f"bad tenants file raised {exc.code}, not U102"
                )
        else:
            raise AssertionError("malformed tenants file accepted")

        # 3. the service's store dir is writable
        store = ResultStore(Path(root) / "store")
        store.put("cd" * 32, {"value": 1}, kind="doctor")
        if store.get("cd" * 32) is None:
            raise AssertionError("service store round-trip failed")

        # 4. queue-state persistence round-trips one queued job
        state_path = Path(root) / "queue-state.json"
        engine = Engine(jobs=1, store=store)
        queue = JobQueue(registry, engine, concurrency=1,
                         state_path=state_path)
        tenant = registry.authenticate("sk-doctor")
        queue.submit(tenant, JobRequest(source=_SERVICE_KERNEL,
                                        threads=(2,), chunks=(1,)))
        queue.save_state()
        restored_queue = JobQueue(registry, Engine(jobs=1, store=store),
                                  concurrency=1, state_path=state_path)
        if restored_queue.load_state() != 1:
            raise AssertionError("queue state did not restore the job")
    return "port bindable; tenants parse; store writable; state round-trips"


_SERVICE_KERNEL = """
#define N 16
double a[N];
void doctor_probe(void) {
    int i;
    #pragma omp parallel for schedule(static,1)
    for (i = 0; i < N; i++) { a[i] = a[i] + 1.0; }
}
"""


def _check_crash_recovery() -> str:
    """Crash durability: journal append/replay round-trip, torn-tail
    tolerance, idempotent re-application, and a quarantine dry run."""
    from pathlib import Path

    from repro.engine import Engine
    from repro.service.journal import Journal
    from repro.service.queue import JobQueue, JobRequest, ServiceJob
    from repro.service.tenants import TenantRegistry

    with tempfile.TemporaryDirectory(prefix="repro-doctor-crash-") as root:
        # 1. append → replay round-trips a job with stable row offsets
        journal = Journal(Path(root) / "journal")
        rows = [{"type": "cell", "kernel": "k", "threads": 2, "chunk": 1},
                {"type": "cell", "kernel": "k", "threads": 2, "chunk": 2}]
        journal.record_admit("j1", "doctor", {"source": "x"}, 2, 1.0)
        journal.record_rows("j1", 0, rows[:1])
        journal.record_rows("j1", 1, rows[1:])
        journal.record_crashes("j1", 1)
        ledger = journal.replay().get("j1")
        if ledger is None or ledger.rows != rows or ledger.crashes != 1:
            raise AssertionError("journal append/replay round-trip lost data")

        # 2. a duplicated tail record replays idempotently
        journal.record_rows("j1", 1, rows[1:])
        if journal.replay()["j1"].rows != rows:
            raise AssertionError("duplicated journal tail was re-applied")

        # 3. a torn tail (truncated final record) is tolerated
        journal.close()
        seg = journal.active_path
        raw = seg.read_bytes()
        seg.write_bytes(raw[:-7])  # chop mid-record: a crash mid-write
        torn = Journal(Path(root) / "journal")
        replayed = torn.replay().get("j1")
        if replayed is None or replayed.rows != rows:
            raise AssertionError("torn journal tail corrupted earlier rows")
        if not torn.last_replay.torn_tail:
            raise AssertionError("torn tail not detected as such")

        # 4. quarantine dry run: a job over the crash threshold fails
        #    terminally with REPRO-E105 and the queue survives
        registry = TenantRegistry.default()
        queue = JobQueue(registry, Engine(jobs=1, use_cache=False),
                         concurrency=1, quarantine_after=2)
        tenant = next(iter(registry.tenants.values()))
        job = ServiceJob(tenant.name,
                         JobRequest(source=_SERVICE_KERNEL,
                                    threads=(2,), chunks=(1,)),
                         cells_total=1)
        job.crashes = 2
        if not queue._maybe_quarantine(job):
            raise AssertionError("poison job over threshold not quarantined")
        if job.status != "failed" or (job.error or {}).get("code") != \
                "REPRO-E105":
            raise AssertionError(
                f"quarantine produced {job.status}/{job.error}, "
                "expected failed/REPRO-E105"
            )
        if queue._maybe_quarantine(job) is not True:
            raise AssertionError("quarantine is not idempotent")
    return ("journal round-trips, tolerates torn tails, replays "
            "idempotently; poison jobs quarantine as REPRO-E105")


def _check_jit_tier() -> str:
    """The JIT engine tier: compiles, agrees with fast, demotes cleanly.

    On installations without numba this *reports* the guarded-import
    fallback instead of failing — the no-dependency path is a supported
    configuration, and ``engine="jit"`` must resolve to ``"fast"``.
    """
    from repro.model.fastdetect import make_detector, resolve_engine
    from repro.model.jitdetect import jit_available, warmup_jit

    if not jit_available():
        resolved = resolve_engine("jit", "invalidate", 4)
        if resolved != "fast":
            raise AssertionError(
                f"without numba, engine='jit' must resolve to 'fast', "
                f"got {resolved!r}"
            )
        return "skipped — numba not installed (jit resolves to fast)"
    compile_s = warmup_jit()
    if compile_s is None:
        raise AssertionError(
            "numba importable but the trivial kernel did not compile "
            "(REPRO-M104 demotion path engaged)"
        )
    # jit ≡ fast on a smoke trace spanning hits, misses and evictions.
    jit_det = make_detector("jit", 4, 8, mode="invalidate")
    fast_det = make_detector("fast", 4, 8, mode="invalidate")
    import numpy as np

    rows = np.arange(400, dtype=np.int64).reshape(100, 4) % 13
    block = tuple((rows + t) % 13 for t in range(4))
    writes = np.array([True, False, True, False])
    jit_det.process_block(block, writes)
    fast_det.process_block(block, writes)
    for name in type(jit_det.stats)._SCALARS:
        if getattr(jit_det.stats, name) != getattr(fast_det.stats, name):
            raise AssertionError(
                f"jit/fast disagree on {name}: "
                f"{getattr(jit_det.stats, name)} != "
                f"{getattr(fast_det.stats, name)}"
            )
    if jit_det.state_fingerprint() != fast_det.state_fingerprint():
        raise AssertionError("jit/fast end states differ on smoke trace")
    return (
        f"kernel compiled in {compile_s:.2f}s; jit ≡ fast on the smoke "
        "trace (counters + end state)"
    )


_CHECKS: tuple[tuple[str, Callable[[], str]], ...] = (
    ("error-codes", _check_error_codes),
    ("taxonomy-compat", _check_taxonomy),
    ("budget-guards", _check_budget_guards),
    ("degradation-ladder", _check_ladder),
    ("fault-injection", _check_faults),
    ("result-store", _check_store),
    ("partial-results", _check_partial),
    ("service-plumbing", _check_service),
    ("crash-recovery", _check_crash_recovery),
    ("jit-tier", _check_jit_tier),
)


def run_doctor() -> list[CheckResult]:
    """Run every self-check; never raises — failures become rows."""
    results: list[CheckResult] = []
    for name, check in _CHECKS:
        try:
            detail = check()
            results.append(CheckResult(name=name, ok=True, detail=detail))
        except ReproError as exc:
            results.append(
                CheckResult(name=name, ok=False, detail=exc.one_line())
            )
        except Exception as exc:  # noqa: BLE001 - doctor reports, not raises
            results.append(
                CheckResult(
                    name=name, ok=False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
    return results
