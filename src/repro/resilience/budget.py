"""Resource budgets and pre-run cost estimation for the FS model.

The exact detector walks every lockstep step of the loop
(``All_num_iters / num_threads`` of them) and keeps a per-thread LRU
cache state — both are easy to blow up with a large kernel inside a
compiler pass that has a time budget.  A :class:`Budget` makes those
limits explicit:

* ``deadline_s``   — wall-clock budget for one analysis;
* ``max_steps``    — cap on lockstep steps the detector may evaluate;
* ``max_state_bytes`` — cap on the estimated detector/ownership working
  set.

Crucially, the *steps* and *state* guards are enforced **before** the
analysis runs: :func:`estimate_cost` derives the step count and working
set from the :class:`~repro.model.schedule.IterationSpace` alone (pure
arithmetic on trip counts), so an over-budget configuration is rejected
in microseconds instead of being killed after seconds.  The *deadline*
guard is additionally checked between detector blocks while the
analysis runs.

A rejected or interrupted analysis raises
:class:`~repro.resilience.errors.BudgetExceededError` whose ``context``
names the guard — the degradation ladder
(:mod:`repro.resilience.ladder`) catches it and falls back to a cheaper
fidelity level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.resilience.errors import BudgetExceededError, UsageError

__all__ = ["Budget", "CostEstimate", "estimate_cost"]

#: Estimated bookkeeping bytes per resident cache line in the detector's
#: per-thread LRU state (OrderedDict node + key/value boxes), plus the
#: amortized share of the per-line FS counters.
_BYTES_PER_STATE_LINE = 160


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis (all optional, all AND-ed).

    >>> b = Budget(max_steps=1000)
    >>> b.allows_steps(999), b.allows_steps(1001)
    (True, False)
    """

    deadline_s: float | None = None
    max_steps: int | None = None
    max_state_bytes: int | None = None
    #: Monotonic absolute deadline, pinned at construction so that a
    #: budget shared across a sweep bounds the *whole* sweep.
    deadline_at: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise UsageError("deadline must be positive (seconds)")
        if self.max_steps is not None and self.max_steps <= 0:
            raise UsageError("max_steps must be positive")
        if self.max_state_bytes is not None and self.max_state_bytes <= 0:
            raise UsageError("max_state_bytes must be positive")
        if self.deadline_s is not None and self.deadline_at is None:
            object.__setattr__(
                self, "deadline_at", time.monotonic() + self.deadline_s
            )

    # -- queries -------------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.max_steps is None
            and self.max_state_bytes is None
        )

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (``None`` without one)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0

    def allows_steps(self, steps: int) -> bool:
        return self.max_steps is None or steps <= self.max_steps

    def allows_state(self, state_bytes: int) -> bool:
        return self.max_state_bytes is None or state_bytes <= self.max_state_bytes

    # -- enforcement ---------------------------------------------------------

    def check_deadline(self, where: str = "analysis") -> None:
        """Raise ``REPRO-R002`` when the wall-clock budget is spent."""
        if self.expired():
            raise BudgetExceededError(
                f"deadline of {self.deadline_s:g}s expired during {where}",
                code="REPRO-R002",
                context={
                    "guard": "deadline",
                    "limit": self.deadline_s,
                    "where": where,
                },
            )

    def check_estimate(self, estimate: "CostEstimate", where: str = "") -> None:
        """Raise when a pre-run estimate already exceeds a hard guard."""
        label = f" for {where}" if where else ""
        if not self.allows_steps(estimate.steps):
            raise BudgetExceededError(
                f"estimated {estimate.steps:,} lockstep steps exceed the "
                f"budget of {self.max_steps:,}{label}",
                code="REPRO-R001",
                context={
                    "guard": "steps",
                    "limit": self.max_steps,
                    "estimate": estimate.steps,
                },
            )
        if not self.allows_state(estimate.state_bytes):
            raise BudgetExceededError(
                f"estimated {estimate.state_bytes:,} bytes of cache-state "
                f"memory exceed the budget of {self.max_state_bytes:,}{label}",
                code="REPRO-R003",
                context={
                    "guard": "state_bytes",
                    "limit": self.max_state_bytes,
                    "estimate": estimate.state_bytes,
                },
            )
        self.check_deadline(where or "pre-run estimation")

    # -- serialization (engine job specs) ------------------------------------

    def to_key_dict(self) -> dict:
        """JSON-able *configured* limits (``deadline_at`` is excluded —
        the absolute timestamp is run-local, the configuration is not).
        Used inside engine job specs so budgeted and unbudgeted sweeps
        occupy distinct cache entries."""
        doc: dict = {}
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.max_steps is not None:
            doc["max_steps"] = self.max_steps
        if self.max_state_bytes is not None:
            doc["max_state_bytes"] = self.max_state_bytes
        return doc

    @staticmethod
    def from_key_dict(doc: dict | None) -> "Budget | None":
        if not doc:
            return None
        return Budget(
            deadline_s=doc.get("deadline_s"),
            max_steps=doc.get("max_steps"),
            max_state_bytes=doc.get("max_state_bytes"),
        )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one exact FS analysis (pure arithmetic)."""

    steps: int
    steps_per_chunk_run: int
    total_chunk_runs: int
    accesses: int
    state_bytes: int

    def steps_for_runs(self, n_runs: int) -> int:
        """Lockstep steps a ``n_runs``-chunk-run prefix would evaluate."""
        return min(self.steps, n_runs * self.steps_per_chunk_run)


def estimate_cost(nest, num_threads: int, machine, chunk: int | None = None):
    """Estimate the exact analysis' cost *without running it*.

    Derives lockstep steps and per-access counts from the
    :class:`~repro.model.schedule.IterationSpace` (trip-count
    arithmetic) and sizes the detector state from the machine's modeled
    stack depth.  Mirrors the quantities
    :meth:`repro.model.fsmodel.FalseSharingModel.analyze` would incur.
    """
    # Deferred import: repro.resilience must stay importable from the
    # frontend without dragging the whole model stack in.
    from repro.model.schedule import IterationSpace

    if chunk is not None:
        nest = nest.with_chunk(chunk)
    ispace = IterationSpace.of(nest, num_threads)
    steps = ispace.steps_per_thread
    n_refs = len(nest.innermost_accesses())
    state_bytes = (
        num_threads * machine.model_stack_lines * _BYTES_PER_STATE_LINE
    )
    return CostEstimate(
        steps=steps,
        steps_per_chunk_run=ispace.steps_per_chunk_run,
        total_chunk_runs=ispace.total_chunk_runs,
        accesses=steps * num_threads * n_refs,
        state_bytes=state_bytes,
    )
