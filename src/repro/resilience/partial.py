"""Partial-result semantics: failure isolation for sweeps and suites.

A 48-point what-if sweep with one unparsable kernel or one crashing
configuration should produce 47 points and one *structured* failure —
not a traceback that discards the 47.  This module provides the two
pieces every batch caller shares:

:class:`FailureReport`
    one isolated failure: the stable error code, the human-readable
    message, the (threads/chunk/kernel) point it belongs to, attempt
    count and per-attempt retry history.  JSON-able, so reports travel
    inside sweep results, experiment outputs and the CLI's ``--json``
    form.

:class:`FailurePolicy`
    the decision logic: ``keep_going`` (collect failures vs raise on
    the first one) plus a failure-rate **circuit breaker** — when more
    than ``max_failure_rate`` of evaluated points have failed (after a
    minimum sample), the batch is aborted with
    :class:`~repro.resilience.errors.CircuitOpenError` rather than
    grinding through hundreds of doomed points against a dead cache
    volume or a broken toolchain.

Counted in ``resilience_failures_total{kind=...}`` per isolated
failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs import get_registry
from repro.resilience.errors import CircuitOpenError, ReproError, UsageError
from repro.util import get_logger

__all__ = ["FailurePolicy", "FailureReport"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class FailureReport:
    """One isolated failure inside a batch run."""

    label: str
    kind: str
    code: str
    message: str
    attempts: int = 1
    retry_history: tuple[str, ...] = ()
    point: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "label": self.label,
            "kind": self.kind,
            "code": self.code,
            "message": self.message,
            "attempts": self.attempts,
        }
        if self.retry_history:
            doc["retry_history"] = list(self.retry_history)
        if self.point:
            doc["point"] = dict(self.point)
        return doc

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "FailureReport":
        return FailureReport(
            label=str(doc.get("label", "")),
            kind=str(doc.get("kind", "")),
            code=str(doc.get("code", "REPRO-X000")),
            message=str(doc.get("message", "")),
            attempts=int(doc.get("attempts", 1)),
            retry_history=tuple(doc.get("retry_history", ())),
            point=dict(doc.get("point", {})),
        )

    def one_line(self) -> str:
        retries = (
            f" after {self.attempts} attempts" if self.attempts > 1 else ""
        )
        return f"[{self.code}] {self.label}: {self.message}{retries}"

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        label: str,
        kind: str,
        point: Mapping[str, Any] | None = None,
    ) -> "FailureReport":
        """Wrap a raised exception (serial evaluation path)."""
        if isinstance(exc, ReproError):
            code, message = exc.code, exc.message
        else:
            code, message = "REPRO-X000", f"{type(exc).__name__}: {exc}"
        return cls(
            label=label, kind=kind, code=code, message=message,
            point=dict(point or {}),
        )

    @classmethod
    def from_outcome(
        cls,
        outcome,
        kind: str,
        point: Mapping[str, Any] | None = None,
    ) -> "FailureReport":
        """Wrap a failed :class:`~repro.engine.pool.JobOutcome`."""
        return cls(
            label=outcome.job.describe(),
            kind=kind,
            code=outcome.error_code or "REPRO-E100",
            message=outcome.error or "unknown engine failure",
            attempts=outcome.attempts,
            retry_history=tuple(outcome.retry_history),
            point=dict(point or {}),
        )


@dataclass
class FailurePolicy:
    """How a batch reacts to per-point failures.

    Parameters
    ----------
    keep_going:
        ``True`` collects :class:`FailureReport` objects and finishes
        the batch; ``False`` re-raises the first failure (the CLI's
        ``--fail-fast``).
    max_failure_rate:
        Circuit breaker: abort with ``REPRO-E201`` once
        ``failures / evaluated`` exceeds this fraction.  ``1.0``
        disables the breaker.
    min_evaluated:
        Breaker grace period — never trip before this many points have
        been evaluated (a 1-for-1 start must not kill a 200-point run).
    """

    keep_going: bool = True
    max_failure_rate: float = 0.5
    min_evaluated: int = 4

    #: Mutable tally (one policy instance per batch run).
    failures: list[FailureReport] = field(default_factory=list)
    evaluated: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise UsageError(
                f"max_failure_rate must be in [0, 1], got {self.max_failure_rate}"
            )
        if self.min_evaluated < 1:
            raise UsageError("min_evaluated must be >= 1")

    # -- accounting ----------------------------------------------------------

    def record_success(self) -> None:
        self.evaluated += 1

    def record_failure(
        self, report: FailureReport, cause: BaseException | None = None
    ) -> None:
        """Account one failure; raise when the policy says stop.

        Raises the *original* exception under ``fail-fast`` (so the CLI
        maps its category to the right exit code) and
        :class:`CircuitOpenError` when the failure-rate breaker trips.
        """
        self.evaluated += 1
        self.failures.append(report)
        get_registry().counter(
            "resilience_failures_total",
            "isolated per-point failures collected by batch runs",
        ).labels(kind=report.kind).inc()
        logger.warning("isolated failure: %s", report.one_line())
        if not self.keep_going:
            if cause is not None:
                raise cause
            raise CircuitOpenError(
                f"failing fast on first error: {report.one_line()}",
                code=report.code if report.code.startswith("REPRO-") else None,
            )
        self._check_breaker()

    @property
    def failure_rate(self) -> float:
        return len(self.failures) / self.evaluated if self.evaluated else 0.0

    def _check_breaker(self) -> None:
        if self.max_failure_rate >= 1.0:
            return
        if self.evaluated < self.min_evaluated:
            return
        if self.failure_rate > self.max_failure_rate:
            raise CircuitOpenError(
                f"{len(self.failures)}/{self.evaluated} points failed "
                f"({100 * self.failure_rate:.0f}% > "
                f"{100 * self.max_failure_rate:.0f}% threshold); aborting "
                "the batch",
                context={
                    "failures": len(self.failures),
                    "evaluated": self.evaluated,
                    "threshold": self.max_failure_rate,
                    "codes": sorted({f.code for f in self.failures}),
                },
            )
