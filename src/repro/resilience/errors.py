"""Structured error taxonomy for the FS-model pipeline.

The cost model is meant to run *inside a compiler pass*: a malformed
loop nest, a pathological trip count or a crashed sweep worker must
surface as a *diagnostic*, never as a raw traceback that aborts
compilation.  Every failure the pipeline can produce is therefore an
instance of :class:`ReproError` carrying

* a **stable error code** (``REPRO-F001`` …) that tools and tests can
  match on without parsing prose,
* a **category** (``frontend`` / ``model`` / ``engine`` / ``usage`` /
  ``resource``) that maps onto a CLI exit code,
* a **severity** (``warning`` < ``error`` < ``fatal``),
* an optional **source span** (file:line:column, preserved from
  pycparser coordinates rather than flattened into the message), and
* :meth:`ReproError.to_dict` for machine-readable CLI/JSON output.

Backwards compatibility: the pre-taxonomy exception classes inherited
from :class:`ValueError`/:class:`RuntimeError`; the taxonomy keeps those
bases in the MRO (``FrontendError`` is both a :class:`ReproError` *and*
a :class:`ValueError`), so existing ``except ValueError`` call sites and
tests continue to work unchanged.

Error code registry
-------------------
Codes are namespaced by layer and must be registered exactly once (the
``repro-fs doctor`` self-check and the test suite assert uniqueness):

========== ===========================================================
prefix      layer
========== ===========================================================
``REPRO-U`` usage (bad CLI arguments, malformed specs)
``REPRO-F`` frontend (preprocess, pragma, parse, lowering)
``REPRO-M`` model (FS model, regression predictor, cost models)
``REPRO-R`` resource guards (budget, deadline, state memory)
``REPRO-E`` engine (jobs, worker pool, result store, circuit breaker)
``REPRO-X`` fault injection (test harness, never in production paths)
========== ===========================================================
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from typing import Any, Mapping

__all__ = [
    "ERROR_CODES",
    "EXIT_CODES",
    "BudgetExceededError",
    "CircuitOpenError",
    "CostModelError",
    "EngineError",
    "FaultInjectedError",
    "JobCancelledError",
    "ModelError",
    "PoisonJobError",
    "QuotaExceededError",
    "ReproError",
    "ServiceOverloadedError",
    "SourceSpan",
    "StoreError",
    "UsageError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "error_from_dict",
    "register_code",
]

#: category -> process exit code (2=usage, 3=frontend, 4=model/resource,
#: 5=engine), the CLI contract documented in docs/RESILIENCE.md.
EXIT_CODES: dict[str, int] = {
    "usage": 2,
    "frontend": 3,
    "model": 4,
    "resource": 4,
    "engine": 5,
    "fault": 5,
    "general": 1,
}

#: stable code -> one-line description (rendered into docs/RESILIENCE.md
#: and checked for uniqueness by ``repro-fs doctor`` and the tests).
ERROR_CODES: dict[str, str] = {}


def register_code(code: str, description: str) -> str:
    """Register a stable error code; codes may be registered only once."""
    if not re.fullmatch(r"REPRO-[UFMREX]\d{3}", code):
        raise ValueError(f"malformed error code {code!r}")
    if code in ERROR_CODES and ERROR_CODES[code] != description:
        raise ValueError(f"error code {code!r} registered twice")
    ERROR_CODES[code] = description
    return code


@dataclass(frozen=True)
class SourceSpan:
    """A location in kernel source: file, 1-based line, 1-based column.

    ``column``/``end_line``/``end_column`` are optional — pycparser
    coordinates carry (file, line, column); hand-built spans may pin
    only the line.
    """

    file: str = "<kernel>"
    line: int | None = None
    column: int | None = None
    end_line: int | None = None
    end_column: int | None = None

    def __str__(self) -> str:
        parts = [self.file]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_coord(cls, coord: Any) -> "SourceSpan | None":
        """Build a span from a pycparser ``Coord`` (or ``None``)."""
        if coord is None:
            return None
        return cls(
            file=str(getattr(coord, "file", "<kernel>") or "<kernel>"),
            line=getattr(coord, "line", None) or None,
            column=getattr(coord, "column", None) or None,
        )

    _MESSAGE_RE = re.compile(r"^(?P<file>[^:]*):(?P<line>\d+):(?:(?P<col>\d+):?)?\s*")

    @classmethod
    def from_parse_message(cls, message: str) -> "tuple[SourceSpan | None, str]":
        """Split a pycparser ``file:line:col: text`` message into
        (span, bare text).  Returns ``(None, message)`` when the message
        carries no location prefix."""
        m = cls._MESSAGE_RE.match(message)
        if not m:
            return None, message
        col = m.group("col")
        span = cls(
            file=m.group("file") or "<kernel>",
            line=int(m.group("line")),
            column=int(col) if col else None,
        )
        return span, message[m.end():] or message


_SEVERITIES = ("warning", "error", "fatal")


def _rebuild_error(cls: type, state: dict) -> "ReproError":
    """Unpickle helper: rebuild a ReproError subclass without calling
    its (possibly signature-incompatible) ``__init__``.  Needed because
    engine jobs cross process boundaries and their exceptions must
    survive the round trip with codes and spans intact."""
    err = cls.__new__(cls)
    Exception.__init__(err, state.get("_rendered", state.get("message", "")))
    err.__dict__.update(state)
    return err


class ReproError(Exception):
    """Base of the pipeline's structured error hierarchy.

    Subclasses pin class-level defaults (``code``, ``category``,
    ``severity``); individual raise sites may override the code per
    instance (one exception class, many stable codes).
    """

    code: str = register_code("REPRO-X000", "unclassified pipeline error")
    category: str = "general"
    severity: str = "error"

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        severity: str | None = None,
        span: SourceSpan | None = None,
        hint: str | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        self.message = str(message)
        if code is not None:
            self.code = code
        if severity is not None:
            if severity not in _SEVERITIES:
                raise ValueError(f"unknown severity {severity!r}")
            self.severity = severity
        self.span = span
        self.hint = hint
        self.context: dict[str, Any] = dict(context or {})
        self._rendered = (
            f"{self.span}: {self.message}" if self.span else self.message
        )
        super().__init__(self._rendered)

    # -- machine-readable form ----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able diagnostic (the CLI's ``--json`` / report form)."""
        doc: dict[str, Any] = {
            "code": self.code,
            "category": self.category,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            doc["span"] = self.span.to_dict()
        if self.hint:
            doc["hint"] = self.hint
        if self.context:
            doc["context"] = self.context
        return doc

    def one_line(self) -> str:
        """The CLI's single-line diagnostic rendering."""
        loc = f"{self.span}: " if self.span else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.severity}[{self.code}] {loc}{self.message}{hint}"

    @property
    def exit_code(self) -> int:
        """Process exit code for this error's category."""
        return EXIT_CODES.get(self.category, 1)

    def __reduce__(self):
        return (_rebuild_error, (type(self), dict(self.__dict__)))


def error_from_dict(doc: Mapping[str, Any]) -> ReproError:
    """Reconstruct a generic :class:`ReproError` from :meth:`to_dict`
    output (category/severity/code survive; the concrete class does
    not — reports only need the structured fields)."""
    span_doc = doc.get("span")
    err = ReproError(
        str(doc.get("message", "")),
        code=str(doc.get("code", ReproError.code)),
        severity=str(doc.get("severity", "error")),
        span=SourceSpan(**span_doc) if span_doc else None,
        hint=doc.get("hint"),
        context=doc.get("context"),
    )
    err.category = str(doc.get("category", "general"))
    return err


# -- usage -------------------------------------------------------------------


class UsageError(ReproError, ValueError):
    """Bad arguments/specs supplied by the caller (CLI exit 2).

    Inherits :class:`ValueError` — bad arguments were plain ValueErrors
    before the taxonomy, and ``except ValueError`` call sites remain.
    """

    code = register_code("REPRO-U001", "invalid command-line usage")
    category = "usage"


register_code("REPRO-U002", "malformed -D macro definition")
register_code("REPRO-U003", "no OpenMP parallel-for loops found in input")
register_code("REPRO-U101", "malformed service request body or job spec")
register_code("REPRO-U102", "malformed tenants file")


# -- model / resource --------------------------------------------------------


class ModelError(ReproError, ValueError):
    """The FS model was asked something it cannot answer (CLI exit 4).

    Inherits :class:`ValueError` so pre-taxonomy ``except ValueError``
    call sites keep working.
    """

    code = register_code("REPRO-M100", "invalid model parameter or state")
    category = "model"


register_code("REPRO-M101", "loop nest has no modelable array accesses")
register_code("REPRO-M102", "symbolic loop bounds unsupported by this analysis")
register_code("REPRO-M103", "regression fit is degenerate (no sampled runs)")
register_code(
    "REPRO-M104",
    "jit detector kernel failed to compile; demoted to the fast engine",
)


class CostModelError(ModelError):
    """A cost-model component received inconsistent parameters."""

    code = register_code("REPRO-M150", "invalid cost-model parameter")


class BudgetExceededError(ModelError):
    """A resource guard rejected or interrupted an analysis (CLI exit 4).

    ``context`` carries ``guard`` (``steps`` / ``state_bytes`` /
    ``deadline``), the ``limit`` and the offending ``estimate`` so the
    fallback ladder can report *why* it degraded.
    """

    code = register_code("REPRO-R001", "analysis exceeds the configured budget")
    category = "resource"

    @property
    def guard(self) -> str:
        return str(self.context.get("guard", "?"))


register_code("REPRO-R002", "deadline expired before/while running an analysis")
register_code("REPRO-R003", "estimated cache-state memory exceeds the budget")
register_code(
    "REPRO-R004", "no fallback level fits the budget (ladder exhausted)"
)


class QuotaExceededError(ReproError):
    """A service tenant hit one of its admission quotas (HTTP 429).

    The resource category maps to CLI exit 4 and, through the service's
    status table, to HTTP 429 — quota rejections are back-pressure, not
    bugs.  ``context`` names the ``quota`` (``queued_jobs`` / ``cells``
    / ``steps`` / ``rate``), the ``limit`` and the offending value.
    """

    code = register_code("REPRO-R101", "tenant job-queue quota exceeded")
    category = "resource"


register_code("REPRO-R102", "tenant rate limit exceeded (token bucket empty)")
register_code(
    "REPRO-R103", "job exceeds the tenant's per-job cell/step budget"
)


# -- engine ------------------------------------------------------------------


class EngineError(ReproError, RuntimeError):
    """Batch-engine failure (CLI exit 5).

    Inherits :class:`RuntimeError` for pre-taxonomy compatibility
    (``JobOutcome.unwrap`` raised ``RuntimeError``).
    """

    code = register_code("REPRO-E100", "engine job failed")
    category = "engine"


register_code("REPRO-E101", "unknown job kind or malformed job spec")


class WorkerCrashError(EngineError):
    """A worker process died (segfault/OOM/``os._exit``)."""

    code = register_code("REPRO-E102", "worker process crashed")


class WorkerTimeoutError(EngineError):
    """A job overran the pool's per-job wall-clock budget."""

    code = register_code("REPRO-E103", "engine job timed out")


class JobCancelledError(EngineError):
    """A job was cancelled before or while running.

    Raised (or surfaced as a per-job outcome) when a worker pool drains
    on SIGTERM/SIGINT or a service client DELETEs its job: in-flight
    work finishes, pending work reports this code instead of a
    traceback.
    """

    code = register_code(
        "REPRO-E104", "job cancelled by shutdown drain or client request"
    )


class PoisonJobError(EngineError):
    """A job was quarantined after repeatedly crashing worker processes.

    Raised by the service's supervisor when one job's cells keep
    killing engine workers: instead of readmitting the job forever
    (each crash costs a worker restart and stalls sibling tenants), the
    queue marks it terminally failed with this stable code.  ``context``
    carries the observed ``crashes`` and the ``limit`` that tripped.
    The worker pool itself survives — only the poison job stops.
    """

    code = register_code(
        "REPRO-E105", "poison job quarantined after repeated worker crashes"
    )


class ServiceOverloadedError(EngineError):
    """Admission was shed because the service is degraded/overloaded.

    Maps to HTTP 503 with a ``Retry-After`` header: the request was
    well-formed and within quota, but the service is protecting itself
    (queue depth, memory pressure, or supervisor-detected degradation)
    and wants the client to come back later.  ``context`` carries the
    shed ``reason`` and ``retry_after_s``.
    """

    code = register_code(
        "REPRO-E106", "service overloaded or degraded; admission shed"
    )


class CircuitOpenError(EngineError):
    """The sweep/suite failure-rate circuit breaker tripped."""

    code = register_code(
        "REPRO-E201", "failure-rate circuit breaker opened; run aborted"
    )


class StoreError(EngineError):
    """The result store failed in a way retries could not hide."""

    code = register_code("REPRO-E301", "result-store I/O failure")


# -- fault injection ---------------------------------------------------------


class FaultInjectedError(ReproError):
    """An error deliberately raised by the fault-injection harness."""

    code = register_code("REPRO-X901", "injected fault (test harness)")
    category = "fault"


register_code("REPRO-X902", "injected worker crash (test harness)")
register_code("REPRO-X903", "injected latency (test harness)")

# Frontend codes are registered here (single registry) but the classes
# live in repro.frontend to avoid an import cycle; see
# repro/frontend/preprocess.py / pragmas.py / lower.py.
register_code("REPRO-F001", "C parse error (pycparser rejected the source)")
register_code("REPRO-F100", "construct outside the supported C/OpenMP dialect")
register_code("REPRO-F200", "unsupported preprocessor construct")
register_code("REPRO-F300", "malformed or unsupported OpenMP pragma")
