"""Matrix transpose kernel — the negative control.

``b[j][i] = a[i][j]`` with the inner loop over ``j`` parallelized: each
thread writes whole *rows* of ``b`` (row ``j`` belongs to exactly one
thread under any static schedule), so no two threads write the same
cache line — **no false sharing by construction**, at any chunk size,
despite the loop looking superficially like the FS-prone kernels.

A detector that is merely "sensitive" flags everything; the transpose
pins the reproduction's *specificity*: the model and the simulator must
both report (near-)zero FS here.  (The only possible residue is a
row-boundary line when the row byte-length is not a line multiple.)
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import LoadExpr
from repro.ir.layout import DOUBLE
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.kernels.base import KernelInstance

FS_CHUNK = 1
NFS_CHUNK = 8
PRED_CHUNK_RUNS = 10

TRANSPOSE_SOURCE_TEMPLATE = """\
#define ROWS {rows}
#define COLS {cols}

double a[ROWS][COLS];
double b[COLS][ROWS];

void transpose(void)
{{
    int i, j;
    for (i = 0; i < ROWS; i++) {{
        #pragma omp parallel for private(j) schedule(static,{chunk})
        for (j = 0; j < COLS; j++) {{
            b[j][i] = a[i][j];
        }}
    }}
}}
"""


def transpose_source(rows: int, cols: int, chunk: int = FS_CHUNK) -> str:
    """C/OpenMP source of the transpose kernel."""
    return TRANSPOSE_SOURCE_TEMPLATE.format(rows=rows, cols=cols, chunk=chunk)


def build_transpose_nest(
    rows: int, cols: int, chunk: int = FS_CHUNK
) -> ParallelLoopNest:
    """Programmatically built IR for the transpose kernel."""
    if rows < 1 or cols < 1:
        raise ValueError("transpose needs positive dimensions")
    a = ArrayDecl.create("a", DOUBLE, (rows, cols))
    b = ArrayDecl.create("b", DOUBLE, (cols, rows))
    i = AffineExpr.var("i")
    j = AffineExpr.var("j")
    stmt = Assign(
        ArrayRef(b, (j, i), is_write=True),
        LoadExpr(ArrayRef(a, (i, j))),
    )
    inner = Loop.create("j", 0, cols, [stmt])
    outer = Loop.create("i", 0, rows, [inner])
    return ParallelLoopNest(
        name="transpose.j",
        root=outer,
        parallel_var="j",
        schedule=Schedule("static", chunk),
        private=("j",),
    )


def transpose(rows: int = 8, cols: int = 512, chunk: int = FS_CHUNK) -> KernelInstance:
    """The transpose kernel instance (negative control).

    Default ``rows = 8`` makes each output row exactly one cache line,
    eliminating even the row-boundary residue.
    """
    nest = build_transpose_nest(rows, cols, chunk)
    return KernelInstance(
        name="transpose",
        nest=nest,
        reference_nest=nest,
        source=transpose_source(rows, cols, chunk),
        fs_chunk=FS_CHUNK,
        nfs_chunk=NFS_CHUNK,
        pred_chunk_runs=PRED_CHUNK_RUNS,
        params={"rows": rows, "cols": cols},
    )
