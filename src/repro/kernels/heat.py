"""Heat diffusion kernel (paper ref. [2]).

A 2-D five-point Jacobi stencil: the outer loop walks interior rows
sequentially; the *innermost* loop over columns carries the OpenMP
worksharing construct, exactly the parallelization level the paper uses
("loop kernels in heat diffusion and DFT programs are parallelized at
the innermost loop level").

With ``schedule(static, 1)`` adjacent threads write adjacent elements of
the output row — eight neighbouring threads share every 64-byte line of
``b`` — the classic write-write false-sharing pattern.  With chunk 64
each thread owns 8 full lines per chunk and FS survives only at chunk
boundary lines (the loop starts at column 1, so chunks straddle lines).
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import BinOp, Const, LoadExpr
from repro.ir.layout import DOUBLE
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.kernels.base import KernelInstance

#: Paper-faithful chunk configurations (Table I) and predictor sample
#: count (Table IV).
FS_CHUNK = 1
NFS_CHUNK = 64
PRED_CHUNK_RUNS = 20

HEAT_SOURCE_TEMPLATE = """\
#define ROWS {rows}
#define COLS {cols}

double a[ROWS][COLS];
double b[ROWS][COLS];

void heat_step(void)
{{
    int i, j;
    for (i = 1; i < ROWS - 1; i++) {{
        #pragma omp parallel for private(j) schedule(static,{chunk})
        for (j = 1; j < COLS - 1; j++) {{
            b[i][j] = 0.2 * (a[i][j] + a[i - 1][j] + a[i + 1][j]
                             + a[i][j - 1] + a[i][j + 1]);
        }}
    }}
}}
"""


def heat_source(rows: int, cols: int, chunk: int = FS_CHUNK) -> str:
    """C/OpenMP source of the heat kernel at the given sizes."""
    return HEAT_SOURCE_TEMPLATE.format(rows=rows, cols=cols, chunk=chunk)


def build_heat_nest(rows: int, cols: int, chunk: int = FS_CHUNK) -> ParallelLoopNest:
    """Programmatically built IR for the heat kernel (no parsing)."""
    if rows < 3 or cols < 3:
        raise ValueError("heat kernel needs at least a 3x3 grid")
    a = ArrayDecl.create("a", DOUBLE, (rows, cols))
    b = ArrayDecl.create("b", DOUBLE, (rows, cols))
    i = AffineExpr.var("i")
    j = AffineExpr.var("j")

    def load(arr: ArrayDecl, ii, jj) -> LoadExpr:
        return LoadExpr(ArrayRef(arr, (ii, jj)))

    stencil = BinOp(
        "+",
        BinOp(
            "+",
            BinOp("+", load(a, i, j), load(a, i - 1, j)),
            load(a, i + 1, j),
        ),
        BinOp("+", load(a, i, j - 1), load(a, i, j + 1)),
    )
    body = Assign(
        ArrayRef(b, (i, j), is_write=True),
        BinOp("*", Const(0.2, DOUBLE), stencil),
    )
    inner = Loop.create("j", 1, cols - 1, [body])
    outer = Loop.create("i", 1, rows - 1, [inner])
    return ParallelLoopNest(
        name="heat_step.j",
        root=outer,
        parallel_var="j",
        schedule=Schedule("static", chunk),
        private=("j",),
    )


def heat_diffusion(
    rows: int = 12, cols: int = 6146, chunk: int = FS_CHUNK
) -> KernelInstance:
    """The heat diffusion kernel instance used by the experiments.

    Defaults give a parallel trip count of 6144 = 2·48·64, evenly
    divisible by ``threads × chunk`` across the paper's thread sweep for
    both chunk configurations.
    """
    nest = build_heat_nest(rows, cols, chunk)
    return KernelInstance(
        name="heat",
        nest=nest,
        reference_nest=nest,  # iteration space is thread-independent
        source=heat_source(rows, cols, chunk),
        fs_chunk=FS_CHUNK,
        nfs_chunk=NFS_CHUNK,
        pred_chunk_runs=PRED_CHUNK_RUNS,
        params={"rows": rows, "cols": cols},
    )
