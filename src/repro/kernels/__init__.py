"""The paper's evaluation kernels: heat diffusion, DFT, linear regression.

Each kernel is available three ways:

* a :class:`~repro.kernels.base.KernelInstance` factory
  (:func:`heat_diffusion`, :func:`dft`, :func:`linear_regression`) —
  what the experiments use;
* a raw IR builder (``build_*_nest``) for custom sizes;
* a C source generator (``*_source``) exercising the frontend path.
"""

from repro.kernels.base import KernelInstance
from repro.kernels.dft import build_dft_nest, dft, dft_source
from repro.kernels.heat import build_heat_nest, heat_diffusion, heat_source
from repro.kernels.linreg import (
    build_linreg_nest,
    linear_regression,
    linreg_source,
)
from repro.kernels.transpose import (
    build_transpose_nest,
    transpose,
    transpose_source,
)

__all__ = [
    "build_transpose_nest",
    "transpose",
    "transpose_source",
    "KernelInstance",
    "build_dft_nest",
    "dft",
    "dft_source",
    "build_heat_nest",
    "heat_diffusion",
    "heat_source",
    "build_linreg_nest",
    "linear_regression",
    "linreg_source",
]
