"""Kernel instances: the workloads of the paper's evaluation.

A :class:`KernelInstance` bundles everything an experiment needs:

* ``nest`` — the loop nest bound for the thread count under study;
* ``reference_nest`` — the thread-independent binding used to normalize
  Eq. (5) percentages (see DESIGN.md; for heat/DFT it equals ``nest``,
  for linreg it is the single-thread binding whose inner trip count is
  the whole data set);
* ``source`` — equivalent C/OpenMP source accepted by the frontend
  (tests verify builder and frontend produce identical access streams);
* the paper's chunk configurations (FS-heavy vs FS-free) and the
  chunk-run sample counts used by the prediction model (Tables IV–VI).

Problem sizes are reduced relative to the paper (5000² grids do not fit
a pure-Python model's time budget); every experiment records its sizes
in EXPERIMENTS.md.  Sizes are chosen so the parallel trip count divides
evenly by ``threads × chunk`` for the paper's thread sweep wherever
possible, keeping the lockstep schedule balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.frontend import parse_c_source
from repro.ir.loops import ParallelLoopNest


@dataclass(frozen=True)
class KernelInstance:
    """A concrete, analyzable kernel configuration."""

    name: str
    nest: ParallelLoopNest
    reference_nest: ParallelLoopNest
    source: str
    fs_chunk: int
    nfs_chunk: int
    pred_chunk_runs: int
    params: Mapping[str, int]

    def frontend_nest(self) -> ParallelLoopNest:
        """The nest as produced by parsing :attr:`source`.

        Used by integration tests to pin the builder and the C frontend
        to each other; analyses use :attr:`nest` directly.
        """
        kernels = parse_c_source(self.source)
        if len(kernels) != 1:
            raise ValueError(
                f"kernel source for {self.name!r} produced {len(kernels)} "
                "parallel nests, expected exactly 1"
            )
        nest = kernels[0].nest
        # Carry over the schedule of the builder nest (the source embeds
        # the FS chunk; experiments override chunks anyway).
        return nest.with_schedule(self.nest.schedule)

    def with_chunk(self, chunk: int) -> "KernelInstance":
        """A copy whose nest uses a different schedule chunk."""
        return replace(self, nest=self.nest.with_chunk(chunk))
