"""Phoenix linear regression kernel (paper Fig. 1, ref. [17]).

The paper's motivating kernel: the *outermost* loop over per-task
accumulator structs carries the worksharing construct, and each task
scans its private slice of the point data (``M / num_threads`` points —
note the thread count in the trip count: total work *shrinks* as threads
grow, which is what makes the paper's modeled percentage decline with
the thread count in Table III while heat/DFT stay flat).

The 40-byte accumulator struct (plus the ``points`` pointer → 48 bytes
with padding) does not tile 64-byte lines, so adjacent tasks share
lines; with ``schedule(static, 1)`` adjacent tasks live on adjacent
*threads* and every accumulator update ping-pongs the line.
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import BinOp, LoadExpr
from repro.ir.layout import DOUBLE, LONGLONG, PointerType, StructType
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.kernels.base import KernelInstance

FS_CHUNK = 1
NFS_CHUNK = 10
PRED_CHUNK_RUNS = 10

LINREG_SOURCE_TEMPLATE = """\
#define NTASKS {tasks}
#define PPT {ppt}

typedef struct {{
    double x;
    double y;
}} point_t;

typedef struct {{
    point_t *points;
    long long sx;
    long long sxx;
    long long sy;
    long long syy;
    long long sxy;
}} lreg_args;

lreg_args tid_args[NTASKS];

void linear_regression(void)
{{
    int i, j;
    #pragma omp parallel for private(i, j) schedule(static,{chunk})
    for (j = 0; j < NTASKS; j++) {{
        for (i = 0; i < PPT; i++) {{
            tid_args[j].sx  += tid_args[j].points[i].x;
            tid_args[j].sxx += tid_args[j].points[i].x * tid_args[j].points[i].x;
            tid_args[j].sy  += tid_args[j].points[i].y;
            tid_args[j].syy += tid_args[j].points[i].y * tid_args[j].points[i].y;
            tid_args[j].sxy += tid_args[j].points[i].x * tid_args[j].points[i].y;
        }}
    }}
}}
"""


def linreg_source(tasks: int, ppt: int, chunk: int = FS_CHUNK) -> str:
    """C/OpenMP source of the linear regression kernel (paper Fig. 1)."""
    return LINREG_SOURCE_TEMPLATE.format(tasks=tasks, ppt=ppt, chunk=chunk)


def build_linreg_nest(tasks: int, ppt: int, chunk: int = FS_CHUNK) -> ParallelLoopNest:
    """Programmatically built IR for the linear regression kernel.

    ``ppt`` is the paper's ``M / num_threads`` — points processed per
    task at the thread count being analyzed.
    """
    if tasks < 1 or ppt < 1:
        raise ValueError("linreg needs positive task and point counts")
    point_t = StructType.create("point_t", [("x", DOUBLE), ("y", DOUBLE)])
    lreg_args = StructType.create(
        "lreg_args",
        [
            ("points", PointerType(point_t)),
            ("sx", LONGLONG),
            ("sxx", LONGLONG),
            ("sy", LONGLONG),
            ("syy", LONGLONG),
            ("sxy", LONGLONG),
        ],
    )
    tid_args = ArrayDecl.create("tid_args", lreg_args, (tasks,))
    # The pointer member materializes as a synthetic rectangular array,
    # matching the frontend's lowering of ``tid_args[j].points[i]``.
    points = ArrayDecl.create("tid_args.points", point_t, (tasks, ppt))
    i = AffineExpr.var("i")
    j = AffineExpr.var("j")

    def pt(fieldname: str) -> LoadExpr:
        return LoadExpr(ArrayRef(points, (j, i), (fieldname,)))

    def acc(fieldname: str, rhs) -> Assign:
        return Assign(
            ArrayRef(tid_args, (j,), (fieldname,), is_write=True),
            rhs,
            augmented="+",
        )

    body = [
        acc("sx", pt("x")),
        acc("sxx", BinOp("*", pt("x"), pt("x"))),
        acc("sy", pt("y")),
        acc("syy", BinOp("*", pt("y"), pt("y"))),
        acc("sxy", BinOp("*", pt("x"), pt("y"))),
    ]
    inner = Loop.create("i", 0, ppt, body)
    outer = Loop.create("j", 0, tasks, [inner])
    return ParallelLoopNest(
        name="linear_regression.j",
        root=outer,
        parallel_var="j",
        schedule=Schedule("static", chunk),
        private=("i", "j"),
    )


def linear_regression(
    num_threads: int,
    tasks: int = 480,
    total_points: int = 2880,
    chunk: int = FS_CHUNK,
) -> KernelInstance:
    """The linear regression instance for a given thread count.

    The analyzed nest uses ``ppt = total_points // num_threads`` (the
    paper's ``M / num_threads`` inner bound); the reference nest is the
    single-thread binding (``ppt = total_points``), giving the
    thread-independent normalization DESIGN.md describes.
    """
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if total_points % num_threads:
        raise ValueError(
            f"total_points ({total_points}) must divide evenly by "
            f"num_threads ({num_threads}) to mirror the paper's M/num_threads"
        )
    ppt = total_points // num_threads
    nest = build_linreg_nest(tasks, ppt, chunk)
    reference = build_linreg_nest(tasks, total_points, chunk)
    return KernelInstance(
        name="linreg",
        nest=nest,
        reference_nest=reference,
        source=linreg_source(tasks, ppt, chunk),
        fs_chunk=FS_CHUNK,
        nfs_chunk=NFS_CHUNK,
        pred_chunk_runs=PRED_CHUNK_RUNS,
        params={
            "tasks": tasks,
            "total_points": total_points,
            "ppt": ppt,
            "num_threads": num_threads,
        },
    )
