"""Discrete Fourier transform kernel (paper ref. [1]).

Direct-evaluation DFT: the outer loop walks input samples sequentially;
the *innermost* loop over output frequencies is the OpenMP worksharing
loop (innermost-level parallelization, as in the paper).  Each inner
iteration performs two read-modify-write accumulations into the output
arrays — with ``schedule(static, 1)`` the RMW *loads* constantly hit
lines another thread has just modified, producing the paper's heaviest
FS overhead (Table II, ~32–36%).
"""

from __future__ import annotations

import math

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import BinOp, CallExpr, LoadExpr, VarRef
from repro.ir.layout import DOUBLE
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.kernels.base import KernelInstance

FS_CHUNK = 1
NFS_CHUNK = 16
PRED_CHUNK_RUNS = 50

DFT_SOURCE_TEMPLATE = """\
#define NSAMP {samples}
#define NFREQ {freqs}

double in_re[NSAMP];
double in_im[NSAMP];
double out_re[NFREQ];
double out_im[NFREQ];

void dft(void)
{{
    int n, k;
    double w = {w};
    for (n = 0; n < NSAMP; n++) {{
        #pragma omp parallel for private(k) schedule(static,{chunk})
        for (k = 0; k < NFREQ; k++) {{
            out_re[k] += in_re[n] * cos(w * n * k) + in_im[n] * sin(w * n * k);
            out_im[k] += in_im[n] * cos(w * n * k) - in_re[n] * sin(w * n * k);
        }}
    }}
}}
"""


def dft_source(samples: int, freqs: int, chunk: int = FS_CHUNK) -> str:
    """C/OpenMP source of the DFT kernel at the given sizes."""
    return DFT_SOURCE_TEMPLATE.format(
        samples=samples, freqs=freqs, chunk=chunk, w=repr(2.0 * math.pi / freqs)
    )


def build_dft_nest(samples: int, freqs: int, chunk: int = FS_CHUNK) -> ParallelLoopNest:
    """Programmatically built IR for the DFT kernel."""
    if samples < 1 or freqs < 1:
        raise ValueError("DFT needs positive sample and frequency counts")
    in_re = ArrayDecl.create("in_re", DOUBLE, (samples,))
    in_im = ArrayDecl.create("in_im", DOUBLE, (samples,))
    out_re = ArrayDecl.create("out_re", DOUBLE, (freqs,))
    out_im = ArrayDecl.create("out_im", DOUBLE, (freqs,))
    n = AffineExpr.var("n")
    k = AffineExpr.var("k")
    w = VarRef("w", DOUBLE)

    def trig(fn: str) -> CallExpr:
        return CallExpr(
            fn, (BinOp("*", BinOp("*", w, VarRef("n")), VarRef("k")),)
        )

    def load(arr: ArrayDecl, ix) -> LoadExpr:
        return LoadExpr(ArrayRef(arr, (ix,)))

    re_update = Assign(
        ArrayRef(out_re, (k,), is_write=True),
        BinOp(
            "+",
            BinOp("*", load(in_re, n), trig("cos")),
            BinOp("*", load(in_im, n), trig("sin")),
        ),
        augmented="+",
    )
    im_update = Assign(
        ArrayRef(out_im, (k,), is_write=True),
        BinOp(
            "-",
            BinOp("*", load(in_im, n), trig("cos")),
            BinOp("*", load(in_re, n), trig("sin")),
        ),
        augmented="+",
    )
    inner = Loop.create("k", 0, freqs, [re_update, im_update])
    outer = Loop.create("n", 0, samples, [inner])
    return ParallelLoopNest(
        name="dft.k",
        root=outer,
        parallel_var="k",
        schedule=Schedule("static", chunk),
        private=("k",),
    )


def dft(samples: int = 16, freqs: int = 3072, chunk: int = FS_CHUNK) -> KernelInstance:
    """The DFT kernel instance used by the experiments.

    Defaults give a parallel trip of 3072 = 4·48·16, divisible by
    ``threads × chunk`` across the paper's thread sweep for both chunk
    configurations.
    """
    nest = build_dft_nest(samples, freqs, chunk)
    return KernelInstance(
        name="dft",
        nest=nest,
        reference_nest=nest,  # iteration space is thread-independent
        source=dft_source(samples, freqs, chunk),
        fs_chunk=FS_CHUNK,
        nfs_chunk=NFS_CHUNK,
        pred_chunk_runs=PRED_CHUNK_RUNS,
        params={"samples": samples, "freqs": freqs},
    )
