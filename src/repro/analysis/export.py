"""Export experiment results to machine-readable formats.

EXPERIMENTS.md carries the human-readable tables; downstream plotting
and regression-tracking want CSV/JSON.  These writers are deliberately
dependency-free (csv/json from the stdlib).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.analysis.report import ExperimentResult


def result_to_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write one experiment's rows as CSV (header included)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    return path


def results_to_csv_dir(
    results: Sequence[ExperimentResult], directory: str | Path
) -> list[Path]:
    """Write each result to ``<directory>/<experiment>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = []
    for res in results:
        slug = (
            res.experiment.lower().replace(".", "").replace(" ", "_")
        )
        out.append(result_to_csv(res, directory / f"{slug}.csv"))
    return out


def results_to_json(
    results: Sequence[ExperimentResult], path: str | Path
) -> Path:
    """Write a batch of results as one JSON document."""
    path = Path(path)
    payload = [
        {
            "experiment": res.experiment,
            "title": res.title,
            "columns": list(res.columns),
            "rows": [list(row) for row in res.rows],
            "notes": list(res.notes),
            "elapsed_seconds": res.elapsed_seconds,
        }
        for res in results
    ]
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_results_json(path: str | Path) -> list[ExperimentResult]:
    """Round-trip loader for :func:`results_to_json` output."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    out = []
    for item in payload:
        res = ExperimentResult(
            experiment=item["experiment"],
            title=item["title"],
            columns=tuple(item["columns"]),
            notes=list(item["notes"]),
            elapsed_seconds=item["elapsed_seconds"],
        )
        for row in item["rows"]:
            res.add_row(*row)
        out.append(res)
    return out
