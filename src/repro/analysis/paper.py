"""The paper's reported numbers and the reproduction's known deviations.

Kept as data so EXPERIMENTS.md always carries the paper's side of the
comparison next to the regenerated numbers, and so tests can assert the
reproduction's qualitative claims (who wins, what is flat, what
declines) without hard-coding strings in several places.
"""

from __future__ import annotations

#: What the paper reports for each experiment (its Tables I-VI and
#: Figures 2/6/8/9), phrased as the *claim to reproduce*.
PAPER_EXPECTATIONS: dict[str, str] = {
    "Fig. 2": (
        "execution time of the linear regression kernel falls as the chunk "
        "size grows from 1 to 30 (up to ~30% on the authors' machine), then "
        "flattens."
    ),
    "Fig. 6": (
        "cumulative FS cases grow linearly with the number of chunk runs — "
        "the premise of the linear-regression prediction model."
    ),
    "Table I": (
        "heat diffusion: modeled FS ≈ 6.9–7.2%, essentially flat from 2 to "
        "48 threads, and close to the measured percentage."
    ),
    "Table II": (
        "DFT: modeled FS ≈ 31.5–36.7%, roughly flat/slightly rising with "
        "threads, close to the measured percentage — the heaviest FS of the "
        "three kernels."
    ),
    "Table III": (
        "linear regression: modeled FS declines ~16% → ~1.7% as threads "
        "grow (chunk runs ∝ 1/threads) while the measured effect does not — "
        "the paper's own reported divergence for outer-loop parallelization."
    ),
    "Table IV": (
        "heat: FS cases predicted from 20 chunk runs match the "
        "fully-modeled counts closely (within a few percent), at a tiny "
        "fraction of the evaluation cost."
    ),
    "Table V": "DFT: prediction from 50 chunk runs matches the full model.",
    "Table VI": (
        "linear regression: prediction from 10 chunk runs matches the full "
        "model; both decline with the thread count."
    ),
    "Fig. 8": (
        "heat: measured, modeled and predicted FS percentages coincide "
        "across thread counts."
    ),
    "Fig. 9": (
        "DFT: measured, modeled and predicted FS percentages coincide "
        "across thread counts."
    ),
}


def deviations_section() -> str:
    """The standing deviations section appended to EXPERIMENTS.md."""
    return """\
## Known deviations from the paper

1. **Problem sizes are reduced.**  The paper runs 5000²-scale loops on
   real hardware; the pure-Python model/simulator pair runs reduced
   grids (sizes recorded in each table's note).  FS *rates* per
   iteration are size-independent for these kernels, so percentages are
   comparable; absolute case counts are not.
2. **"Measured" numbers come from a simulator.**  The MESI simulator is
   a lockstep, cycle-approximate machine: it exposes every coherence
   event on the critical path, where real hardware overlaps many of
   them.  Absolute FS percentages therefore run higher than the paper's
   (heat ~30% here vs ~7% there); the reproduced claims are the
   *relative* ones — heat ≪ DFT, flat across threads, model ≈
   measurement for innermost-parallel kernels, and the linreg
   divergence.
3. **Normalization of Eq. (5).**  The paper does not publish its
   ``Ñ_fs`` normalization; DESIGN.md documents ours (Eq. (1) over the
   thread-independent reference nest).  It reproduces the paper's
   qualitative behaviour, including the ∝1/threads decline of linreg's
   modeled percentage.
4. **DFT non-FS chunk.**  With line-aligned outputs, chunk=16 leaves
   zero FS in our DFT (the paper reports a nonzero count, suggesting
   unaligned allocation on their system); the resulting percentages are
   unaffected.
5. **Cost-model constants** (latencies, penalties, libm call cost,
   prefetch coverage) are calibrated once in ``repro/machine`` — the
   paper does not publish Open64's internal values.  The same constants
   feed both the model and the simulator, so their agreement is not an
   artifact of tuning one against the other per experiment.
6. **The 40-thread rows wobble.**  Problem sizes divide evenly by every
   other thread count in the paper's sweep, but not by 40 (nor do the
   paper's 5000-scale sizes); the resulting load imbalance perturbs the
   measured (simulated) percentage at T=40 only.  The model's percentage
   is unaffected because Eq. (5)'s normalization is thread-independent.
"""
