"""Supplementary experiments — beyond the paper's tables and figures.

These exercise the reproduction's extensions end to end and land in a
separate EXPERIMENTS.md section:

* **victim identification** — the paper's motivating use case: name the
  data structure causing the FS, with hot-line and thread-adjacency
  evidence;
* **baseline comparison** — compile-time model vs the runtime/trace
  detector family (agreement and per-analysis work);
* **mitigation summary** — model-recommended chunk and padding fixes,
  validated on the simulator.
"""

from __future__ import annotations

import time

from repro.analysis.report import ExperimentResult
from repro.baselines import RuntimeFSDetector
from repro.kernels import transpose
from repro.model import FalseSharingPredictor, diagnose
from repro.sim import MulticoreSimulator
from repro.transform import ChunkSizeOptimizer, PaddingAdvisor


class SupplementaryMixin:
    """Extra drivers mixed into :class:`~repro.analysis.experiments.ExperimentSuite`."""

    def run_supp_victims(self) -> ExperimentResult:
        """Victim data structures per kernel (the paper's motivation)."""
        T = self.scale.fig2_threads
        res = ExperimentResult(
            "Supp. victims",
            f"victim identification per kernel (T={T}, FS chunk)",
            ("kernel", "victim array", "share of FS cases",
             "lines involved", "adjacent-thread share"),
        )
        t0 = time.perf_counter()
        for name, k in (
            ("heat", self.scale.heat()),
            ("dft", self.scale.dft()),
            ("linreg", self.scale.linreg(T)),
            ("transpose (control)", transpose(rows=8, cols=512)),
        ):
            r = self.model.analyze(k.nest, T, chunk=k.fs_chunk)
            if r.fs_cases == 0:
                # The negative control: no FS, no victim — by design.
                res.add_row(name, "(none)", "0 cases", 0, "-")
                continue
            d = diagnose(r)
            victim = r.victim_arrays()[0]
            res.add_row(
                name,
                victim.name,
                f"{100.0 * victim.fs_cases / max(r.fs_cases, 1):.0f}%",
                victim.lines,
                f"{100.0 * d.adjacency_share:.0f}%",
            )
        res.elapsed_seconds = time.perf_counter() - t0
        return res

    def run_supp_baseline(self) -> ExperimentResult:
        """Compile-time model vs runtime trace detection."""
        T = self.scale.fig2_threads
        runtime = RuntimeFSDetector(self.machine)
        res = ExperimentResult(
            "Supp. baseline",
            f"compile-time vs runtime FS detection (T={T}, FS chunk)",
            ("kernel", "runtime events", "model cases", "predicted cases",
             "runtime accesses", "predictor accesses"),
        )
        t0 = time.perf_counter()
        for name, k in (
            ("heat", self.scale.heat()),
            ("linreg", self.scale.linreg(T)),
        ):
            rt = runtime.run(k.nest, T, chunk=k.fs_chunk)
            m = self.model.analyze(k.nest, T, chunk=k.fs_chunk)
            pred = FalseSharingPredictor(
                self.model, n_runs=k.pred_chunk_runs
            ).predict(k.nest, T, chunk=k.fs_chunk)
            res.add_row(
                name,
                rt.stats.false_sharing_events,
                m.fs_cases,
                int(pred.predicted_fs_cases),
                rt.stats.accesses,
                pred.prefix_result.accesses,
            )
        res.elapsed_seconds = time.perf_counter() - t0
        return res

    def run_supp_mitigation(self) -> ExperimentResult:
        """Model-guided fixes, validated on the simulator."""
        T = self.scale.fig2_threads
        sim = MulticoreSimulator(self.machine)
        res = ExperimentResult(
            "Supp. mitigation",
            f"model-recommended fixes for linreg (T={T})",
            ("fix", "parameter", "sim time before (ms)",
             "sim time after (ms)", "speedup"),
        )
        t0 = time.perf_counter()
        k = self.scale.linreg(T)
        before = sim.run(k.nest, T, chunk=1)

        rec = ChunkSizeOptimizer(
            self.machine, use_predictor=True, predictor_runs=5
        ).recommend(k.nest, T, candidates=(1, 2, 4, 8, 10))
        after_chunk = sim.run(k.nest, T, chunk=rec.best_chunk)
        res.add_row(
            "schedule chunk", f"static,{rec.best_chunk}",
            before.seconds * 1e3, after_chunk.seconds * 1e3,
            f"{before.cycles / after_chunk.cycles:.2f}x",
        )

        advices = PaddingAdvisor(self.machine).advise(k.nest, T)
        if advices:
            adv = advices[0]
            after_pad = sim.run(adv.nest_after, T, chunk=1)
            res.add_row(
                "struct padding",
                f"{adv.element_bytes}->{adv.padded_bytes} B",
                before.seconds * 1e3, after_pad.seconds * 1e3,
                f"{before.cycles / after_pad.cycles:.2f}x",
            )
        res.elapsed_seconds = time.perf_counter() - t0
        return res

    def run_supplementary(self) -> list[ExperimentResult]:
        return [
            self.run_supp_victims(),
            self.run_supp_baseline(),
            self.run_supp_mitigation(),
        ]
