"""Experiment drivers: one function per table/figure of the paper.

Every driver returns an :class:`~repro.analysis.report.ExperimentResult`
whose rows mirror the paper's columns; ``repro.analysis.runner`` strings
them into EXPERIMENTS.md, and the benchmarks call them at reduced scale.

Scales
------
``full``
    Default kernel sizes, the paper's thread sweep 2..48.  This is what
    EXPERIMENTS.md records.
``tiny``
    Miniature kernels and threads (2, 4, 8) for tests and benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.analysis.supplementary import SupplementaryMixin
from repro.costmodels import TotalCostModel
from repro.kernels import KernelInstance, dft, heat_diffusion, linear_regression
from repro.machine import MachineConfig, paper_machine
from repro.model import (
    FalseSharingModel,
    FalseSharingPredictor,
    fs_overhead_percent,
    measured_fs_percent,
    ols_fit,
    predicted_fs_percent,
)
from repro.sim import MulticoreSimulator
from repro.util import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine, Job

logger = get_logger(__name__)

#: The paper's thread sweep (Section IV-B: 2 to 48 cores).
PAPER_THREADS: tuple[int, ...] = (2, 4, 8, 16, 24, 32, 40, 48)
TINY_THREADS: tuple[int, ...] = (2, 4, 8)


@dataclass(frozen=True)
class Scale:
    """Kernel factories and thread sweep for one experiment scale."""

    name: str
    threads: tuple[int, ...]
    heat: Callable[[], KernelInstance]
    dft: Callable[[], KernelInstance]
    linreg: Callable[[int], KernelInstance]
    fig2_chunks: tuple[int, ...]
    fig2_threads: int
    fig6_runs: int


FULL_SCALE = Scale(
    name="full",
    threads=PAPER_THREADS,
    heat=lambda: heat_diffusion(),
    dft=lambda: dft(),
    linreg=lambda T: linear_regression(T),
    fig2_chunks=(1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30),
    fig2_threads=8,
    fig6_runs=40,
)

TINY_SCALE = Scale(
    name="tiny",
    threads=TINY_THREADS,
    heat=lambda: heat_diffusion(rows=6, cols=1026),
    dft=lambda: dft(samples=4, freqs=768),
    linreg=lambda T: linear_regression(T, tasks=96, total_points=480),
    fig2_chunks=(1, 2, 4, 8),
    fig2_threads=4,
    fig6_runs=12,
)

SCALES = {"full": FULL_SCALE, "tiny": TINY_SCALE}


class ExperimentSuite(SupplementaryMixin):
    """Shared machinery for running the paper's experiments.

    Parameters
    ----------
    machine:
        Machine description; defaults to the paper's 48-core preset.
    scale:
        ``"full"`` or ``"tiny"`` (see module docstring).
    detector_engine:
        Detector engine for every modeled table/figure: ``"auto"``
        (default — vectorized fast path where applicable), ``"jit"``,
        ``"fast"`` or ``"reference"``.  All engines produce
        bit-identical tables; the knob exists for benchmarking and
        cross-checking.
    steady_state:
        Enable the exact steady-state early exit (default ``True``).
    sim_jobs:
        Segment-parallel simulation workers per analysis (default
        ``1``; see :mod:`repro.model.simparallel`).  Result-invariant.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        scale: str = "full",
        detector_engine: str = "auto",
        steady_state: bool = True,
        sim_jobs: int = 1,
    ) -> None:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; use one of {set(SCALES)}")
        self.machine = machine or paper_machine()
        self.scale = SCALES[scale]
        self.detector_engine = detector_engine
        self.steady_state = steady_state
        self.sim_jobs = sim_jobs
        self.model = FalseSharingModel(
            self.machine, engine=detector_engine, steady_state=steady_state,
            sim_jobs=sim_jobs,
        )
        self.sim = MulticoreSimulator(self.machine)
        self.total_model = TotalCostModel(self.machine)
        # Refreshed by run_all(): provenance of the last suite run
        # (computed vs served-from-cache per driver).
        from repro.engine.incremental import ReuseReport

        self.last_reuse = ReuseReport()

    # -- Tables I-III: measured vs modeled FS overhead -------------------------

    def _overhead_table(
        self,
        experiment: str,
        title: str,
        factory: Callable[[int], KernelInstance],
    ) -> ExperimentResult:
        result = ExperimentResult(
            experiment=experiment,
            title=title,
            columns=(
                "threads",
                "T_fs (ms)",
                "T_nfs (ms)",
                "measured FS %",
                "modeled FS %",
            ),
        )
        t0 = time.perf_counter()
        for T in self.scale.threads:
            k = factory(T)
            s_fs = self.sim.run(k.nest, T, chunk=k.fs_chunk)
            s_nfs = self.sim.run(k.nest, T, chunk=k.nfs_chunk)
            measured = measured_fs_percent(s_fs.cycles, s_nfs.cycles)
            r_fs = self.model.analyze(k.nest, T, chunk=k.fs_chunk)
            r_nfs = self.model.analyze(k.nest, T, chunk=k.nfs_chunk)
            report = fs_overhead_percent(
                r_fs, r_nfs, self.machine, k.reference_nest, self.total_model
            )
            result.add_row(
                T,
                s_fs.seconds * 1e3,
                s_nfs.seconds * 1e3,
                round(measured, 1),
                round(report.percent, 1),
            )
        k0 = factory(self.scale.threads[0])
        result.notes.append(
            f"kernel params: {dict(k0.params)}; FS chunk={k0.fs_chunk}, "
            f"non-FS chunk={k0.nfs_chunk}; times are simulated wall-clock"
        )
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def run_table1(self) -> ExperimentResult:
        """Table I: heat diffusion, measured vs modeled FS overhead %."""
        return self._overhead_table(
            "Table I", "heat diffusion: FS overhead, measured vs modeled",
            lambda T: self.scale.heat(),
        )

    def run_table2(self) -> ExperimentResult:
        """Table II: DFT, measured vs modeled FS overhead %."""
        return self._overhead_table(
            "Table II", "DFT: FS overhead, measured vs modeled",
            lambda T: self.scale.dft(),
        )

    def run_table3(self) -> ExperimentResult:
        """Table III: linear regression (outer-loop parallel) — the
        configuration where the paper reports model/measurement divergence."""
        return self._overhead_table(
            "Table III", "linear regression: FS overhead, measured vs modeled",
            self.scale.linreg,
        )

    # -- Tables IV-VI: predicted vs modeled FS cases -----------------------------

    def _prediction_table(
        self,
        experiment: str,
        title: str,
        factory: Callable[[int], KernelInstance],
    ) -> ExperimentResult:
        k0 = factory(self.scale.threads[0])
        result = ExperimentResult(
            experiment=experiment,
            title=title,
            columns=(
                "threads",
                f"pred FS cases (chunk={k0.fs_chunk})",
                f"pred FS cases (chunk={k0.nfs_chunk})",
                "pred FS %",
                f"model FS cases (chunk={k0.fs_chunk})",
                f"model FS cases (chunk={k0.nfs_chunk})",
                "model FS %",
            ),
        )
        t0 = time.perf_counter()
        for T in self.scale.threads:
            k = factory(T)
            predictor = FalseSharingPredictor(self.model, n_runs=k.pred_chunk_runs)
            p_fs = predictor.predict(k.nest, T, chunk=k.fs_chunk)
            p_nfs = predictor.predict(k.nest, T, chunk=k.nfs_chunk)
            r_fs = self.model.analyze(k.nest, T, chunk=k.fs_chunk)
            r_nfs = self.model.analyze(k.nest, T, chunk=k.nfs_chunk)
            ref_cycles = self.total_model.breakdown(
                k.reference_nest, num_threads=T, fs_cases=0.0
            ).total
            pred_pct = predicted_fs_percent(
                p_fs.predicted_fs_cases,
                p_nfs.predicted_fs_cases,
                p_fs.prefix_result,
                self.machine,
                ref_cycles,
            )
            model_pct = fs_overhead_percent(
                r_fs, r_nfs, self.machine, k.reference_nest, self.total_model
            ).percent
            result.add_row(
                T,
                int(p_fs.predicted_fs_cases),
                int(p_nfs.predicted_fs_cases),
                round(pred_pct, 1),
                r_fs.fs_cases,
                r_nfs.fs_cases,
                round(model_pct, 1),
            )
        result.notes.append(
            f"prediction sampled {k0.pred_chunk_runs} chunk runs "
            f"(paper: {k0.pred_chunk_runs}); kernel params: {dict(k0.params)}"
        )
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def run_table4(self) -> ExperimentResult:
        """Table IV: heat — predicted vs modeled FS cases and %."""
        return self._prediction_table(
            "Table IV", "heat diffusion: predicted vs modeled FS cases",
            lambda T: self.scale.heat(),
        )

    def run_table5(self) -> ExperimentResult:
        """Table V: DFT — predicted vs modeled FS cases and %."""
        return self._prediction_table(
            "Table V", "DFT: predicted vs modeled FS cases",
            lambda T: self.scale.dft(),
        )

    def run_table6(self) -> ExperimentResult:
        """Table VI: linear regression — predicted vs modeled FS cases."""
        return self._prediction_table(
            "Table VI", "linear regression: predicted vs modeled FS cases",
            self.scale.linreg,
        )

    # -- Figures ------------------------------------------------------------------

    def run_fig2(self) -> ExperimentResult:
        """Fig. 2: linear regression execution time vs chunk size."""
        T = self.scale.fig2_threads
        k = self.scale.linreg(T)
        result = ExperimentResult(
            experiment="Fig. 2",
            title=f"linear regression: execution time vs chunk size (T={T})",
            columns=("chunk", "time (ms)", "improvement vs chunk=1 (%)"),
        )
        t0 = time.perf_counter()
        base_ms: float | None = None
        for chunk in self.scale.fig2_chunks:
            s = self.sim.run(k.nest, T, chunk=chunk)
            ms = s.seconds * 1e3
            if base_ms is None:
                base_ms = ms
            result.add_row(chunk, ms, round(100.0 * (base_ms - ms) / base_ms, 1))
        result.notes.append(
            "the paper reports up to ~30% improvement from chunk 1 -> 30; the "
            "simulated substrate exposes every coherence stall, so the "
            "improvement here is larger — the shape (monotone decrease, then "
            "flattening) is the reproduced claim"
        )
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def run_fig6(self) -> ExperimentResult:
        """Fig. 6: FS cases grow linearly with the number of chunk runs."""
        T = self.scale.fig2_threads
        k = self.scale.heat()
        runs = self.scale.fig6_runs
        t0 = time.perf_counter()
        r = self.model.analyze(
            k.nest, T, chunk=k.fs_chunk, max_chunk_runs=runs, record_series=True
        )
        series = r.per_chunk_run
        assert series is not None
        result = ExperimentResult(
            experiment="Fig. 6",
            title=f"heat: cumulative FS cases per chunk run (T={T}, chunk={k.fs_chunk})",
            columns=("chunk run", "cumulative FS cases"),
        )
        for i, y in enumerate(series.tolist(), start=1):
            result.add_row(i, int(y))
        x = np.arange(1, len(series) + 1, dtype=np.float64)
        fit = ols_fit(x, series.astype(np.float64))
        result.notes.append(
            f"OLS fit: y = {fit.a:.1f}x + {fit.b:.1f}, R^2 = {fit.r2:.6f} "
            "(linearity is the paper's premise for the prediction model)"
        )
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def _summary_figure(
        self,
        experiment: str,
        title: str,
        factory: Callable[[int], KernelInstance],
    ) -> ExperimentResult:
        """Figs. 8/9: measured vs modeled vs LR-predicted FS percentages."""
        result = ExperimentResult(
            experiment=experiment,
            title=title,
            columns=("threads", "measured %", "modeled %", "predicted %"),
        )
        t0 = time.perf_counter()
        for T in self.scale.threads:
            k = factory(T)
            s_fs = self.sim.run(k.nest, T, chunk=k.fs_chunk)
            s_nfs = self.sim.run(k.nest, T, chunk=k.nfs_chunk)
            measured = measured_fs_percent(s_fs.cycles, s_nfs.cycles)
            r_fs = self.model.analyze(k.nest, T, chunk=k.fs_chunk)
            r_nfs = self.model.analyze(k.nest, T, chunk=k.nfs_chunk)
            modeled = fs_overhead_percent(
                r_fs, r_nfs, self.machine, k.reference_nest, self.total_model
            ).percent
            predictor = FalseSharingPredictor(self.model, n_runs=k.pred_chunk_runs)
            p_fs = predictor.predict(k.nest, T, chunk=k.fs_chunk)
            p_nfs = predictor.predict(k.nest, T, chunk=k.nfs_chunk)
            ref_cycles = self.total_model.breakdown(
                k.reference_nest, num_threads=T, fs_cases=0.0
            ).total
            predicted = predicted_fs_percent(
                p_fs.predicted_fs_cases,
                p_nfs.predicted_fs_cases,
                p_fs.prefix_result,
                self.machine,
                ref_cycles,
            )
            result.add_row(
                T, round(measured, 1), round(modeled, 1), round(predicted, 1)
            )
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def run_fig8(self) -> ExperimentResult:
        """Fig. 8: heat — measured/modeled/predicted FS% across threads."""
        return self._summary_figure(
            "Fig. 8", "heat: FS effect comparison across thread counts",
            lambda T: self.scale.heat(),
        )

    def run_fig9(self) -> ExperimentResult:
        """Fig. 9: DFT — measured/modeled/predicted FS% across threads."""
        return self._summary_figure(
            "Fig. 9", "DFT: FS effect comparison across thread counts",
            lambda T: self.scale.dft(),
        )

    # -- whole-suite --------------------------------------------------------------

    def run_driver(self, name: str) -> ExperimentResult:
        """Run one named driver (e.g. ``"run_table1"``)."""
        if name not in DRIVER_ORDER and name not in SUPPLEMENTARY_DRIVERS:
            raise ValueError(f"unknown experiment driver {name!r}")
        return getattr(self, name)()

    def experiment_jobs(
        self, drivers: Sequence[str] | None = None
    ) -> "list[Job]":
        """One engine job per driver, each reconstructing the suite in
        its worker from (machine, scale)."""
        from repro.engine import Job

        machine_key = self.machine.to_key_dict()
        # Engine knobs ride in the payload, never the hashed spec: all
        # detector engines are result-identical, so the cache key must
        # not fork on them (a table computed under "reference" serves an
        # "auto" re-run and vice versa).
        payload = {
            "machine": self.machine,
            "detector_engine": self.detector_engine,
            "steady_state": self.steady_state,
            "sim_jobs": self.sim_jobs,
        }
        jobs = []
        for name in drivers if drivers is not None else DRIVER_ORDER:
            spec = {
                "driver": name,
                "scale": self.scale.name,
                "machine": machine_key,
            }
            jobs.append(
                Job(
                    kind="experiment.driver",
                    spec=spec,
                    payload=payload,
                    label=f"experiment:{name}:{self.scale.name}",
                )
            )
        return jobs

    def run_all(
        self,
        engine: "Engine | None" = None,
        policy=None,
    ) -> list[ExperimentResult]:
        """Regenerate every table and figure, in paper order.

        With an ``engine``, the drivers fan out across its worker pool
        (each driver is one job — the tables are independent) and
        results memoize in the engine's store.

        Failure semantics: without a ``policy`` a driver failure raises
        (strict, historical behaviour).  With a keep-going
        :class:`~repro.resilience.partial.FailurePolicy`, failed
        drivers are isolated into ``policy.failures`` and the rest of
        the suite completes.

        ``self.last_reuse`` is refreshed with a per-driver
        :class:`~repro.engine.incremental.ReuseReport` (engine runs
        classify each driver by cache tier; serial runs count them all
        as computed) — the runner embeds it in the suite summary.
        """
        from repro.engine.incremental import ReuseReport, reuse_from_outcomes
        from repro.resilience.errors import ReproError
        from repro.resilience.partial import FailureReport

        if engine is not None:
            jobs = self.experiment_jobs()
            if policy is None:
                outcomes = engine.run(jobs)
                docs = [outcome.unwrap() for outcome in outcomes]
                self.last_reuse = reuse_from_outcomes(outcomes)
                return [ExperimentResult.from_dict(doc) for doc in docs]
            out: list[ExperimentResult] = []
            outcomes = engine.run(jobs)
            for outcome in outcomes:
                if outcome.ok:
                    out.append(ExperimentResult.from_dict(outcome.result))
                    policy.record_success()
                else:
                    policy.record_failure(
                        FailureReport.from_outcome(
                            outcome, kind="experiment.driver"
                        )
                    )
            self.last_reuse = reuse_from_outcomes(outcomes)
            return out
        out = []
        for name in DRIVER_ORDER:
            logger.info("running %s", name)
            if policy is None:
                res = self.run_driver(name)
            else:
                try:
                    res = self.run_driver(name)
                    policy.record_success()
                except ReproError as exc:
                    policy.record_failure(
                        FailureReport.from_exception(
                            exc, label=f"experiment:{name}",
                            kind="experiment.driver",
                        ),
                        cause=exc,
                    )
                    continue
            logger.info("%s done in %.1fs", res.experiment, res.elapsed_seconds)
            out.append(res)
        self.last_reuse = ReuseReport(
            total=len(DRIVER_ORDER), computed=len(out),
            failed=len(DRIVER_ORDER) - len(out),
        )
        return out


#: Paper-order driver methods of :class:`ExperimentSuite`.
DRIVER_ORDER: tuple[str, ...] = (
    "run_fig2",
    "run_fig6",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_fig8",
    "run_fig9",
)

#: Beyond-the-paper drivers from :class:`SupplementaryMixin`.
SUPPLEMENTARY_DRIVERS: tuple[str, ...] = (
    "run_supp_victims",
    "run_supp_baseline",
    "run_supp_mitigation",
)


def run_experiment_job(job) -> dict:
    """Engine runner for ``experiment.driver`` jobs (executes in a worker).

    Rebuilds the suite from the payload machine and the spec's scale,
    runs one driver, and returns the result's JSON form.
    """
    machine: MachineConfig = job.payload["machine"]
    suite = ExperimentSuite(
        machine=machine,
        scale=str(job.spec["scale"]),
        detector_engine=str(job.payload.get("detector_engine", "auto")),
        steady_state=bool(job.payload.get("steady_state", True)),
        sim_jobs=int(job.payload.get("sim_jobs", 1)),
    )
    return suite.run_driver(str(job.spec["driver"])).to_dict()
