"""Plain-text table rendering for experiment results.

The drivers in :mod:`repro.analysis.experiments` return structured
results; this module renders them the way the paper prints its tables —
monospace columns with a caption — for terminals, logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def _json_cell(value: object) -> object:
    """Coerce one table cell to a JSON-native value.

    Handles numpy scalars via their ``item()`` method without importing
    numpy here; anything non-numeric falls back to ``str``.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_cell(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def format_cell(value: object) -> str:
    """Human formatting: thousands separators, trimmed floats.

    >>> format_cell(1234567)
    '1,234,567'
    >>> format_cell(3.14159)
    '3.142'
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """One regenerated table or figure series."""

    experiment: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    # -- JSON round-trip (engine job results) --------------------------------

    def to_dict(self) -> dict:
        """JSON-able form, used as the engine's cached job payload.

        Numpy scalars are coerced to native Python numbers so the dict
        serializes with the stdlib ``json`` module.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[_json_cell(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    @staticmethod
    def from_dict(doc: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return ExperimentResult(
            experiment=doc["experiment"],
            title=doc["title"],
            columns=tuple(doc["columns"]),
            rows=[tuple(row) for row in doc["rows"]],
            notes=list(doc.get("notes", [])),
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
        )

    def to_text(self) -> str:
        """Render as a monospace table with caption and notes."""
        cells = [[format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines = [f"{self.experiment}: {self.title}", header, sep]
        for r in cells:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.elapsed_seconds:
            lines.append(f"  (generated in {self.elapsed_seconds:.1f}s)")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored markdown table."""
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---:" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(format_cell(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


def render_all(results: Sequence[ExperimentResult], markdown: bool = False) -> str:
    """Render a batch of results with blank-line separation."""
    parts = [r.to_markdown() if markdown else r.to_text() for r in results]
    return "\n\n".join(parts)
