"""Sensitivity analysis: which machine constants actually matter?

The cost-model constants in :mod:`repro.machine` are calibrated, not
published by the paper (deviation note 5).  A reproduction leaning on
unpublished constants owes the reader an elasticity analysis: perturb
each constant and report how much the headline output — the modeled FS
percentage of Eq. (5) — moves.

``Elasticity`` here is the standard log-derivative approximation:
``(Δoutput/output) / (Δinput/input)`` for a given relative perturbation.
Constants with |elasticity| ≪ 1 are not load-bearing; constants near or
above 1 deserve the calibration harness's scrutiny (they get it — see
:mod:`repro.machine.calibrate`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.costmodels import TotalCostModel
from repro.kernels.base import KernelInstance
from repro.machine import MachineConfig
from repro.model import FalseSharingModel, fs_overhead_percent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine, Job


@dataclass(frozen=True)
class SensitivityEntry:
    """Elasticity of the modeled FS% to one machine constant."""

    constant: str
    base_value: float
    base_output: float
    perturbed_output: float
    elasticity: float


def _with_constant(machine: MachineConfig, name: str, value: float) -> MachineConfig:
    """Return a copy of ``machine`` with one named constant replaced."""
    if name in ("remote_fetch_cycles", "invalidate_cycles", "upgrade_cycles"):
        return dataclasses.replace(
            machine,
            coherence=dataclasses.replace(machine.coherence, **{name: int(value)}),
        )
    if name == "prefetch_coverage":
        return dataclasses.replace(machine, prefetch_coverage=float(value))
    if name == "mem_latency_cycles":
        return dataclasses.replace(machine, mem_latency_cycles=int(value))
    if name == "call_latency":
        table = dict(machine.op_latencies.table)
        table["call"] = int(value)
        return dataclasses.replace(
            machine,
            op_latencies=dataclasses.replace(machine.op_latencies, table=table),
        )
    raise KeyError(f"unknown constant {name!r}")


def _constant_value(machine: MachineConfig, name: str) -> float:
    if name in ("remote_fetch_cycles", "invalidate_cycles", "upgrade_cycles"):
        return float(getattr(machine.coherence, name))
    if name == "prefetch_coverage":
        return machine.prefetch_coverage
    if name == "mem_latency_cycles":
        return float(machine.mem_latency_cycles)
    if name == "call_latency":
        return float(machine.op_latencies["call"])
    raise KeyError(name)


#: Constants the analysis perturbs by default.
DEFAULT_CONSTANTS = (
    "remote_fetch_cycles",
    "invalidate_cycles",
    "mem_latency_cycles",
    "call_latency",
    "prefetch_coverage",
)


def modeled_percent(
    machine: MachineConfig, kernel: KernelInstance, threads: int
) -> float:
    """The Eq. (5) modeled FS% for a kernel on a machine."""
    model = FalseSharingModel(machine)
    tm = TotalCostModel(machine)
    r_fs = model.analyze(kernel.nest, threads, chunk=kernel.fs_chunk)
    r_nfs = model.analyze(kernel.nest, threads, chunk=kernel.nfs_chunk)
    return fs_overhead_percent(
        r_fs, r_nfs, machine, kernel.reference_nest, tm
    ).percent


def output_job(
    machine: MachineConfig, kernel: KernelInstance, threads: int, label: str = ""
) -> "Job":
    """An engine job evaluating :func:`modeled_percent` for one machine.

    Perturbations are expressed by passing an already-perturbed
    ``machine`` — its canonical key dict carries the changed constant,
    so each perturbation memoizes under its own cache key.
    """
    from repro.engine import Job, nest_digest

    return Job(
        kind="sensitivity.output",
        spec={
            "kernel_sha256": nest_digest(kernel.nest),
            "reference_sha256": nest_digest(kernel.reference_nest),
            "fs_chunk": kernel.fs_chunk,
            "nfs_chunk": kernel.nfs_chunk,
            "machine": machine.to_key_dict(),
            "threads": threads,
        },
        payload={"machine": machine, "kernel": kernel},
        label=label or f"sensitivity:{kernel.name}:t{threads}",
    )


def run_output_job(job) -> dict:
    """Engine runner for ``sensitivity.output`` jobs."""
    percent = modeled_percent(
        job.payload["machine"], job.payload["kernel"], int(job.spec["threads"])
    )
    return {"percent": float(percent)}


def sensitivity(
    machine: MachineConfig,
    kernel: KernelInstance,
    threads: int = 4,
    constants: tuple[str, ...] = DEFAULT_CONSTANTS,
    perturbation: float = 0.25,
    output_fn: Callable[[MachineConfig, KernelInstance, int], float] | None = None,
    engine: "Engine | None" = None,
) -> list[SensitivityEntry]:
    """Elasticity of the modeled FS% to each constant.

    Parameters
    ----------
    perturbation:
        Relative bump applied to each constant (default +25%).
    output_fn:
        Override the measured output (default: Eq. (5) modeled percent).
        Custom output functions cannot cross a process boundary, so they
        force the serial path even when an ``engine`` is given.
    engine:
        Evaluate the base and every perturbed machine as independent
        engine jobs — the evaluations share no state, so they
        parallelize perfectly and memoize per perturbed config.
    """
    if not 0 < perturbation < 1:
        raise ValueError("perturbation must be in (0, 1)")
    out_fn = output_fn or modeled_percent

    # Plan the perturbations once, shared by both execution paths.
    plan: list[tuple[str, float, float, MachineConfig]] = []
    for name in constants:
        base_value = _constant_value(machine, name)
        if name == "prefetch_coverage":
            # Bounded in [0, 1]: perturb downward instead.
            new_value = base_value * (1 - perturbation)
            rel_in = -perturbation
        else:
            new_value = base_value * (1 + perturbation)
            rel_in = perturbation
        plan.append(
            (name, base_value, rel_in, _with_constant(machine, name, new_value))
        )

    if engine is not None and output_fn is None:
        jobs = [output_job(machine, kernel, threads, f"sensitivity:{kernel.name}:base")]
        jobs += [
            output_job(m, kernel, threads, f"sensitivity:{kernel.name}:{name}")
            for name, _, _, m in plan
        ]
        docs = engine.run_strict(jobs)
        base_output = docs[0]["percent"]
        perturbed_outputs = [doc["percent"] for doc in docs[1:]]
    else:
        base_output = out_fn(machine, kernel, threads)
        perturbed_outputs = [
            out_fn(m, kernel, threads) for _, _, _, m in plan
        ]

    entries = []
    for (name, base_value, rel_in, _), perturbed in zip(plan, perturbed_outputs):
        rel_out = (
            (perturbed - base_output) / base_output if base_output else 0.0
        )
        entries.append(
            SensitivityEntry(
                constant=name,
                base_value=base_value,
                base_output=base_output,
                perturbed_output=perturbed,
                elasticity=rel_out / rel_in,
            )
        )
    return entries
