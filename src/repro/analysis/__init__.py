"""Experiment drivers and reporting for the paper's tables and figures.

``ExperimentSuite`` regenerates every table/figure; ``runner`` writes
EXPERIMENTS.md; ``paper`` holds the paper's reported numbers for
side-by-side comparison.
"""

from repro.analysis.experiments import (
    ExperimentSuite,
    FULL_SCALE,
    PAPER_THREADS,
    TINY_SCALE,
    TINY_THREADS,
)
from repro.analysis.export import (
    load_results_json,
    result_to_csv,
    results_to_csv_dir,
    results_to_json,
)
from repro.analysis.paper import PAPER_EXPECTATIONS
from repro.analysis.report import ExperimentResult, format_cell, render_all
from repro.analysis.sensitivity import (
    DEFAULT_CONSTANTS,
    SensitivityEntry,
    modeled_percent,
    sensitivity,
)

__all__ = [
    "ExperimentSuite",
    "FULL_SCALE",
    "PAPER_THREADS",
    "TINY_SCALE",
    "TINY_THREADS",
    "PAPER_EXPECTATIONS",
    "ExperimentResult",
    "format_cell",
    "render_all",
    "load_results_json",
    "result_to_csv",
    "results_to_csv_dir",
    "results_to_json",
    "DEFAULT_CONSTANTS",
    "SensitivityEntry",
    "modeled_percent",
    "sensitivity",
]
