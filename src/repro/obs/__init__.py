"""Observability for the FS-model pipeline: spans, metrics, exporters.

The obs layer is the measurement substrate under every performance PR:

* :mod:`repro.obs.tracer` — zero-dependency span tracing
  (``with span("model.analyze"): ...`` / ``@traced``) with thread-safe
  accumulation and near-zero overhead when disabled;
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with Prometheus-style labeled children
  (``fs_cases{kernel="heat",threads="4"}``) plus snapshot/reset/merge;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and JSON/CSV metrics dumps;
* :mod:`repro.obs.config` — :class:`ObsConfig` (env vars
  ``REPRO_TRACE`` / ``REPRO_METRICS``, CLI flags, programmatic) and the
  :func:`session` lifecycle wrapper.

See ``docs/OBSERVABILITY.md`` for the span naming conventions and the
metric catalog.
"""

from repro.obs.config import ObsConfig, session
from repro.obs.export import (
    chrome_trace_events,
    load_chrome_trace,
    metrics_snapshot,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    format_labels,
    get_registry,
)
from repro.obs.tracer import (
    SpanEvent,
    Tracer,
    get_tracer,
    span,
    span_summary,
    traced,
)

__all__ = [
    "ObsConfig",
    "session",
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "span",
    "span_summary",
    "traced",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "format_labels",
    "get_registry",
    "chrome_trace_events",
    "load_chrome_trace",
    "metrics_snapshot",
    "write_chrome_trace",
    "write_metrics",
    "PROMETHEUS_CONTENT_TYPE",
    "to_prometheus",
]
