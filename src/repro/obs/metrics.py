"""Process-wide metrics registry: counters, gauges and histograms.

The registry follows the Prometheus naming model without the server:
a *metric* is created once per name (``registry.counter("fs_cases")``)
and has *labeled children* (``.labels(kernel="heat", threads=4)``) that
hold the actual values.  A metric used without labels transparently
uses its "default" (empty-label) child.

Values flow out through :meth:`MetricsRegistry.snapshot`, a plain
``dict`` that :mod:`repro.obs.export` serializes to JSON or CSV, and
back in through :meth:`MetricsRegistry.merge` (union of two runs —
counters/histograms add, gauges keep the other side's latest sample).

Everything is thread-safe (one registry-wide lock; increments are a
single dict update) and dependency-free.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "format_labels",
]

#: Default histogram bucket upper bounds (seconds-flavoured log scale,
#: but histograms are unit-agnostic).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, float("inf")
)


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label dict Prometheus-style: ``{a="1",b="x"}``.

    >>> format_labels({"kernel": "heat", "threads": 4})
    '{kernel="heat",threads="4"}'
    >>> format_labels({})
    ''
    """
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Child:
    """Base class for one labeled time series of a metric."""

    __slots__ = ("labels",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        self.labels = dict(labels)


class CounterChild(_Child):
    """A monotonically increasing count for one label set."""

    __slots__ = ("_value",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeChild(_Child):
    """A point-in-time sample for one label set."""

    __slots__ = ("_value",)

    def __init__(self, labels: Mapping[str, str]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class HistogramChild(_Child):
    """Bucketed observations (+ count/sum/min/max) for one label set."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self, labels: Mapping[str, str], bounds: tuple[float, ...]
    ) -> None:
        super().__init__(labels)
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_CHILD_FACTORY = {
    "counter": CounterChild,
    "gauge": GaugeChild,
}


class Metric:
    """A named metric family holding labeled children.

    Obtained from a :class:`MetricsRegistry`; calling :meth:`labels`
    returns (creating on first use) the child for that label set, and
    value operations on the metric itself proxy to the empty-label
    child, so unlabeled use stays one-liner simple.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self._children: dict[tuple, _Child] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: Any):
        """The child series for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    str_labels = {str(k): str(v) for k, v in labels.items()}
                    if self.kind == "histogram":
                        child = HistogramChild(str_labels, self.buckets)
                    else:
                        child = _CHILD_FACTORY[self.kind](str_labels)
                    self._children[key] = child
        return child

    # -- unlabeled conveniences (proxy to the empty-label child) -----------

    def inc(self, amount: float = 1.0) -> None:
        """Increment the empty-label child."""
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        """Set the empty-label child (gauges only)."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """Observe into the empty-label child (histograms only)."""
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """Value of the empty-label child (counter/gauge)."""
        return self.labels().value

    def children(self) -> list[_Child]:
        """All labeled children, creation order."""
        with self._lock:
            return list(self._children.values())


class MetricsRegistry:
    """A process-wide collection of named metrics.

    ``counter``/``gauge``/``histogram`` memoize by name, so every call
    site can say ``get_registry().counter("fs_cases")`` without passing
    handles around.  Redeclaring a name as a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: str, help: str,
             buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = Metric(name, kind, help, buckets)
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}"
            )
        if help and not metric.help:
            metric.help = help
        return metric

    def counter(self, name: str, help: str = "") -> Metric:
        """The counter metric ``name`` (created on first use)."""
        return self._get(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Metric:
        """The gauge metric ``name`` (created on first use)."""
        return self._get(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Metric:
        """The histogram metric ``name`` (created on first use)."""
        return self._get(name, "histogram", help, buckets)

    def metrics(self) -> list[Metric]:
        """All registered metrics, creation order."""
        with self._lock:
            return list(self._metrics.values())

    # -- snapshot / reset / merge -------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dump of every metric and child.

        Shape::

            {"counters":   {'fs_cases{kernel="heat"}': 12.0, ...},
             "gauges":     {...},
             "histograms": {'h{...}': {"count": n, "sum": s, "min": ...,
                                       "max": ..., "mean": ...,
                                       "buckets": {"0.001": 3, ...}}, ...},
             "help":       {"fs_cases": "...", ...}}
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "help": {}}
        for metric in self.metrics():
            if metric.help:
                out["help"][metric.name] = metric.help
            for child in metric.children():
                key = metric.name + format_labels(child.labels)
                if metric.kind == "counter":
                    out["counters"][key] = child.value
                elif metric.kind == "gauge":
                    out["gauges"][key] = child.value
                else:
                    assert isinstance(child, HistogramChild)
                    out["histograms"][key] = {
                        "count": child.count,
                        "sum": child.sum,
                        "min": child.min if child.count else None,
                        "max": child.max if child.count else None,
                        "mean": child.mean,
                        "buckets": {
                            str(b): c
                            for b, c in zip(child.bounds, child.bucket_counts)
                        },
                    }
        return out

    def reset(self) -> None:
        """Drop every metric (names and children)."""
        with self._lock:
            self._metrics.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters and histogram buckets add; gauges take the other
        registry's sample (latest-wins).  Used to combine per-worker
        registries after parallel runs.
        """
        for om in other.metrics():
            mine = self._get(om.name, om.kind, om.help, om.buckets)
            for child in om.children():
                target = mine.labels(**child.labels)
                if om.kind == "counter":
                    target.inc(child.value)
                elif om.kind == "gauge":
                    target.set(child.value)
                else:
                    assert isinstance(child, HistogramChild)
                    assert isinstance(target, HistogramChild)
                    target.count += child.count
                    target.sum += child.sum
                    target.min = min(target.min, child.min)
                    target.max = max(target.max, child.max)
                    for i, c in enumerate(child.bucket_counts):
                        target.bucket_counts[i] += c


# Aliases matching the familiar Prometheus class names; the registry
# hands out `Metric` objects, these exist for isinstance-free reading
# of call sites and the docs.
Counter = Metric
Gauge = Metric
Histogram = Metric


#: The process-wide registry every instrumented module shares.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY


def iter_flat(snapshot: Mapping[str, Any]) -> Iterable[tuple[str, str, float]]:
    """Yield ``(kind, name, value)`` rows from a snapshot (CSV export).

    Histograms flatten to their ``count``/``sum``/``mean`` aggregates.
    """
    for key, value in snapshot.get("counters", {}).items():
        yield ("counter", key, value)
    for key, value in snapshot.get("gauges", {}).items():
        yield ("gauge", key, value)
    for key, h in snapshot.get("histograms", {}).items():
        yield ("histogram", f"{key}:count", float(h["count"]))
        yield ("histogram", f"{key}:sum", float(h["sum"]))
        yield ("histogram", f"{key}:mean", float(h["mean"]))
