"""Exporters: Chrome trace-event JSON and flat metrics dumps.

Two output families:

* :func:`write_chrome_trace` — the tracer's spans as Chrome trace-event
  JSON (the ``{"traceEvents": [...]}`` object form).  Open the file in
  `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing`` to see
  the pipeline flame graph.
* :func:`write_metrics` — a registry snapshot as pretty-printed JSON,
  or as ``kind,name,value`` CSV when the path ends in ``.csv``.

Both are plain-stdlib and loss-free: :func:`load_chrome_trace` and
``json.load`` round-trip them for tests and downstream tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry, get_registry, iter_flat
from repro.obs.tracer import SpanEvent, Tracer, get_tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "write_metrics",
    "metrics_snapshot",
]

#: ``pid`` used for every event — the model is a single process.
_PID = 1


def chrome_trace_events(
    events: Iterable[SpanEvent], process_name: str = "repro-fs"
) -> list[dict[str, Any]]:
    """Convert spans to Chrome trace-event dicts.

    Each span becomes one complete ("X") event; metadata ("M") events
    name the process and the threads so the viewer shows readable
    lanes.
    """
    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    seen_tids: set[int] = set()
    for ev in events:
        if ev.tid not in seen_tids:
            seen_tids.add(ev.tid)
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": ev.tid,
                    "args": {"name": f"thread-{ev.tid}"},
                }
            )
        entry: dict[str, Any] = {
            "name": ev.name,
            "cat": ev.category,
            "ph": "X",
            "ts": round(ev.start_us, 3),
            "dur": round(ev.dur_us, 3),
            "pid": _PID,
            "tid": ev.tid,
        }
        if ev.args:
            entry["args"] = {k: _jsonable(v) for k, v in ev.args.items()}
        out.append(entry)
    return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer | None = None,
    process_name: str = "repro-fs",
) -> int:
    """Write the tracer's spans as Chrome trace JSON; returns span count.

    The output is the object form ``{"traceEvents": [...],
    "displayTimeUnit": "ms"}`` which both Perfetto and chrome://tracing
    accept.
    """
    tracer = tracer or get_tracer()
    events = tracer.events()
    doc = {
        "traceEvents": chrome_trace_events(events, process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(events),
            "dropped": tracer.dropped,
        },
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return len(events)


def load_chrome_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a Chrome trace file; returns the non-metadata ("X") events.

    Accepts both the object form written by :func:`write_chrome_trace`
    and the bare-array form some tools emit.
    """
    with Path(path).open(encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    return [e for e in events if e.get("ph") == "X"]


def metrics_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """Snapshot of the (default) registry — convenience re-export."""
    return (registry or get_registry()).snapshot()


def write_metrics(
    path: str | Path, registry: MetricsRegistry | None = None
) -> dict:
    """Dump a registry snapshot to ``path``; returns the snapshot.

    ``*.csv`` paths get ``kind,name,value`` rows (histograms flattened
    to count/sum/mean); ``*.prom`` paths get Prometheus text exposition
    format (:func:`repro.obs.prometheus.to_prometheus`); anything else
    gets pretty-printed JSON.
    """
    from repro.obs.prometheus import to_prometheus

    snap = metrics_snapshot(registry)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    if p.suffix.lower() == ".prom":
        p.write_text(to_prometheus(registry or get_registry()),
                     encoding="utf-8")
    elif p.suffix.lower() == ".csv":
        with p.open("w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["kind", "name", "value"])
            for row in iter_flat(snap):
                writer.writerow(row)
    else:
        with p.open("w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=1, sort_keys=True)
    return snap
