"""Observability configuration: env vars, CLI flags, session scoping.

:class:`ObsConfig` is the single switchboard for the obs layer.  It can
be built three ways:

* **environment** — ``REPRO_TRACE=trace.json`` and/or
  ``REPRO_METRICS=metrics.json`` (set either to ``1``/``on`` to enable
  collection without writing a file);
* **CLI flags** — ``--profile TRACE.json`` / ``--metrics-out M.json``
  on the ``repro-fs`` subcommands (they override the environment);
* **programmatic** — ``ObsConfig(trace_path="t.json")`` plus
  :func:`session`.

:func:`session` is the lifecycle: it enables the tracer, runs the
body, then writes the configured outputs and restores the previous
state — exception-safe, so a crashed run still flushes its trace.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.obs.export import write_chrome_trace, write_metrics
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.util import get_logger

logger = get_logger(__name__)

__all__ = ["ObsConfig", "session"]

#: Env values meaning "collect but do not write a file".
_TRUTHY = {"1", "true", "on", "yes"}
_FALSY = {"", "0", "false", "off", "no"}


def _parse_env(value: str | None) -> tuple[bool, str | None]:
    """``(enabled, path)`` from one env var's raw value."""
    if value is None:
        return False, None
    v = value.strip()
    if v.lower() in _FALSY:
        return False, None
    if v.lower() in _TRUTHY:
        return True, None
    return True, v


@dataclass(frozen=True)
class ObsConfig:
    """What to collect and where to write it.

    Attributes
    ----------
    trace_enabled / trace_path:
        Record spans; write Chrome trace JSON to ``trace_path`` at
        session end when a path is set.
    metrics_enabled / metrics_path:
        Metrics are always *collected* (the registry is cheap and
        publication happens at stage boundaries); ``metrics_path``
        requests a JSON/CSV dump at session end.
    """

    trace_enabled: bool = False
    trace_path: str | None = None
    metrics_enabled: bool = False
    metrics_path: str | None = None

    @classmethod
    def from_env(cls, environ=None) -> "ObsConfig":
        """Build from ``REPRO_TRACE`` / ``REPRO_METRICS``."""
        env = os.environ if environ is None else environ
        t_on, t_path = _parse_env(env.get("REPRO_TRACE"))
        m_on, m_path = _parse_env(env.get("REPRO_METRICS"))
        return cls(
            trace_enabled=t_on,
            trace_path=t_path,
            metrics_enabled=m_on,
            metrics_path=m_path,
        )

    def with_cli(
        self, trace_path: str | None = None, metrics_path: str | None = None
    ) -> "ObsConfig":
        """Overlay CLI flag values (``None`` keeps the env settings)."""
        cfg = self
        if trace_path:
            cfg = replace(cfg, trace_enabled=True, trace_path=trace_path)
        if metrics_path:
            cfg = replace(cfg, metrics_enabled=True, metrics_path=metrics_path)
        return cfg

    @property
    def any_enabled(self) -> bool:
        """True when the session will collect or write anything."""
        return self.trace_enabled or self.metrics_enabled


@contextmanager
def session(config: ObsConfig | None = None, reset_metrics: bool = False):
    """Scope one observed run: enable, run, flush, restore.

    Parameters
    ----------
    config:
        ``None`` reads the environment (:meth:`ObsConfig.from_env`).
    reset_metrics:
        Clear the metrics registry on entry so the dump reflects only
        this session (the CLI does this; library callers usually keep
        accumulating).

    Yields the active :class:`ObsConfig`.  On exit the configured
    outputs are written even when the body raised.
    """
    cfg = config if config is not None else ObsConfig.from_env()
    tracer = get_tracer()
    was_enabled = tracer.enabled
    if cfg.trace_enabled:
        tracer.reset()
        tracer.enable()
    if reset_metrics:
        get_registry().reset()
    try:
        yield cfg
    finally:
        if cfg.trace_enabled:
            tracer.enabled = was_enabled
            if cfg.trace_path:
                n = write_chrome_trace(cfg.trace_path)
                logger.info("wrote %d spans to %s", n, cfg.trace_path)
        if cfg.metrics_path:
            write_metrics(cfg.metrics_path)
            logger.info("wrote metrics to %s", cfg.metrics_path)
