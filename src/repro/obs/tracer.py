"""Zero-dependency span tracing for the FS-model pipeline.

The tracer records *spans* — named, timed intervals with optional
key/value attributes — into an in-process buffer that
:mod:`repro.obs.export` turns into Chrome trace-event JSON (loadable in
Perfetto or ``chrome://tracing``).

Design goals (see docs/OBSERVABILITY.md):

* **near-zero overhead when disabled** — :func:`span` performs one
  attribute read and returns a shared no-op context manager; the hot
  loops of the model never pay for instrumentation they do not use;
* **thread-safe accumulation** — spans may be recorded from any thread;
  the buffer append happens under a lock and each span carries the
  recording thread's id;
* **zero dependencies** — only the standard library, so the obs layer
  can be imported from every other package without cycles.

Usage::

    from repro.obs import span, traced

    with span("detector.process_block", step=i):
        ...work...

    @traced
    def histogram(self, trace):
        ...

Spans nest naturally: Chrome's trace viewer reconstructs the flame
graph from the (start, duration, thread) triples.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "SpanEvent",
    "Tracer",
    "get_tracer",
    "span",
    "traced",
    "span_summary",
]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span: a named interval on one thread.

    ``start_us``/``dur_us`` are microseconds relative to the tracer's
    epoch (its creation or last :meth:`Tracer.reset`), matching the
    Chrome trace-event ``ts``/``dur`` convention.
    """

    name: str
    start_us: float
    dur_us: float
    tid: int
    args: dict[str, Any] = field(default_factory=dict)
    category: str = "model"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (disabled-path no-op)."""
        return self


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An active span; records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "category", "args", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, category: str, args: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._record(
            self.name, self.category, self._start, time.perf_counter(), self.args
        )
        return False

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.args.update(attrs)
        return self


class Tracer:
    """Thread-safe span collector.

    A process normally uses the module-level singleton via
    :func:`get_tracer`; independent instances exist for tests.  All
    public methods are safe to call from any thread.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._events: list[SpanEvent] = []
        self._epoch = time.perf_counter()
        #: os thread ident -> small stable display id (0, 1, 2, ...)
        self._tids: dict[int, int] = {}
        self._dropped = 0
        self.max_events = 1_000_000

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        """Start recording spans (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording spans; buffered events are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all buffered events and restart the time epoch."""
        with self._lock:
            self._events.clear()
            self._tids.clear()
            self._dropped = 0
            self._epoch = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "model", **attrs: Any):
        """A context manager timing the ``with`` body as span ``name``.

        When the tracer is disabled this returns a shared no-op object,
        so the call costs one attribute check on the hot path.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, category, attrs)

    def _record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        args: dict[str, Any],
    ) -> None:
        ident = threading.get_ident()
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped += 1
                return
            tid = self._tids.setdefault(ident, len(self._tids))
            self._events.append(
                SpanEvent(
                    name=name,
                    start_us=(start - self._epoch) * 1e6,
                    dur_us=(end - start) * 1e6,
                    tid=tid,
                    args=args,
                    category=category,
                )
            )

    # -- inspection ----------------------------------------------------------

    def events(self) -> list[SpanEvent]:
        """A snapshot copy of the recorded spans (chronological)."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Spans dropped after the buffer hit ``max_events``."""
        return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-wide tracer every instrumented module shares.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer` singleton."""
    return _TRACER


def span(name: str, category: str = "model", **attrs: Any):
    """Module-level shortcut for ``get_tracer().span(...)``.

    >>> with span("doctest.noop"):
    ...     pass
    """
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _LiveSpan(_TRACER, name, category, attrs)


def traced(func: Callable | None = None, *, name: str | None = None,
           category: str = "model"):
    """Decorator tracing every call of ``func`` as one span.

    Usable bare (``@traced``) or with arguments
    (``@traced(name="stackdist.histogram")``).  The default span name is
    ``module.qualname`` with the ``repro.`` prefix stripped.  When the
    tracer is disabled the wrapper adds a single boolean check per call.
    """

    def decorate(fn: Callable) -> Callable:
        mod = fn.__module__ or ""
        if mod.startswith("repro."):
            mod = mod[len("repro."):]
        label = name or f"{mod}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with _LiveSpan(_TRACER, label, category, {}):
                return fn(*args, **kwargs)

        wrapper.__traced_name__ = label  # type: ignore[attr-defined]
        return wrapper

    if func is not None:
        return decorate(func)
    return decorate


@dataclass(frozen=True)
class SpanSummaryRow:
    """Aggregated statistics for one span name."""

    name: str
    count: int
    total_us: float
    mean_us: float
    max_us: float


def span_summary(events: Iterable[SpanEvent]) -> list[SpanSummaryRow]:
    """Aggregate events by span name, sorted by total time descending."""
    totals: dict[str, list[float]] = {}
    for ev in events:
        totals.setdefault(ev.name, []).append(ev.dur_us)
    rows = [
        SpanSummaryRow(
            name=name,
            count=len(durs),
            total_us=sum(durs),
            mean_us=sum(durs) / len(durs),
            max_us=max(durs),
        )
        for name, durs in totals.items()
    ]
    rows.sort(key=lambda r: r.total_us, reverse=True)
    return rows
