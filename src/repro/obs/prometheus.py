"""Prometheus text-exposition export for the metrics registry.

:func:`to_prometheus` renders every metric of a
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4) — the format a ``GET /metrics``
scrape endpoint serves and ``promtool check metrics`` accepts::

    # HELP engine_cache_hits_total engine jobs served from the result store
    # TYPE engine_cache_hits_total counter
    engine_cache_hits_total 12

Histograms expand to the conventional ``_bucket{le="..."}`` cumulative
series plus ``_sum`` and ``_count``; the registry's per-bucket counts
are cumulated here so the stored representation stays additive under
:meth:`~repro.obs.metrics.MetricsRegistry.merge`.

Everything is stdlib-only; the service's ``/metrics`` endpoint and the
``--metrics-out x.prom`` CLI flag both call :func:`to_prometheus`.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import HistogramChild, MetricsRegistry, get_registry

__all__ = ["CONTENT_TYPE", "to_prometheus"]

#: The scrape response Content-Type for this exposition version.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _sanitize(name: str, pattern: re.Pattern) -> str:
    """Coerce a name into the Prometheus charset (invalid chars -> _)."""
    if pattern.fullmatch(name):
        return name
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Render a sample value: integers stay integral, specials spelled
    the Prometheus way (``+Inf`` / ``-Inf`` / ``NaN``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        (_sanitize(str(k), _LABEL_RE), _escape_label(str(v)))
        for k, v in sorted(labels.items())
    ]
    pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render ``registry`` (default: the process registry) as Prometheus
    text exposition format.

    Counters and gauges emit one sample per labeled child; histograms
    emit cumulative ``_bucket`` series (ending in ``le="+Inf"``) plus
    ``_sum`` and ``_count``.  Families with no children yet are skipped
    — Prometheus has no notion of a declared-but-never-sampled series.
    """
    registry = registry or get_registry()
    lines: list[str] = []
    for metric in registry.metrics():
        children = metric.children()
        if not children:
            continue
        name = _sanitize(metric.name, _NAME_RE)
        if metric.help:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        for child in children:
            if metric.kind == "histogram":
                assert isinstance(child, HistogramChild)
                cumulative = 0
                for bound, count in zip(child.bounds, child.bucket_counts):
                    cumulative += count
                    le = "+Inf" if math.isinf(bound) else _fmt(bound)
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(child.labels, (('le', le),))}"
                        f" {_fmt(cumulative)}"
                    )
                if not math.isinf(child.bounds[-1]):
                    # Defensive: custom bucket tuples without an +Inf
                    # bound still need the mandatory terminal bucket.
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(child.labels, (('le', '+Inf'),))}"
                        f" {_fmt(child.count)}"
                    )
                labels = _labels_text(child.labels)
                lines.append(f"{name}_sum{labels} {_fmt(child.sum)}")
                lines.append(f"{name}_count{labels} {_fmt(child.count)}")
            else:
                lines.append(
                    f"{name}{_labels_text(child.labels)} {_fmt(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
