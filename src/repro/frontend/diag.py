"""Frontend diagnostics: the structured :class:`FrontendError`.

Lives in its own module (rather than :mod:`repro.frontend.lower`) so
that :mod:`~repro.frontend.preprocess` and
:mod:`~repro.frontend.pragmas` can subclass it without importing the
lowering pass — :class:`PreprocessError` and :class:`PragmaError` are
both frontend errors, and all three map onto CLI exit code 3.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.errors import ReproError, SourceSpan

__all__ = ["FrontendError"]


class FrontendError(ReproError, ValueError):
    """The source uses constructs outside the supported dialect.

    Accepts either a pycparser AST ``node`` (its coordinate becomes the
    error's :class:`~repro.resilience.errors.SourceSpan`) or an explicit
    ``span``.  Inherits :class:`ValueError` so pre-taxonomy call sites
    (``except ValueError``) keep working.
    """

    code = "REPRO-F100"  # registered in repro.resilience.errors
    category = "frontend"

    def __init__(
        self,
        message: str,
        node: Any | None = None,
        *,
        code: str | None = None,
        span: SourceSpan | None = None,
        hint: str | None = None,
        context: dict | None = None,
    ) -> None:
        if span is None and node is not None:
            span = SourceSpan.from_coord(getattr(node, "coord", None))
        super().__init__(
            message, code=code, span=span, hint=hint, context=context
        )
