"""C/OpenMP frontend: mini preprocessor, pragma parser and AST lowering.

The public entry point is :func:`parse_c_source`, which takes raw kernel
source (with ``#define`` constants and ``#pragma omp parallel for``
directives) and returns the lowered :class:`~repro.frontend.lower.LoweredKernel`
objects ready for the false-sharing model.
"""

from repro.frontend.lower import FrontendError, LoweredKernel, parse_c_source
from repro.frontend.pragmas import OmpPragma, PragmaError, parse_omp_pragma
from repro.frontend.preprocess import (
    PRAGMA_MARKER,
    PreprocessError,
    PreprocessResult,
    preprocess,
)

__all__ = [
    "FrontendError",
    "LoweredKernel",
    "parse_c_source",
    "OmpPragma",
    "PragmaError",
    "parse_omp_pragma",
    "PRAGMA_MARKER",
    "PreprocessError",
    "PreprocessResult",
    "preprocess",
]
