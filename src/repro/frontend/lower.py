"""Lowering of pycparser ASTs to the loop IR.

This is the reproduction's stand-in for the Open64 pass the paper
implements: it walks the (preprocessed) C AST, finds OpenMP
``parallel for`` loop nests via the pragma markers planted by
:mod:`repro.frontend.preprocess`, and lowers each into a
:class:`repro.ir.ParallelLoopNest` carrying everything the model needs —
loop bounds, steps, index variables, the schedule chunk, and byte-exact
array reference descriptions.

Supported dialect (sufficient for the paper's kernels and typical
OpenMP loop kernels):

* global/local declarations of scalars, multi-dimensional arrays,
  structs (tagged or typedef'd), arrays of structs, struct members that
  are scalars, fixed arrays or pointers;
* counted ``for`` loops with affine bounds and positive constant steps;
* assignments and compound assignments whose left side is an lvalue
  path mixing subscripts and member accesses (``a[i]``, ``s[i].f``,
  ``s[i].p[k].x``, ``s[i].arr[k]``);
* arithmetic right-hand sides with calls to math intrinsics.

Pointer members indexed like arrays (``tid_args[j].points[i]``) become
*synthetic* rectangular arrays (named ``tid_args.points``) whose inner
extent is taken from the enclosing loop bound — each outer element gets
its own contiguous region, which reproduces the disjoint per-thread
buffers of the Phoenix kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pycparser import c_ast, c_parser

try:  # pycparser >= 2.x keeps ParseError in plyparser; newer releases
    # re-home it next to the parser.  Fall back gracefully either way.
    from pycparser.plyparser import ParseError as CParseError
except ImportError:  # pragma: no cover - depends on pycparser version
    from pycparser.c_parser import ParseError as CParseError

from repro.frontend.diag import FrontendError
from repro.frontend.pragmas import OmpPragma, parse_omp_pragma
from repro.frontend.preprocess import PRAGMA_MARKER, PreprocessResult, preprocess
from repro.ir.affine import AffineExpr
from repro.ir.exprtree import (
    BinOp,
    CallExpr,
    CastExpr,
    Const,
    Expr,
    LoadExpr,
    UnOp,
    VarRef,
)
from repro.ir.layout import (
    ArrayType,
    CType,
    DOUBLE,
    INT,
    PRIMITIVES_BY_NAME,
    PointerType,
    StructType,
)
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.obs import get_registry, span
from repro.resilience.errors import SourceSpan
from repro.resilience.faults import fault_point
from repro.util import get_logger

logger = get_logger(__name__)

__all__ = ["FrontendError", "LoweredKernel", "parse_c_source"]


@dataclass(frozen=True)
class LoweredKernel:
    """One OpenMP parallel loop nest extracted from a translation unit."""

    name: str
    function: str
    nest: ParallelLoopNest
    pragma: OmpPragma


@dataclass
class _Scope:
    """Declaration environment during lowering."""

    structs: dict[str, StructType] = field(default_factory=dict)
    typedefs: dict[str, CType] = field(default_factory=dict)
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    scalars: dict[str, CType] = field(default_factory=dict)
    synthetic: dict[str, ArrayDecl] = field(default_factory=dict)


def parse_c_source(
    source: str,
    extra_macros: dict[str, int] | None = None,
    filename: str = "<kernel>",
) -> list[LoweredKernel]:
    """Parse C/OpenMP source and lower every ``parallel for`` nest.

    Parameters
    ----------
    source:
        Raw kernel source; ``#define`` constants and ``#pragma omp`` are
        handled by the built-in mini preprocessor.
    extra_macros:
        Integer macros injected before preprocessing (problem sizes).
    filename:
        Display name used in diagnostics and source spans.

    Returns
    -------
    list of :class:`LoweredKernel`, in source order.
    """
    fault_point("frontend.parse", label=filename)
    with span("frontend.preprocess", bytes=len(source)):
        pp = preprocess(source, extra_macros, filename=filename)
    parser = c_parser.CParser()
    with span("frontend.parse"):
        try:
            ast = parser.parse(pp.source, filename=filename)
        except CParseError as exc:
            # pycparser renders location as a "file:line:col:" message
            # prefix; lift it into a structured SourceSpan instead of
            # flattening everything into one string.
            loc, bare = SourceSpan.from_parse_message(str(exc))
            raise FrontendError(
                f"C parse error: {bare}".rstrip(),
                code="REPRO-F001",
                span=loc,
                hint="the kernel dialect accepts preprocessed C99 "
                     "with OpenMP parallel-for pragmas",
            ) from exc
        except (AssertionError, IndexError, AttributeError,
                RecursionError) as exc:
            # pycparser trips internal assertions on some malformed
            # inputs (e.g. an unmatched "}" pops its scope stack) rather
            # than raising ParseError; those must surface as structured
            # diagnostics too, never as raw internal errors.
            raise FrontendError(
                f"C parse error: parser rejected the input "
                f"({type(exc).__name__})",
                code="REPRO-F001",
                span=SourceSpan(file=filename),
                hint="the kernel dialect accepts preprocessed C99 "
                     "with OpenMP parallel-for pragmas",
            ) from exc
    with span("frontend.lower") as sp:
        try:
            kernels = _Lowerer(pp).lower_file(ast)
        except FrontendError:
            raise
        except (
            ValueError, TypeError, KeyError, IndexError, AttributeError,
            AssertionError, OverflowError, RecursionError,
        ) as exc:
            # The lowering pass walks attacker-shaped ASTs; any internal
            # slip must still surface as a frontend diagnostic, never a
            # raw traceback out of a compiler pass.
            raise FrontendError(
                f"cannot lower translation unit: "
                f"{type(exc).__name__}: {exc}",
                code="REPRO-F100",
                span=SourceSpan(file=filename),
            ) from exc
        sp.set(kernels=len(kernels))
    get_registry().counter(
        "frontend_kernels_lowered",
        "OpenMP parallel-for nests lowered to the loop IR",
    ).inc(len(kernels))
    return kernels


class _Lowerer:
    def __init__(self, pp: PreprocessResult) -> None:
        self.pp = pp
        self.scope = _Scope()
        self.kernels: list[LoweredKernel] = []
        self._current_function = "<file>"
        self._loop_stack: list[str] = []  # enclosing loop vars, outer first
        self._loop_bounds: dict[str, tuple[AffineExpr, AffineExpr]] = {}
        self._pragma_attach: dict[str, OmpPragma] = {}

    # -- file / declarations -------------------------------------------------

    def lower_file(self, ast: c_ast.FileAST) -> list[LoweredKernel]:
        for ext in ast.ext:
            if isinstance(ext, c_ast.Typedef):
                self._register_typedef(ext)
            elif isinstance(ext, c_ast.Decl):
                self._register_decl(ext)
            elif isinstance(ext, c_ast.FuncDef):
                self._lower_function(ext)
        return self.kernels

    def _register_typedef(self, node: c_ast.Typedef) -> None:
        ctype = self._resolve_type(node.type)
        if isinstance(ctype, StructType) and ctype.name == "<anon>":
            # Anonymous struct behind a typedef: adopt the typedef name so
            # diagnostics and C re-emission stay readable.
            ctype = StructType(node.name, ctype.fields, ctype.size, ctype.alignment)
        self.scope.typedefs[node.name] = ctype

    def _register_decl(self, node: c_ast.Decl) -> None:
        """Register a (global or local) variable declaration."""
        if node.name is None:
            # A bare struct definition: `struct point { ... };`
            if isinstance(node.type, c_ast.Struct) and node.type.decls:
                self._resolve_type(node.type)
            return
        dims: list[int] = []
        t = node.type
        while isinstance(t, c_ast.ArrayDecl):
            dims.append(self._const_int(t.dim, node))
            t = t.type
        ctype = self._resolve_type(t)
        if dims:
            self.scope.arrays[node.name] = ArrayDecl.create(node.name, ctype, dims)
        else:
            self.scope.scalars[node.name] = ctype

    def _resolve_type(self, node: c_ast.Node) -> CType:
        if isinstance(node, c_ast.TypeDecl):
            return self._resolve_type(node.type)
        if isinstance(node, c_ast.IdentifierType):
            name = " ".join(node.names)
            if name in PRIMITIVES_BY_NAME:
                return PRIMITIVES_BY_NAME[name]
            if name in self.scope.typedefs:
                return self.scope.typedefs[name]
            raise FrontendError(f"unknown type name {name!r}", node)
        if isinstance(node, c_ast.Struct):
            if node.decls is None:
                # Reference to a previously defined tagged struct.
                if node.name and node.name in self.scope.structs:
                    return self.scope.structs[node.name]
                raise FrontendError(
                    f"use of undefined struct {node.name!r}", node
                )
            members = []
            for decl in node.decls:
                members.append((decl.name, self._resolve_member_type(decl.type)))
            st = StructType.create(node.name or "<anon>", members)
            if node.name:
                self.scope.structs[node.name] = st
            return st
        if isinstance(node, c_ast.PtrDecl):
            return PointerType(self._resolve_type(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            return ArrayType(
                self._resolve_type(node.type), self._const_int(node.dim, node)
            )
        raise FrontendError(f"unsupported type construct {type(node).__name__}", node)

    def _resolve_member_type(self, node: c_ast.Node) -> CType:
        return self._resolve_type(node)

    def _const_int(self, node: c_ast.Node | None, ctx: c_ast.Node) -> int:
        if node is None:
            raise FrontendError("array extent must be a constant", ctx)
        expr = self._lower_affine(node)
        if not expr.is_constant:
            raise FrontendError(
                f"array extent must be constant after macro expansion, got {expr}",
                ctx,
            )
        return expr.as_int()

    # -- functions -----------------------------------------------------------

    def _lower_function(self, node: c_ast.FuncDef) -> None:
        self._current_function = node.decl.name
        # Locals shadow globals for the duration of the function; keep it
        # simple by registering them into the same scope (kernel files do
        # not reuse names across scopes).
        self._lower_compound(node.body, top_level=True)

    def _lower_compound(
        self, node: c_ast.Compound, top_level: bool = False
    ) -> list[Loop | Assign]:
        items: list[Loop | Assign] = []
        pending_pragma: OmpPragma | None = None
        for stmt in node.block_items or []:
            marker = self._match_marker(stmt)
            if marker is not None:
                pragma = parse_omp_pragma(self.pp.pragmas[marker])
                if pragma is not None and (pragma.is_for or pragma.is_parallel):
                    if pending_pragma is not None:
                        logger.warning("dropping unattached pragma %s", pending_pragma.raw)
                    pending_pragma = pragma
                continue
            if pending_pragma is not None and not isinstance(stmt, c_ast.For):
                if (
                    pending_pragma.is_parallel
                    and not pending_pragma.is_for
                    and isinstance(stmt, c_ast.Compound)
                ):
                    # Split directives: `#pragma omp parallel { ... #pragma
                    # omp for ... }`.  The region body is lowered normally;
                    # the inner `omp for` marker does the worksharing
                    # attachment.  Region-level clauses (private) merge into
                    # pragmas attached within the region.
                    region = pending_pragma
                    pending_pragma = None
                    before = len(self.kernels)
                    items.extend(self._lower_compound(stmt))
                    for idx in range(before, len(self.kernels)):
                        self._merge_region_clauses(idx, region)
                    continue
                raise FrontendError(
                    f"pragma {pending_pragma.raw!r} must be followed by a for loop",
                    stmt,
                )
            if isinstance(stmt, c_ast.Decl):
                self._register_decl(stmt)
                if stmt.init is not None and stmt.name is not None:
                    items.append(Assign(stmt.name, self._lower_expr(stmt.init)))
                continue
            if isinstance(stmt, c_ast.For):
                loop = self._lower_for(stmt, pending_pragma)
                pending_pragma = None
                items.append(loop)
                continue
            if isinstance(stmt, (c_ast.Assignment, c_ast.UnaryOp)):
                lowered = self._lower_stmt(stmt)
                if lowered is not None:
                    items.append(lowered)
                continue
            if isinstance(stmt, c_ast.Compound):
                items.extend(self._lower_compound(stmt))
                continue
            if isinstance(stmt, (c_ast.Return, c_ast.EmptyStatement)):
                continue
            if isinstance(stmt, c_ast.FuncCall):
                # Calls with no lvalue (printf etc.) carry no modeled accesses.
                logger.debug("ignoring call statement at %s", stmt.coord)
                continue
            raise FrontendError(
                f"unsupported statement {type(stmt).__name__}", stmt
            )
        if pending_pragma is not None:
            raise FrontendError(
                f"pragma {pending_pragma.raw!r} not followed by a for loop"
            )
        return items

    def _merge_region_clauses(self, kernel_index: int, region: OmpPragma) -> None:
        """Fold an enclosing ``omp parallel`` region's clauses into a
        worksharing kernel discovered inside it."""
        import dataclasses

        k = self.kernels[kernel_index]
        merged_private = tuple(dict.fromkeys((*region.private, *k.nest.private)))
        nest = dataclasses.replace(k.nest, private=merged_private)
        self.kernels[kernel_index] = LoweredKernel(k.name, k.function, nest, k.pragma)

    def _match_marker(self, stmt: c_ast.Node) -> int | None:
        if (
            isinstance(stmt, c_ast.FuncCall)
            and isinstance(stmt.name, c_ast.ID)
            and stmt.name.name == PRAGMA_MARKER
        ):
            arg = stmt.args.exprs[0]
            return int(arg.value)
        return None

    # -- loops ---------------------------------------------------------------

    def _lower_for(self, node: c_ast.For, pragma: OmpPragma | None) -> Loop:
        var, lower = self._lower_for_init(node.init)
        upper = self._lower_for_cond(node.cond, var)
        step = self._lower_for_next(node.next, var)

        self._loop_stack.append(var)
        self._loop_bounds[var] = (lower, upper)
        try:
            if not isinstance(node.stmt, c_ast.Compound):
                body = self._lower_compound(
                    c_ast.Compound(block_items=[node.stmt])
                )
            else:
                body = self._lower_compound(node.stmt)
        finally:
            self._loop_stack.pop()

        loop = Loop(var, lower, upper, tuple(body), step)
        if pragma is not None and pragma.is_for:
            # Record the attachment; the nest is materialized once the
            # outermost enclosing loop has been fully lowered (sequential
            # enclosing loops belong to the nest the model analyzes).
            self._pragma_attach[var] = pragma
        if not self._loop_stack:
            self._finalize_nest(loop)
        return loop

    def _finalize_nest(self, root: Loop) -> None:
        attached = [
            (var, prag)
            for var, prag in self._pragma_attach.items()
            if var in {lp.var for lp in root.walk()}
        ]
        for var, prag in attached:
            del self._pragma_attach[var]
            schedule = prag.schedule or Schedule("static", None)
            name = f"{self._current_function}.{var}"
            nest = ParallelLoopNest(
                name=name,
                root=root,
                parallel_var=var,
                schedule=schedule,
                private=prag.private,
            )
            self.kernels.append(
                LoweredKernel(name, self._current_function, nest, prag)
            )

    def _lower_for_init(self, init: c_ast.Node) -> tuple[str, AffineExpr]:
        if isinstance(init, c_ast.DeclList):
            decl = init.decls[0]
            self.scope.scalars[decl.name] = self._resolve_type(decl.type)
            return decl.name, self._lower_affine(decl.init)
        if isinstance(init, c_ast.Assignment) and init.op == "=":
            if not isinstance(init.lvalue, c_ast.ID):
                raise FrontendError("loop variable must be a plain identifier", init)
            return init.lvalue.name, self._lower_affine(init.rvalue)
        raise FrontendError("unsupported for-loop initialization", init)

    def _lower_for_cond(self, cond: c_ast.Node, var: str) -> AffineExpr:
        if not isinstance(cond, c_ast.BinaryOp):
            raise FrontendError("for-loop condition must be a comparison", cond)
        if not (isinstance(cond.left, c_ast.ID) and cond.left.name == var):
            raise FrontendError(
                f"for-loop condition must test the induction variable {var!r}",
                cond,
            )
        bound = self._lower_affine(cond.right)
        if cond.op == "<":
            return bound
        if cond.op == "<=":
            return bound + 1
        raise FrontendError(
            f"unsupported loop condition operator {cond.op!r} (use < or <=)", cond
        )

    def _lower_for_next(self, nxt: c_ast.Node, var: str) -> int:
        if isinstance(nxt, c_ast.UnaryOp) and nxt.op in ("p++", "++"):
            return 1
        if isinstance(nxt, c_ast.Assignment):
            if nxt.op == "+=":
                step = self._lower_affine(nxt.rvalue)
                if step.is_constant and step.as_int() > 0:
                    return step.as_int()
            if nxt.op == "=" and isinstance(nxt.rvalue, c_ast.BinaryOp):
                b = nxt.rvalue
                if (
                    b.op == "+"
                    and isinstance(b.left, c_ast.ID)
                    and b.left.name == var
                ):
                    step = self._lower_affine(b.right)
                    if step.is_constant and step.as_int() > 0:
                        return step.as_int()
        raise FrontendError(
            f"unsupported loop increment for {var!r} (need var++ or var += C)",
            nxt,
        )

    # -- statements ----------------------------------------------------------

    def _lower_stmt(self, stmt: c_ast.Node) -> Assign | None:
        if isinstance(stmt, c_ast.Assignment):
            target = self._lower_lvalue(stmt.lvalue, is_write=True)
            rhs = self._lower_expr(stmt.rvalue)
            if stmt.op == "=":
                return Assign(target, rhs)
            if stmt.op in ("+=", "-=", "*=", "/="):
                return Assign(target, rhs, augmented=stmt.op[0])
            raise FrontendError(f"unsupported assignment operator {stmt.op!r}", stmt)
        if isinstance(stmt, c_ast.UnaryOp) and stmt.op in ("p++", "++", "p--", "--"):
            target = self._lower_lvalue(stmt.expr, is_write=True)
            return Assign(target, Const(1.0, INT), augmented="+")
        raise FrontendError(f"unsupported statement {type(stmt).__name__}", stmt)

    # -- lvalues and access paths ---------------------------------------------

    def _lower_lvalue(
        self, node: c_ast.Node, is_write: bool
    ) -> ArrayRef | str:
        """Lower an lvalue access path to an ArrayRef or a scalar name."""
        if isinstance(node, c_ast.ID):
            if node.name in self.scope.arrays:
                raise FrontendError(
                    f"whole-array reference {node.name!r} is not an lvalue in "
                    "the supported dialect",
                    node,
                )
            return node.name
        path = self._flatten_path(node)
        return self._interpret_path(path, is_write, node)

    def _flatten_path(self, node: c_ast.Node) -> list:
        """Flatten nested ArrayRef/StructRef into [base, step, step, ...]."""
        steps: list = []
        while True:
            if isinstance(node, c_ast.ArrayRef):
                steps.append(("index", node.subscript))
                node = node.name
            elif isinstance(node, c_ast.StructRef):
                steps.append(("field", node.field.name))
                node = node.name
            elif isinstance(node, c_ast.ID):
                steps.append(("base", node.name))
                break
            else:
                raise FrontendError(
                    f"unsupported access path component {type(node).__name__}",
                    node,
                )
        steps.reverse()
        return steps

    def _interpret_path(
        self, steps: list, is_write: bool, node: c_ast.Node
    ) -> ArrayRef | str:
        kind, base = steps[0]
        assert kind == "base"
        rest = steps[1:]
        if base in self.scope.scalars and not rest:
            return base

        if base not in self.scope.arrays:
            if base in self.scope.scalars and rest:
                raise FrontendError(
                    f"member/subscript access into scalar {base!r}", node
                )
            raise FrontendError(f"undeclared identifier {base!r}", node)

        array = self.scope.arrays[base]
        indices: list[AffineExpr] = []
        # Consume leading subscripts against the declared dimensions.
        i = 0
        while i < len(rest) and rest[i][0] == "index" and len(indices) < array.ndim:
            indices.append(self._lower_affine(rest[i][1]))
            i += 1
        if len(indices) != array.ndim:
            raise FrontendError(
                f"reference to {base!r} provides {len(indices)} of "
                f"{array.ndim} subscripts",
                node,
            )

        # Walk member accesses; a pointer member followed by a subscript
        # re-roots the access into a synthetic array.
        ctype = array.element
        field_path: list[str] = []
        extra = AffineExpr.const_expr(0)
        array_name = base
        while i < len(rest):
            kind, payload = rest[i]
            if kind == "field":
                if not isinstance(ctype, StructType):
                    raise FrontendError(
                        f"member access .{payload} into non-struct", node
                    )
                member = ctype.field(payload)
                if isinstance(member.ctype, PointerType) and (
                    i + 1 < len(rest) and rest[i + 1][0] == "index"
                ):
                    sub = self._lower_affine(rest[i + 1][1])
                    array, indices = self._synthetic_array(
                        array_name, field_path + [payload], member.ctype.pointee,
                        indices, sub, node,
                    )
                    array_name = array.name
                    ctype = member.ctype.pointee
                    field_path = []
                    extra = AffineExpr.const_expr(0)
                    i += 2
                    continue
                if isinstance(member.ctype, ArrayType) and (
                    i + 1 < len(rest) and rest[i + 1][0] == "index"
                ):
                    sub = self._lower_affine(rest[i + 1][1])
                    field_path.append(payload)
                    extra = extra + sub * member.ctype.element.size
                    ctype = member.ctype.element
                    i += 2
                    # Further nesting below fixed member arrays would need
                    # the field machinery to model offsets past ``extra``;
                    # keep consuming fields against the element type.
                    continue
                field_path.append(payload)
                ctype = member.ctype
                i += 1
                continue
            raise FrontendError(
                f"unexpected extra subscript on {array_name!r}", node
            )

        # ``extra``-based member-array refs carry their element offset in
        # ``extra`` but ``field_path`` names an aggregate member; ArrayRef
        # resolves field offsets itself, so pass the path only when it
        # resolves to the accessed member cleanly.
        return ArrayRef(
            array,
            tuple(indices),
            tuple(field_path),
            is_write,
            extra,
        )

    def _synthetic_array(
        self,
        base_name: str,
        member_path: list[str],
        element: CType,
        outer_indices: list[AffineExpr],
        sub: AffineExpr,
        node: c_ast.Node,
    ) -> tuple[ArrayDecl, list[AffineExpr]]:
        """Create/fetch the synthetic array for a subscripted pointer member.

        ``tid_args[j].points[i]`` becomes array ``tid_args.points`` with
        subscripts ``(j, i)``.  The inner extent comes from the loop bound
        of the subscript's variables (rounded up to the line size so each
        outer element starts on its own cache line, matching separately
        allocated buffers).
        """
        name = ".".join([base_name, *member_path])
        if name in self.scope.synthetic:
            arr = self.scope.synthetic[name]
            return arr, [*outer_indices, sub]
        extent = self._extent_for_subscript(sub, node)
        outer_dims = list(self.scope.arrays[base_name].dims)
        arr = ArrayDecl(name, element, tuple([*outer_dims, AffineExpr.const_expr(extent)]))
        self.scope.synthetic[name] = arr
        self.scope.arrays[name] = arr
        return arr, [*outer_indices, sub]

    def _extent_for_subscript(self, sub: AffineExpr, node: c_ast.Node) -> int:
        """Upper bound (exclusive) of a subscript from enclosing loop bounds."""
        bound = sub.const
        for var, coeff in sub.coeffs:
            if var not in self._loop_bounds:
                raise FrontendError(
                    f"cannot size pointer-member array: {var!r} is not an "
                    "enclosing loop variable",
                    node,
                )
            lo, up = self._loop_bounds[var]
            if not up.is_constant or not lo.is_constant:
                raise FrontendError(
                    "cannot size pointer-member array from symbolic loop "
                    "bounds; define extents via macros",
                    node,
                )
            extreme = (up.as_int() - 1) if coeff > 0 else lo.as_int()
            bound += coeff * extreme
        return max(bound + 1, 1)

    # -- expressions -----------------------------------------------------------

    def _lower_expr(self, node: c_ast.Node) -> Expr:
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int", "char"):
                return Const(int(node.value.rstrip("uUlL"), 0), INT)
            return Const(float(node.value.rstrip("fFlL")), DOUBLE)
        if isinstance(node, c_ast.ID):
            if node.name in self.scope.arrays:
                raise FrontendError(
                    f"whole-array use of {node.name!r} in expression", node
                )
            ctype = self.scope.scalars.get(node.name, INT)
            return VarRef(node.name, ctype)
        if isinstance(node, (c_ast.ArrayRef, c_ast.StructRef)):
            ref = self._lower_lvalue(node, is_write=False)
            if isinstance(ref, str):
                return VarRef(ref, self.scope.scalars.get(ref, INT))
            return LoadExpr(ref)
        if isinstance(node, c_ast.BinaryOp):
            return BinOp(
                node.op, self._lower_expr(node.left), self._lower_expr(node.right)
            )
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "-":
                return UnOp("-", self._lower_expr(node.expr))
            if node.op == "+":
                return self._lower_expr(node.expr)
            if node.op == "!":
                return UnOp("!", self._lower_expr(node.expr))
            raise FrontendError(f"unsupported unary operator {node.op!r}", node)
        if isinstance(node, c_ast.FuncCall):
            fname = node.name.name if isinstance(node.name, c_ast.ID) else "<fn>"
            args = tuple(
                self._lower_expr(a) for a in (node.args.exprs if node.args else [])
            )
            return CallExpr(fname, args)
        if isinstance(node, c_ast.Cast):
            to = self._resolve_type(node.to_type.type)
            return CastExpr(to, self._lower_expr(node.expr))
        if isinstance(node, c_ast.TernaryOp):
            raise FrontendError("conditional expressions are not modeled", node)
        raise FrontendError(f"unsupported expression {type(node).__name__}", node)

    def _lower_affine(self, node: c_ast.Node) -> AffineExpr:
        """Lower an index/bound expression to affine form, folding constants."""
        if isinstance(node, c_ast.Constant):
            return AffineExpr.const_expr(int(node.value.rstrip("uUlL"), 0))
        if isinstance(node, c_ast.ID):
            return AffineExpr.var(node.name)
        if isinstance(node, c_ast.UnaryOp) and node.op == "-":
            return -self._lower_affine(node.expr)
        if isinstance(node, c_ast.BinaryOp):
            left = self._lower_affine(node.left)
            right = self._lower_affine(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                try:
                    return left * right
                except ValueError as exc:
                    raise FrontendError(str(exc), node) from exc
            if node.op == "/":
                if right.is_constant and left.is_constant:
                    q, r = divmod(left.as_int(), right.as_int())
                    if r == 0:
                        return AffineExpr.const_expr(q)
                raise FrontendError(
                    "division in subscripts/bounds must be an exact constant "
                    "division after macro expansion",
                    node,
                )
            raise FrontendError(
                f"non-affine operator {node.op!r} in subscript/bound", node
            )
        raise FrontendError(
            f"non-affine construct {type(node).__name__} in subscript/bound", node
        )
