"""Parsing of OpenMP pragma text into a structured clause object.

Only the subset the paper's model consumes is interpreted:
``parallel for``, ``for``, ``private(...)``, ``schedule(static[, chunk])``
and ``num_threads(n)``.  Unknown clauses are retained verbatim in
``OmpPragma.unknown`` so diagnostics can mention them, but they do not
abort parsing — mirroring how a compiler pass tolerates clauses it does
not participate in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.frontend.diag import FrontendError
from repro.ir.loops import Schedule


class PragmaError(FrontendError):
    """An OpenMP pragma is malformed or uses an unsupported schedule.

    A :class:`~repro.frontend.diag.FrontendError` subclass (stable code
    ``REPRO-F300``, CLI exit 3).
    """

    code = "REPRO-F300"  # registered in repro.resilience.errors


@dataclass(frozen=True)
class OmpPragma:
    """A parsed ``#pragma omp`` directive."""

    raw: str
    is_parallel: bool = False
    is_for: bool = False
    private: tuple[str, ...] = ()
    schedule: Schedule | None = None
    num_threads: int | None = None
    unknown: tuple[str, ...] = ()

    @property
    def is_parallel_for(self) -> bool:
        """True for combined ``parallel for`` (or ``parallel`` + ``for``)."""
        return self.is_parallel and self.is_for


_CLAUSE_RE = re.compile(r"([a-z_]+)\s*(\(([^()]*)\))?", re.IGNORECASE)


def parse_omp_pragma(text: str) -> OmpPragma | None:
    """Parse pragma text (without ``#pragma``).

    Returns ``None`` for non-OpenMP pragmas (e.g. ``#pragma once``).

    >>> p = parse_omp_pragma("omp parallel for private(i,j) schedule(static,1)")
    >>> p.is_parallel_for, p.private, p.schedule.chunk
    (True, ('i', 'j'), 1)
    """
    tokens = text.strip()
    if not tokens.lower().startswith("omp"):
        return None
    body = tokens[3:].strip()

    is_parallel = False
    is_for = False
    private: list[str] = []
    schedule: Schedule | None = None
    num_threads: int | None = None
    unknown: list[str] = []

    for m in _CLAUSE_RE.finditer(body):
        name = m.group(1).lower()
        args = m.group(3)
        if name == "parallel" and args is None:
            is_parallel = True
        elif name == "for" and args is None:
            is_for = True
        elif name == "private":
            if args is None:
                raise PragmaError(f"private clause requires arguments: {text!r}")
            private.extend(v.strip() for v in args.split(",") if v.strip())
        elif name == "schedule":
            schedule = _parse_schedule(args, text)
        elif name == "num_threads":
            if args is None or not args.strip().isdigit():
                raise PragmaError(
                    f"num_threads requires an integer constant: {text!r}"
                )
            num_threads = int(args)
        elif name in ("shared", "firstprivate", "reduction", "default", "nowait",
                      "collapse"):
            unknown.append(m.group(0))
        elif args is None and not name.strip():
            continue
        else:
            unknown.append(m.group(0))

    if not (is_parallel or is_for):
        # An omp pragma the model does not analyze (e.g. barrier, critical).
        return OmpPragma(raw=text, unknown=(body,))

    return OmpPragma(
        raw=text,
        is_parallel=is_parallel,
        is_for=is_for,
        private=tuple(private),
        schedule=schedule,
        num_threads=num_threads,
        unknown=tuple(unknown),
    )


def _parse_schedule(args: str | None, text: str) -> Schedule:
    if args is None:
        raise PragmaError(f"schedule clause requires arguments: {text!r}")
    parts = [p.strip() for p in args.split(",")]
    kind = parts[0].lower()
    if kind != "static":
        raise PragmaError(
            f"only schedule(static[,chunk]) is modeled (paper assumption); "
            f"got schedule({args}) in {text!r}"
        )
    chunk: int | None = None
    if len(parts) == 2:
        if not re.fullmatch(r"\d+", parts[1]):
            raise PragmaError(
                f"chunk size must be an integer constant after macro "
                f"expansion; got {parts[1]!r} in {text!r}"
            )
        chunk = int(parts[1])
        if chunk <= 0:
            raise PragmaError(f"chunk size must be positive in {text!r}")
    elif len(parts) > 2:
        raise PragmaError(f"malformed schedule clause in {text!r}")
    return Schedule("static", chunk)
