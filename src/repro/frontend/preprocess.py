"""A miniature C preprocessor for the kernel dialect.

:mod:`pycparser` consumes *preprocessed* ISO C and knows nothing about
``#pragma``.  Real OpenMP kernels, however, are all about pragmas.  This
module bridges the gap with three source-to-source steps that preserve
line numbers exactly (so parser diagnostics still point at the original
source):

1. object-like macros — ``#define N 9600`` — are recorded and substituted
   textually on word boundaries (integer-literal macros only, which is
   what loop-bound constants in the paper's kernels are);
2. ``#pragma omp ...`` lines are replaced by a marker *statement*
   ``__repro_pragma(k);`` that survives parsing and lets the lowering
   pass reattach pragma *k* to the statement that follows it;
3. every other directive (``#include`` etc.) is blanked out.

The marker-statement trick is how several production compilers
(including Open64's front end) thread pragma information through a
pragma-agnostic parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.frontend.diag import FrontendError
from repro.resilience.errors import SourceSpan

PRAGMA_MARKER = "__repro_pragma"

_DEFINE_RE = re.compile(
    r"^\s*#\s*define\s+(?P<name>[A-Za-z_]\w*)\s+(?P<value>.+?)\s*$"
)
_FUNC_DEFINE_RE = re.compile(r"^\s*#\s*define\s+[A-Za-z_]\w*\(")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(?P<text>.*?)\s*$")
_DIRECTIVE_RE = re.compile(r"^\s*#")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_INT_RE = re.compile(r"^[+-]?\d+$")


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`.

    Attributes
    ----------
    source:
        pycparser-ready C source; same number of lines as the input.
    pragmas:
        Marker id → raw pragma text (without the ``#pragma`` keyword).
    macros:
        Macro name → substituted integer value.
    """

    source: str
    pragmas: dict[int, str] = field(default_factory=dict)
    macros: dict[str, int] = field(default_factory=dict)


class PreprocessError(FrontendError):
    """Raised for macro constructs outside the supported dialect.

    A :class:`~repro.frontend.diag.FrontendError` subclass (stable code
    ``REPRO-F200``, CLI exit 3); carries the offending line number in
    its :class:`~repro.resilience.errors.SourceSpan` when known.
    """

    code = "REPRO-F200"  # registered in repro.resilience.errors


def _strip_comments(text: str) -> str:
    """Remove comments, preserving line structure of block comments."""

    def blank_keep_newlines(m: re.Match[str]) -> str:
        return "\n" * m.group(0).count("\n")

    text = _BLOCK_COMMENT_RE.sub(blank_keep_newlines, text)
    return _LINE_COMMENT_RE.sub("", text)


def _eval_macro_value(
    name: str,
    value: str,
    macros: dict[str, int],
    span: SourceSpan | None = None,
) -> int:
    """Evaluate a macro body: an integer literal or arithmetic over
    previously defined integer macros (e.g. ``#define HALF (N/2)``)."""
    expanded = _substitute_macros(value, macros)
    if _INT_RE.match(expanded.strip()):
        try:
            return int(expanded)
        except ValueError as exc:  # pragma: no cover - regex guards this
            raise PreprocessError(
                f"cannot evaluate #define {name} {value!r}", span=span
            ) from exc
    # Allow simple constant arithmetic: digits, parens, + - * / and spaces.
    # "**" is excluded (a fuzzed `#define X 9**9**9` must not hang the
    # evaluator computing an astronomically large power), as are bodies
    # long enough to make constant folding itself a resource hazard.
    if (
        len(expanded) <= 256
        and "**" not in expanded
        and re.fullmatch(r"[\d\s()+\-*/%]+", expanded)
    ):
        try:
            result = eval(expanded, {"__builtins__": {}}, {})  # noqa: S307
        except Exception as exc:
            raise PreprocessError(
                f"cannot evaluate #define {name} {value!r}", span=span
            ) from exc
        if isinstance(result, int):
            return result
        if isinstance(result, float) and result.is_integer():
            return int(result)
    raise PreprocessError(
        f"unsupported #define {name} {value!r}: only integer-constant macros "
        "are handled by the kernel dialect",
        span=span,
        hint="pass the value with -D NAME=VALUE or inline the constant",
    )


def _substitute_macros(line: str, macros: dict[str, int]) -> str:
    if not macros:
        return line
    pattern = re.compile(
        r"\b(" + "|".join(re.escape(m) for m in macros) + r")\b"
    )
    return pattern.sub(lambda m: str(macros[m.group(1)]), line)


def preprocess(
    source: str,
    extra_macros: dict[str, int] | None = None,
    filename: str = "<kernel>",
) -> PreprocessResult:
    """Run the mini preprocessor.

    Parameters
    ----------
    source:
        Raw kernel source (may contain ``#define``, ``#include``,
        ``#pragma omp`` and comments).
    extra_macros:
        Predefined integer macros, e.g. problem sizes injected by an
        experiment driver; they take precedence over in-file defines.
    filename:
        Display name used in diagnostic spans.
    """
    macros: dict[str, int] = dict(extra_macros or {})
    pragmas: dict[int, str] = {}
    out_lines: list[str] = []

    for lineno, raw_line in enumerate(_strip_comments(source).splitlines(), start=1):
        span = SourceSpan(file=filename, line=lineno)
        if _FUNC_DEFINE_RE.match(raw_line):
            # Silently dropping a function-like macro would leave its
            # uses to fail later with a confusing parse error.
            raise PreprocessError(
                f"unsupported function-like macro: {raw_line.strip()!r} "
                "(the kernel dialect handles integer-constant macros only)",
                span=span,
            )
        define = _DEFINE_RE.match(raw_line)
        if define:
            name = define.group("name")
            if name not in macros:  # extra_macros win
                macros[name] = _eval_macro_value(
                    name, define.group("value"), macros, span=span
                )
            out_lines.append("")
            continue

        pragma = _PRAGMA_RE.match(raw_line)
        if pragma:
            text = _substitute_macros(pragma.group("text"), macros)
            if text.lower().startswith("omp"):
                marker_id = len(pragmas)
                pragmas[marker_id] = text
                out_lines.append(f"{PRAGMA_MARKER}({marker_id});")
            else:
                # Non-OpenMP pragmas (#pragma once, pack, ...) are dropped;
                # a marker statement would be invalid at file scope.
                out_lines.append("")
            continue

        if _DIRECTIVE_RE.match(raw_line):
            out_lines.append("")
            continue

        out_lines.append(_substitute_macros(raw_line, macros))

    return PreprocessResult("\n".join(out_lines) + "\n", pragmas, macros)
