"""A miniature C preprocessor for the kernel dialect.

:mod:`pycparser` consumes *preprocessed* ISO C and knows nothing about
``#pragma``.  Real OpenMP kernels, however, are all about pragmas.  This
module bridges the gap with three source-to-source steps that preserve
line numbers exactly (so parser diagnostics still point at the original
source):

1. object-like macros — ``#define N 9600`` — are recorded and substituted
   textually on word boundaries (integer-literal macros only, which is
   what loop-bound constants in the paper's kernels are);
2. ``#pragma omp ...`` lines are replaced by a marker *statement*
   ``__repro_pragma(k);`` that survives parsing and lets the lowering
   pass reattach pragma *k* to the statement that follows it;
3. every other directive (``#include`` etc.) is blanked out.

The marker-statement trick is how several production compilers
(including Open64's front end) thread pragma information through a
pragma-agnostic parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

PRAGMA_MARKER = "__repro_pragma"

_DEFINE_RE = re.compile(
    r"^\s*#\s*define\s+(?P<name>[A-Za-z_]\w*)\s+(?P<value>.+?)\s*$"
)
_FUNC_DEFINE_RE = re.compile(r"^\s*#\s*define\s+[A-Za-z_]\w*\(")
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+(?P<text>.*?)\s*$")
_DIRECTIVE_RE = re.compile(r"^\s*#")
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_INT_RE = re.compile(r"^[+-]?\d+$")


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`.

    Attributes
    ----------
    source:
        pycparser-ready C source; same number of lines as the input.
    pragmas:
        Marker id → raw pragma text (without the ``#pragma`` keyword).
    macros:
        Macro name → substituted integer value.
    """

    source: str
    pragmas: dict[int, str] = field(default_factory=dict)
    macros: dict[str, int] = field(default_factory=dict)


class PreprocessError(ValueError):
    """Raised for macro constructs outside the supported dialect."""


def _strip_comments(text: str) -> str:
    """Remove comments, preserving line structure of block comments."""

    def blank_keep_newlines(m: re.Match[str]) -> str:
        return "\n" * m.group(0).count("\n")

    text = _BLOCK_COMMENT_RE.sub(blank_keep_newlines, text)
    return _LINE_COMMENT_RE.sub("", text)


def _eval_macro_value(name: str, value: str, macros: dict[str, int]) -> int:
    """Evaluate a macro body: an integer literal or arithmetic over
    previously defined integer macros (e.g. ``#define HALF (N/2)``)."""
    expanded = _substitute_macros(value, macros)
    if _INT_RE.match(expanded.strip()):
        return int(expanded)
    # Allow simple constant arithmetic: digits, parens, + - * / and spaces.
    if re.fullmatch(r"[\d\s()+\-*/%]+", expanded):
        try:
            result = eval(expanded, {"__builtins__": {}}, {})  # noqa: S307
        except Exception as exc:  # pragma: no cover - defensive
            raise PreprocessError(f"cannot evaluate #define {name} {value!r}") from exc
        if isinstance(result, int):
            return result
        if isinstance(result, float) and result.is_integer():
            return int(result)
    raise PreprocessError(
        f"unsupported #define {name} {value!r}: only integer-constant macros "
        "are handled by the kernel dialect"
    )


def _substitute_macros(line: str, macros: dict[str, int]) -> str:
    if not macros:
        return line
    pattern = re.compile(
        r"\b(" + "|".join(re.escape(m) for m in macros) + r")\b"
    )
    return pattern.sub(lambda m: str(macros[m.group(1)]), line)


def preprocess(source: str, extra_macros: dict[str, int] | None = None) -> PreprocessResult:
    """Run the mini preprocessor.

    Parameters
    ----------
    source:
        Raw kernel source (may contain ``#define``, ``#include``,
        ``#pragma omp`` and comments).
    extra_macros:
        Predefined integer macros, e.g. problem sizes injected by an
        experiment driver; they take precedence over in-file defines.
    """
    macros: dict[str, int] = dict(extra_macros or {})
    pragmas: dict[int, str] = {}
    out_lines: list[str] = []

    for raw_line in _strip_comments(source).splitlines():
        if _FUNC_DEFINE_RE.match(raw_line):
            # Silently dropping a function-like macro would leave its
            # uses to fail later with a confusing parse error.
            raise PreprocessError(
                f"unsupported function-like macro: {raw_line.strip()!r} "
                "(the kernel dialect handles integer-constant macros only)"
            )
        define = _DEFINE_RE.match(raw_line)
        if define:
            name = define.group("name")
            if name not in macros:  # extra_macros win
                macros[name] = _eval_macro_value(name, define.group("value"), macros)
            out_lines.append("")
            continue

        pragma = _PRAGMA_RE.match(raw_line)
        if pragma:
            text = _substitute_macros(pragma.group("text"), macros)
            if text.lower().startswith("omp"):
                marker_id = len(pragmas)
                pragmas[marker_id] = text
                out_lines.append(f"{PRAGMA_MARKER}({marker_id});")
            else:
                # Non-OpenMP pragmas (#pragma once, pack, ...) are dropped;
                # a marker statement would be invalid at file scope.
                out_lines.append("")
            continue

        if _DIRECTIVE_RE.match(raw_line):
            out_lines.append("")
            continue

        out_lines.append(_substitute_macros(raw_line, macros))

    return PreprocessResult("\n".join(out_lines) + "\n", pragmas, macros)
