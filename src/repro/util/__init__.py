"""Small shared utilities: logging, timing, integer helpers."""

from repro.util.logging import get_logger, parse_level, set_level
from repro.util.timing import Timer
from repro.util.intmath import ceil_div, popcount, is_power_of_two

__all__ = [
    "get_logger",
    "parse_level",
    "set_level",
    "Timer",
    "ceil_div",
    "popcount",
    "is_power_of_two",
]
