"""Package-wide logging setup.

Every module obtains its logger through :func:`get_logger` so the whole
package shares one configuration point.  The default level is WARNING;
``REPRO_LOG`` in the environment overrides it — either by name
(``REPRO_LOG=DEBUG``) or numerically (``REPRO_LOG=10``).  An invalid
value emits a :class:`RuntimeWarning` and falls back to WARNING instead
of being silently ignored.

:func:`set_level` adjusts verbosity at runtime (used by the obs layer
and the test suite) without mutating the environment.
"""

from __future__ import annotations

import logging
import os
import warnings

_CONFIGURED = False

_LEVEL_NAMES = {
    "CRITICAL": logging.CRITICAL,
    "FATAL": logging.FATAL,
    "ERROR": logging.ERROR,
    "WARNING": logging.WARNING,
    "WARN": logging.WARNING,
    "INFO": logging.INFO,
    "DEBUG": logging.DEBUG,
    "NOTSET": logging.NOTSET,
}


def parse_level(value: int | str) -> int:
    """Resolve a level given by name or number.

    >>> parse_level("debug"), parse_level(30), parse_level("10")
    (10, 30, 10)

    Raises :class:`ValueError` for anything unrecognized.
    """
    if isinstance(value, int):
        return value
    text = str(value).strip()
    if text.lstrip("-").isdigit():
        return int(text)
    name = text.upper()
    if name in _LEVEL_NAMES:
        return _LEVEL_NAMES[name]
    raise ValueError(
        f"invalid log level {value!r}; expected one of "
        f"{sorted(_LEVEL_NAMES)} or an integer"
    )


def _level_from_env() -> int:
    raw = os.environ.get("REPRO_LOG")
    if raw is None or not raw.strip():
        return logging.WARNING
    try:
        return parse_level(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_LOG={raw!r} is not a valid log level; "
            "falling back to WARNING",
            RuntimeWarning,
            stacklevel=3,
        )
        return logging.WARNING


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    root = logging.getLogger("repro")
    root.setLevel(_level_from_env())
    if not root.handlers:
        root.addHandler(handler)
    _CONFIGURED = True


def set_level(level: int | str) -> int:
    """Set the ``repro`` logger hierarchy's level; returns the old one.

    Accepts names (``"DEBUG"``), numbers (``10``) or numeric strings
    (``"10"``); raises :class:`ValueError` on anything else.  This is
    the programmatic alternative to the ``REPRO_LOG`` environment
    variable — tests and the obs layer use it to adjust verbosity
    without env mutation.
    """
    _configure_root()
    root = logging.getLogger("repro")
    old = root.level
    root.setLevel(parse_level(level))
    return old


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Dotted module name; a ``repro.`` prefix is added when missing.
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
