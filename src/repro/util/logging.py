"""Package-wide logging setup.

Every module obtains its logger through :func:`get_logger` so the whole
package shares one configuration point.  The default level is WARNING;
``REPRO_LOG`` in the environment overrides it (e.g. ``REPRO_LOG=DEBUG``).
"""

from __future__ import annotations

import logging
import os

_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        root.addHandler(handler)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Dotted module name; a ``repro.`` prefix is added when missing.
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
