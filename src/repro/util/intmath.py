"""Integer helpers shared by the scheduler, caches and detectors."""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``.

    >>> ceil_div(7, 3)
    3
    >>> ceil_div(6, 3)
    2
    >>> ceil_div(0, 5)
    0
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def popcount(x: int) -> int:
    """Number of set bits in a non-negative integer.

    Thread-holder sets in the FS detector are bitmasks over thread ids;
    counting φ hits is a popcount over those masks.
    """
    if x < 0:
        raise ValueError("popcount of negative integer is undefined here")
    return x.bit_count()


def is_power_of_two(x: int) -> bool:
    """True when ``x`` is a positive power of two.

    >>> is_power_of_two(64)
    True
    >>> is_power_of_two(0)
    False
    >>> is_power_of_two(3)
    False
    """
    return x > 0 and (x & (x - 1)) == 0
