"""Lightweight wall-clock timer used by experiment drivers.

The guides for this domain stress *measure before optimizing*; the
experiment drivers time the model and the prediction path with this
helper so the efficiency claims in EXPERIMENTS.md are backed by numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch accumulating across multiple uses.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
