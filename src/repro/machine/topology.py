"""Thread-to-socket placement policies for multi-socket machines.

The paper's testbed is 4 × 12 cores; where the OpenMP runtime pins
threads decides whether a chunk=1 neighbour conflict crosses a socket
boundary.  Two standard policies:

* ``contiguous`` (aka *compact*): threads fill a socket before spilling
  to the next — adjacent thread ids share a socket, so fine-grained
  false sharing stays on the fast intra-socket path;
* ``scatter`` (round-robin over sockets): adjacent thread ids land on
  *different* sockets — good for bandwidth, disastrous for chunk=1
  false sharing.

Used by the simulator's coherence costing and by the model's NUMA-aware
FS cycle conversion.
"""

from __future__ import annotations

from typing import Callable

PLACEMENTS = ("contiguous", "scatter")


def socket_of(
    thread: int, num_threads: int, cores_per_socket: int, placement: str
) -> int:
    """Socket id of a thread under a placement policy.

    >>> [socket_of(t, 8, 4, "contiguous") for t in range(8)]
    [0, 0, 0, 0, 1, 1, 1, 1]
    >>> [socket_of(t, 8, 4, "scatter") for t in range(8)]
    [0, 1, 0, 1, 0, 1, 0, 1]
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; use {PLACEMENTS}")
    if cores_per_socket <= 0:
        raise ValueError("cores_per_socket must be positive")
    num_sockets = max(-(-num_threads // cores_per_socket), 1)
    if placement == "contiguous":
        return thread // cores_per_socket
    return thread % num_sockets


def socket_map(
    num_threads: int, cores_per_socket: int, placement: str = "contiguous"
) -> list[int]:
    """Socket id per thread, as a list."""
    return [
        socket_of(t, num_threads, cores_per_socket, placement)
        for t in range(num_threads)
    ]


def pair_penalty_factory(
    num_threads: int,
    cores_per_socket: int,
    placement: str,
    cross_socket_factor: float,
) -> Callable[[int, int], float]:
    """Return ``penalty(t, k)``: the coherence multiplier between two
    threads (1.0 intra-socket, ``cross_socket_factor`` across)."""
    sockets = socket_map(num_threads, cores_per_socket, placement)

    def penalty(t: int, k: int) -> float:
        return 1.0 if sockets[t] == sockets[k] else cross_socket_factor

    return penalty
