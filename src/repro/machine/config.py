"""Machine configuration shared by the cost models and the simulator.

The paper evaluates on a 4-socket, 48-core AMD system (2.2 GHz, 64 B
cache lines, private 64 KB L1 and 512 KB L2 per core, 10 MB L3 shared by
12 cores).  :class:`MachineConfig` captures that description plus the
cost constants the Open64-style models need: per-level access latencies,
coherence penalties, functional-unit counts, operation latencies and
OpenMP runtime overheads.

Design notes
------------
* Everything is expressed in **cycles** — the paper's cost models compute
  CPU cycles and convert to seconds via the clock frequency only at the
  reporting boundary.
* The class is a frozen dataclass: configurations are values, never
  mutated mid-experiment, so a model run and a simulator run can be
  trusted to have seen identical parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.util import is_power_of_two


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Parameters
    ----------
    size_bytes:
        Total capacity of this level (per core for private levels).
    line_size:
        Cache line size in bytes; the false-sharing granularity.
    associativity:
        Ways per set; ``0`` means fully associative.
    latency_cycles:
        Cost of a hit served at this level.
    shared:
        Whether the level is shared between cores (e.g. L3).
    """

    size_bytes: int
    line_size: int = 64
    associativity: int = 8
    latency_cycles: int = 3
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_bytes}")
        if not is_power_of_two(self.line_size):
            raise ValueError(f"line size must be a power of two, got {self.line_size}")
        if self.size_bytes % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.associativity < 0:
            raise ValueError("associativity must be >= 0 (0 = fully associative)")
        if self.latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        if self.associativity and self.num_lines % self.associativity != 0:
            raise ValueError(
                "line count must be divisible by associativity "
                f"({self.num_lines} lines, {self.associativity} ways)"
            )

    def to_key_dict(self) -> dict:
        """Canonical, order-stable dict for cache-key hashing.

        Field names are spelled explicitly (never via ``vars()``) so the
        key schema is a deliberate contract: renaming an attribute
        without updating this method is a schema change and must bump
        :data:`repro.engine.keys.KEY_SCHEMA_VERSION`.
        """
        return {
            "size_bytes": self.size_bytes,
            "line_size": self.line_size,
            "associativity": self.associativity,
            "latency_cycles": self.latency_cycles,
            "shared": self.shared,
        }

    @property
    def num_lines(self) -> int:
        """Total number of cache lines in this level."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (1 when fully associative)."""
        if self.associativity == 0:
            return 1
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class CoherenceCosts:
    """Write-invalidate coherence penalties, in cycles.

    ``remote_fetch_cycles`` is the dominant false-sharing cost: the cache
    line is dirty in another core's private cache and must be transferred
    cache-to-cache.  ``invalidate_cycles`` is the bus/directory cost paid
    by a writer that must invalidate remote copies; ``upgrade_cycles`` is
    the cheaper shared→modified upgrade when no data transfer is needed.
    """

    remote_fetch_cycles: int = 120
    invalidate_cycles: int = 10
    upgrade_cycles: int = 8
    #: Multiplier applied to coherence penalties when the dirty copy
    #: lives on a *different socket* (HyperTransport/QPI hop).  The
    #: default of 1.0 keeps the flat model the paper uses; the NUMA
    #: ablation sets it explicitly.
    cross_socket_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("remote_fetch_cycles", "invalidate_cycles", "upgrade_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.cross_socket_factor < 1.0:
            raise ValueError("cross_socket_factor must be >= 1.0")

    def to_key_dict(self) -> dict:
        """Canonical dict for cache-key hashing (see :class:`CacheLevel`)."""
        return {
            "remote_fetch_cycles": self.remote_fetch_cycles,
            "invalidate_cycles": self.invalidate_cycles,
            "upgrade_cycles": self.upgrade_cycles,
            "cross_socket_factor": self.cross_socket_factor,
        }


@dataclass(frozen=True)
class FunctionalUnits:
    """Issue resources per core used by the processor model (Fig. 3)."""

    issue_width: int = 4
    int_units: int = 2
    fp_units: int = 2
    mem_units: int = 2

    def __post_init__(self) -> None:
        for name in ("issue_width", "int_units", "fp_units", "mem_units"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def to_key_dict(self) -> dict:
        """Canonical dict for cache-key hashing."""
        return {
            "issue_width": self.issue_width,
            "int_units": self.int_units,
            "fp_units": self.fp_units,
            "mem_units": self.mem_units,
        }


#: Default operation latencies (cycles) for the dependence-latency part of
#: the processor model.  Keys are the op-class names produced by
#: :meth:`repro.ir.exprtree.Expr.op_counts`.
DEFAULT_OP_LATENCIES: Mapping[str, int] = {
    "iadd": 1,
    "imul": 3,
    "idiv": 20,
    "fadd": 4,
    "fmul": 4,
    "fdiv": 20,
    "fneg": 1,
    "ineg": 1,
    "icmp": 1,
    "fcmp": 2,
    "load": 3,  # L1-hit load-to-use; misses are the cache model's business
    "store": 1,
    "call": 180,  # libm scalar transcendental (sin/cos on 2012-era x86)
    "cast": 1,
    "logic": 1,
    "shift": 1,
    "mod": 20,
}


@dataclass(frozen=True)
class OpLatencies:
    """Operation-latency table with a mapping-style lookup."""

    table: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_OP_LATENCIES))

    def __post_init__(self) -> None:
        for op, lat in self.table.items():
            if lat < 0:
                raise ValueError(f"latency for {op!r} must be non-negative")

    def __getitem__(self, op: str) -> int:
        try:
            return self.table[op]
        except KeyError:
            # Unknown intrinsics fall back to the generic call latency.
            if op.startswith("call"):
                return self.table.get("call", 40)
            raise

    def to_key_dict(self) -> dict:
        """Canonical dict for cache-key hashing: op names sorted so two
        tables built in different insertion orders hash identically."""
        return {op: self.table[op] for op in sorted(self.table)}


@dataclass(frozen=True)
class RuntimeOverheads:
    """OpenMP runtime and loop bookkeeping costs (Fig. 5)."""

    parallel_startup_cycles: int = 12_000
    # Static schedules compute chunk bounds arithmetically; the per-chunk
    # runtime cost is a few cycles of index math, not a queue operation.
    chunk_dispatch_cycles: int = 4
    barrier_cycles_per_thread: int = 200
    loop_overhead_per_iter_cycles: int = 2

    def __post_init__(self) -> None:
        for name in (
            "parallel_startup_cycles",
            "chunk_dispatch_cycles",
            "barrier_cycles_per_thread",
            "loop_overhead_per_iter_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def to_key_dict(self) -> dict:
        """Canonical dict for cache-key hashing."""
        return {
            "parallel_startup_cycles": self.parallel_startup_cycles,
            "chunk_dispatch_cycles": self.chunk_dispatch_cycles,
            "barrier_cycles_per_thread": self.barrier_cycles_per_thread,
            "loop_overhead_per_iter_cycles": self.loop_overhead_per_iter_cycles,
        }


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the modeled machine.

    Attributes
    ----------
    num_cores:
        Hardware cores available; one OpenMP thread is pinned per core.
    freq_ghz:
        Clock frequency, used only to convert cycles to seconds in reports.
    l1, l2:
        Private cache levels (per core).
    l3:
        Shared last-level cache.
    page_size / tlb_entries / tlb_miss_cycles:
        TLB parameters — the paper models the TLB "as another level of
        cache" at page granularity.
    mem_latency_cycles:
        DRAM access cost for a miss at every cache level.
    coherence:
        Write-invalidate penalty set; ``coherence.remote_fetch_cycles`` is
        the per-false-sharing-case cost ``fs_penalty`` used by Eq. (1).
    units / op_latencies:
        Processor-model resources.
    overheads:
        OpenMP/loop overhead constants.
    model_cache_lines:
        Capacity (in lines) of the *model's* per-thread fully-associative
        cache state (Section III-C).  Defaults to the private L2 capacity.
    """

    num_cores: int = 48
    #: Cores per socket (the paper's machine: 4 sockets x 12 cores).
    cores_per_socket: int = 12
    freq_ghz: float = 2.2
    l1: CacheLevel = field(
        default_factory=lambda: CacheLevel(64 * 1024, latency_cycles=3)
    )
    l2: CacheLevel = field(
        default_factory=lambda: CacheLevel(512 * 1024, latency_cycles=12)
    )
    l3: CacheLevel = field(
        default_factory=lambda: CacheLevel(
            10 * 1024 * 1024, latency_cycles=40, shared=True, associativity=16
        )
    )
    page_size: int = 4096
    tlb_entries: int = 512
    tlb_miss_cycles: int = 30
    mem_latency_cycles: int = 200
    coherence: CoherenceCosts = field(default_factory=CoherenceCosts)
    units: FunctionalUnits = field(default_factory=FunctionalUnits)
    op_latencies: OpLatencies = field(default_factory=OpLatencies)
    overheads: RuntimeOverheads = field(default_factory=RuntimeOverheads)
    model_cache_lines: int = 0  # 0 -> derive from L2
    #: Fraction of long-latency misses on constant-stride load streams
    #: hidden by hardware prefetching.  Used symmetrically: the simulator
    #: implements a per-reference stride prefetcher, and the analytic
    #: cache model scales its beyond-L1 streaming-miss cost by
    #: ``1 - prefetch_coverage``.
    prefetch_coverage: float = 0.85

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.cores_per_socket <= 0:
            raise ValueError("cores_per_socket must be positive")
        if not 0.0 <= self.prefetch_coverage <= 1.0:
            raise ValueError("prefetch_coverage must be within [0, 1]")
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if not is_power_of_two(self.page_size):
            raise ValueError("page_size must be a power of two")
        if self.tlb_entries <= 0:
            raise ValueError("tlb_entries must be positive")
        if self.mem_latency_cycles < 0:
            raise ValueError("mem_latency_cycles must be non-negative")
        if self.l1.line_size != self.l2.line_size or self.l2.line_size != self.l3.line_size:
            raise ValueError(
                "all cache levels must share one line size "
                "(the paper's machine uses 64 B everywhere)"
            )
        if self.model_cache_lines < 0:
            raise ValueError("model_cache_lines must be non-negative")

    # -- derived quantities -------------------------------------------------

    @property
    def line_size(self) -> int:
        """The machine-wide cache line size (false-sharing granularity)."""
        return self.l1.line_size

    @property
    def fs_penalty_cycles(self) -> int:
        """Cycles charged per false-sharing case in ``FalseSharing_c``."""
        return self.coherence.remote_fetch_cycles

    @property
    def fs_read_penalty_cycles(self) -> int:
        """Penalty of a read-FS case: a dirty cache-to-cache transfer."""
        return self.coherence.remote_fetch_cycles

    @property
    def fs_write_penalty_cycles(self) -> int:
        """Penalty of a write-FS case: the invalidation round plus the
        buffered refill the store would not otherwise need."""
        return self.coherence.invalidate_cycles + self.l3.latency_cycles // 4

    @property
    def model_stack_lines(self) -> int:
        """Stack depth for the model's per-thread LRU cache state."""
        if self.model_cache_lines:
            return self.model_cache_lines
        return self.l2.num_lines

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this machine's frequency."""
        return cycles / (self.freq_ghz * 1e9)

    # -- canonical keys ------------------------------------------------------

    def to_key_dict(self) -> dict:
        """Canonical nested dict describing this machine for cache keys.

        The dict is plain JSON-able data (ints, floats, bools, strs,
        nested dicts) with deterministic member order independent of how
        the config was constructed.  Floats are left as floats here; the
        engine's canonical serializer (:func:`repro.engine.keys.
        canonical_json`) encodes them via ``float.hex`` so the resulting
        SHA-256 never depends on ``repr`` drift across Python versions.

        Two configs compare equal iff their key dicts hash equal —
        property-tested in ``tests/test_engine_keys.py``.
        """
        return {
            "num_cores": self.num_cores,
            "cores_per_socket": self.cores_per_socket,
            "freq_ghz": self.freq_ghz,
            "l1": self.l1.to_key_dict(),
            "l2": self.l2.to_key_dict(),
            "l3": self.l3.to_key_dict(),
            "page_size": self.page_size,
            "tlb_entries": self.tlb_entries,
            "tlb_miss_cycles": self.tlb_miss_cycles,
            "mem_latency_cycles": self.mem_latency_cycles,
            "coherence": self.coherence.to_key_dict(),
            "units": self.units.to_key_dict(),
            "op_latencies": self.op_latencies.to_key_dict(),
            "overheads": self.overheads.to_key_dict(),
            "model_cache_lines": self.model_cache_lines,
            "prefetch_coverage": self.prefetch_coverage,
        }

    def stable_key(self) -> str:
        """SHA-256 hex digest of :meth:`to_key_dict` (canonical form)."""
        from repro.engine.keys import stable_hash  # deferred: no cycle at import

        return stable_hash(self.to_key_dict())

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Return a copy of this configuration with a different core count."""
        return replace(self, num_cores=num_cores)
