"""Calibration harness: derive model constants from simulator microbenchmarks.

The paper never publishes Open64's internal cost constants; ours live in
:mod:`repro.machine.config`.  To keep them honest — and to document that
they are *not* tuned per experiment — this harness measures each constant
from a dedicated microbenchmark on the simulator and reports measured vs
configured:

* ``fs_read_penalty``  ← a read ping-pong kernel: two threads alternately
  read/write one line; the marginal cost per coherence event is the
  penalty the model should charge per read-FS case;
* ``fs_write_penalty`` ← a write ping-pong kernel, same construction;
* ``prefetch_coverage`` ← a pure streaming kernel run with the
  prefetcher on and off: the hidden fraction of beyond-L1 miss cycles.

``calibrate()`` returns a report; ``tests/test_calibrate.py`` asserts
the shipped defaults sit inside the measured bands, which is what makes
the model-vs-simulator agreement in EXPERIMENTS.md meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.affine import AffineExpr
from repro.ir.exprtree import BinOp, Const, LoadExpr
from repro.ir.layout import DOUBLE
from repro.ir.loops import Assign, Loop, ParallelLoopNest, Schedule
from repro.ir.refs import ArrayDecl, ArrayRef
from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class CalibrationEntry:
    """One constant: what the config says vs what the sim measures."""

    name: str
    configured: float
    measured: float

    @property
    def relative_error(self) -> float:
        if self.measured == 0:
            return 0.0 if self.configured == 0 else float("inf")
        return abs(self.configured - self.measured) / abs(self.measured)


@dataclass(frozen=True)
class CalibrationReport:
    """All calibrated constants."""

    entries: tuple[CalibrationEntry, ...]

    def entry(self, name: str) -> CalibrationEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(name)

    def to_text(self) -> str:
        lines = ["calibration: configured vs simulator-measured"]
        for e in self.entries:
            lines.append(
                f"  {e.name:20s} configured={e.configured:8.1f}  "
                f"measured={e.measured:8.1f}  err={100 * e.relative_error:5.1f}%"
            )
        return "\n".join(lines)


def _pingpong_nest(n: int, rmw: bool) -> ParallelLoopNest:
    """Two threads alternating on shared lines (chunk=1, stride 8B).

    ``rmw=True`` makes each iteration a read-modify-write (exposing the
    read-FS path); ``rmw=False`` is a pure store stream (write-FS path).
    """
    shared = ArrayDecl.create("pp_shared", DOUBLE, (n,))
    i = AffineExpr.var("i")
    target = ArrayRef(shared, (i,), is_write=True)
    if rmw:
        stmt = Assign(target, Const(1.0, DOUBLE), augmented="+")
    else:
        stmt = Assign(target, Const(1.0, DOUBLE))
    return ParallelLoopNest(
        "pingpong.i", Loop.create("i", 0, n, [stmt]), "i",
        schedule=Schedule("static", 1),
    )


def _stream_nest(n: int) -> ParallelLoopNest:
    src = ArrayDecl.create("st_src", DOUBLE, (n,))
    dst = ArrayDecl.create("st_dst", DOUBLE, (n,))
    i = AffineExpr.var("i")
    stmt = Assign(
        ArrayRef(dst, (i,), is_write=True),
        BinOp("+", LoadExpr(ArrayRef(src, (i,))), Const(1.0, DOUBLE)),
    )
    return ParallelLoopNest(
        "stream.i", Loop.create("i", 0, n, [stmt]), "i",
        schedule=Schedule("static", None),
    )


def _marginal_fs_cost(machine: MachineConfig, rmw: bool, n: int = 4096) -> float:
    """Cycles per coherence event: FS-config minus aligned-config time."""
    from repro.sim import MulticoreSimulator

    sim = MulticoreSimulator(machine)
    nest = _pingpong_nest(n, rmw)
    fs = sim.run(nest, 2, chunk=1)
    clean = sim.run(nest, 2, chunk=machine.line_size // 8)
    events = fs.counters.coherence_events - clean.counters.coherence_events
    if events <= 0:
        return 0.0
    # Coherence events split across both threads; wall time reflects the
    # slower thread, so compare per-thread totals.
    delta = fs.per_thread_cycles.max() - clean.per_thread_cycles.max()
    return 2.0 * delta / events


def _measured_prefetch_coverage(machine: MachineConfig, n: int = 65536) -> float:
    """Hidden fraction of streaming miss cycles, measured on the sim."""
    from repro.sim import MulticoreSimulator

    nest = _stream_nest(n)
    on = MulticoreSimulator(machine, prefetcher=True).run(nest, 1)
    off = MulticoreSimulator(machine, prefetcher=False).run(nest, 1)
    # Memory cycles beyond the compute floor, with and without prefetch.
    base = on.compute_cycles_per_iter * n
    mem_on = float(on.per_thread_cycles.max()) - base
    mem_off = float(off.per_thread_cycles.max()) - base
    if mem_off <= 0:
        return 0.0
    hidden = (mem_off - mem_on) / mem_off
    return max(0.0, min(hidden, 1.0))


def calibrate(machine: MachineConfig) -> CalibrationReport:
    """Measure the FS penalties and prefetch coverage from the simulator."""
    entries = (
        CalibrationEntry(
            "fs_read_penalty",
            configured=float(machine.fs_read_penalty_cycles),
            measured=_marginal_fs_cost(machine, rmw=True),
        ),
        CalibrationEntry(
            "fs_write_penalty",
            configured=float(machine.fs_write_penalty_cycles),
            measured=_marginal_fs_cost(machine, rmw=False),
        ),
        CalibrationEntry(
            "prefetch_coverage",
            configured=machine.prefetch_coverage,
            measured=_measured_prefetch_coverage(machine),
        ),
    )
    return CalibrationReport(entries)
