"""Machine descriptions consumed by the cost models and the simulator.

A single :class:`~repro.machine.config.MachineConfig` instance describes
the cache hierarchy, coherence penalties, functional-unit mix and runtime
overheads of the target.  Both sides of the evaluation — the analytic
cost models in :mod:`repro.costmodels`/:mod:`repro.model` and the
execution substrate in :mod:`repro.sim` — read the *same* configuration,
mirroring how the paper's compile-time model and its 48-core testbed
share one physical machine.
"""

from repro.machine.config import (
    CacheLevel,
    CoherenceCosts,
    FunctionalUnits,
    MachineConfig,
    OpLatencies,
    RuntimeOverheads,
)
from repro.machine.calibrate import CalibrationEntry, CalibrationReport, calibrate
from repro.machine.presets import desktop_machine, paper_machine, tiny_machine
from repro.machine.topology import (
    PLACEMENTS,
    pair_penalty_factory,
    socket_map,
    socket_of,
)

__all__ = [
    "CalibrationEntry",
    "CalibrationReport",
    "calibrate",
    "PLACEMENTS",
    "pair_penalty_factory",
    "socket_map",
    "socket_of",
    "CacheLevel",
    "CoherenceCosts",
    "FunctionalUnits",
    "MachineConfig",
    "OpLatencies",
    "RuntimeOverheads",
    "desktop_machine",
    "paper_machine",
    "tiny_machine",
]
