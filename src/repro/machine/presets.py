"""Preset machine configurations.

``paper_machine`` mirrors the evaluation platform of the paper
(Section IV-B): four 2.2 GHz 12-core processors, 64 KB L1 and 512 KB L2
private per core, 10 MB L3 shared among the 12 cores of a socket, and a
64-byte line size at every level.  ``tiny_machine`` is a deliberately
small configuration used by the test suite so that capacity effects
(LRU eviction, TLB pressure) are exercised with tiny workloads.
"""

from __future__ import annotations

from repro.machine.config import CacheLevel, CoherenceCosts, MachineConfig


def paper_machine(num_cores: int = 48) -> MachineConfig:
    """The 48-core AMD system used in the paper's evaluation.

    Parameters
    ----------
    num_cores:
        Number of cores to expose; the paper sweeps 2..48 threads on a
        48-core box, and experiment drivers call :meth:`with_cores` or
        pass smaller values here.
    """
    return MachineConfig(
        num_cores=num_cores,
        freq_ghz=2.2,
        l1=CacheLevel(64 * 1024, line_size=64, associativity=2, latency_cycles=3),
        l2=CacheLevel(512 * 1024, line_size=64, associativity=16, latency_cycles=12),
        l3=CacheLevel(
            10 * 1024 * 1024, line_size=64, associativity=16,
            latency_cycles=40, shared=True,
        ),
    )


def desktop_machine(num_cores: int = 8) -> MachineConfig:
    """A commodity single-socket desktop (Zen/Skylake-class geometry).

    Used to study how the model's verdicts transfer across machines:
    bigger private L2, one socket, higher clock, faster uncore than the
    2012 server part.
    """
    return MachineConfig(
        num_cores=num_cores,
        cores_per_socket=max(num_cores, 1),
        freq_ghz=3.8,
        l1=CacheLevel(32 * 1024, line_size=64, associativity=8, latency_cycles=4),
        l2=CacheLevel(1024 * 1024, line_size=64, associativity=16, latency_cycles=14),
        l3=CacheLevel(
            32 * 1024 * 1024, line_size=64, associativity=16,
            latency_cycles=44, shared=True,
        ),
        mem_latency_cycles=260,
        coherence=CoherenceCosts(
            remote_fetch_cycles=70, invalidate_cycles=8, upgrade_cycles=6
        ),
    )


def tiny_machine(num_cores: int = 4, cache_lines: int = 16) -> MachineConfig:
    """A miniature machine for unit tests.

    Small private caches (``cache_lines`` lines) make eviction and
    capacity behaviour observable with traces of a few dozen accesses.
    """
    line = 64
    size = cache_lines * line
    return MachineConfig(
        num_cores=num_cores,
        freq_ghz=1.0,
        l1=CacheLevel(size, line_size=line, associativity=0, latency_cycles=1),
        l2=CacheLevel(size * 4, line_size=line, associativity=0, latency_cycles=4),
        l3=CacheLevel(size * 16, line_size=line, associativity=0,
                      latency_cycles=10, shared=True),
        tlb_entries=8,
        mem_latency_cycles=50,
        coherence=CoherenceCosts(
            remote_fetch_cycles=25, invalidate_cycles=5, upgrade_cycles=3
        ),
        model_cache_lines=cache_lines,
    )
