"""Step 3 of the model: per-thread cache states via stack distance analysis.

The paper (Section III-C) keeps one cache state per thread and updates it
with an LRU stack: "the stack distance analysis simulates the least
recently used (LRU) cache and outputs the state of the cache at each
distinct point of time".  The stack depth is the line count of a fully
associative cache — the paper argues (citing Sandberg et al.) that the
fully-associative approximation is accurate for highly associative
private caches.

Two engines live here:

* :class:`LRUStack` — the cache state proper: an ordered map from line
  id to MESI-ish state (Modified/Shared) with O(1) access, eviction and
  invalidation.  This is what the FS detector drives.
* :class:`StackDistanceAnalyzer` — the classic Bennett–Kruskal reuse
  (stack) distance algorithm over a Fenwick tree, O(log n) per access.
  It computes exact LRU stack distances for any trace and is used for
  locality diagnostics and as an independent oracle in the test suite
  (an access hits in an LRU cache of capacity C iff its stack distance
  is < C — a property the tests check against :class:`LRUStack`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import traced

#: Line states inside a thread's cache state.
MODIFIED = "M"
SHARED = "S"


class LRUStack:
    """A fully-associative LRU cache state with per-line M/S states.

    The stack top is the most recently used line.  ``capacity`` is the
    stack distance of the modeled cache (number of lines).
    """

    __slots__ = ("capacity", "_lines")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lines: OrderedDict[int, str] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, line: int) -> bool:
        return line in self._lines

    def state(self, line: int) -> str | None:
        """The line's state, or ``None`` when not cached."""
        return self._lines.get(line)

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """Touch ``line``; returns ``(hit, evicted_line)``.

        A write marks the line Modified; a read preserves an existing
        Modified state (the dirty bit survives reads).  On a miss the LRU
        line is evicted when the stack is full.
        """
        lines = self._lines
        prev = lines.pop(line, None)
        hit = prev is not None
        if is_write:
            state = MODIFIED
        else:
            state = prev if prev is not None else SHARED
        lines[line] = state  # (re-)insert at MRU position
        evicted: int | None = None
        if len(lines) > self.capacity:
            evicted, _ = lines.popitem(last=False)
        return hit, evicted

    def invalidate(self, line: int) -> bool:
        """Drop a line (remote write-invalidate); True when present."""
        return self._lines.pop(line, None) is not None

    def downgrade(self, line: int) -> bool:
        """Modified → Shared (remote read); True when state changed."""
        if self._lines.get(line) == MODIFIED:
            self._lines[line] = SHARED
            return True
        return False

    def stack(self) -> list[tuple[int, str]]:
        """The stack contents, MRU first."""
        return list(reversed(self._lines.items()))

    def clear(self) -> None:
        self._lines.clear()


class _FenwickTree:
    """A Fenwick/BIT over time slots for Bennett–Kruskal counting."""

    __slots__ = ("_tree", "n")

    def __init__(self, n: int) -> None:
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self._tree[i]
            i -= i & (-i)
        return s

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo else 0)


@dataclass
class DistanceHistogram:
    """Histogram of stack distances plus the cold-miss count."""

    counts: dict[int, int] = field(default_factory=dict)
    cold: int = 0

    def record(self, distance: int | None) -> None:
        if distance is None:
            self.cold += 1
        else:
            self.counts[distance] = self.counts.get(distance, 0) + 1

    def misses(self, capacity: int) -> int:
        """Misses an LRU cache of ``capacity`` lines would take."""
        return self.cold + sum(
            n for d, n in self.counts.items() if d >= capacity
        )

    def hits(self, capacity: int) -> int:
        return sum(n for d, n in self.counts.items() if d < capacity)

    @property
    def accesses(self) -> int:
        return self.cold + sum(self.counts.values())


class StackDistanceAnalyzer:
    """Exact LRU stack distances via Bennett–Kruskal (O(log n)/access).

    The stack distance of an access is the number of *distinct* lines
    touched since the previous access to the same line (``None`` for a
    first access).  Feed accesses with :meth:`access`; distances for a
    whole trace come from :meth:`distances`.
    """

    def __init__(self, trace_length_hint: int = 1024) -> None:
        self._last_time: dict[int, int] = {}
        self._tree = _FenwickTree(max(trace_length_hint, 16))
        self._time = 0

    def _grow(self) -> None:
        old = self._tree
        bigger = _FenwickTree(old.n * 2)
        # Rebuild from live marks: one mark per line at its last time.
        for line, t in self._last_time.items():
            bigger.add(t, 1)
        self._tree = bigger

    def access(self, line: int) -> int | None:
        """Record an access; return its stack distance (None = cold)."""
        if self._time >= self._tree.n:
            self._grow()
        prev = self._last_time.get(line)
        if prev is None:
            distance = None
        else:
            # Distinct lines touched strictly after prev: the live marks
            # in (prev, now) — each line keeps exactly one mark, at its
            # most recent access time.
            distance = self._tree.range_sum(prev + 1, self._time - 1)
            self._tree.add(prev, -1)
        self._tree.add(self._time, 1)
        self._last_time[line] = self._time
        self._time += 1
        return distance

    @traced(name="stackdist.distances")
    def distances(self, trace: Iterable[int]) -> list[int | None]:
        """Stack distance of every access in ``trace``.

        >>> StackDistanceAnalyzer().distances([1, 2, 1, 2, 3, 1])
        [None, None, 1, 1, None, 2]
        """
        return [self.access(line) for line in trace]

    @traced(name="stackdist.histogram")
    def histogram(self, trace: Iterable[int]) -> DistanceHistogram:
        """Full distance histogram of a trace."""
        hist = DistanceHistogram()
        for line in trace:
            hist.record(self.access(line))
        return hist
