"""Human-oriented diagnostics over an FS analysis result.

The paper motivates the model with the programmer's pain: "it is a
non-trivial process to correlate performance degradation to FS and then
identify the data structure and codes that cause the FS."  This module
turns an :class:`~repro.model.fsmodel.FSModelResult` into exactly that
correlation:

* victim arrays ranked by cases, with hot-line detail;
* the inter-thread conflict matrix (which thread pairs ping-pong), which
  exposes *why* — under ``schedule(static, 1)`` conflicts concentrate on
  adjacent thread ids, the signature of neighbouring-iteration sharing;
* a ready-to-print report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.fsmodel import FSModelResult


@dataclass(frozen=True)
class HotLine:
    """One cache line with its FS count and owning array."""

    line: int
    fs_cases: int
    array: str
    offset_in_array: int


@dataclass(frozen=True)
class FSDiagnostics:
    """Structured diagnosis of one analysis result."""

    result: FSModelResult
    hot_lines: tuple[HotLine, ...]
    pair_matrix: np.ndarray  # [T, T]: writer -> accessor cases

    @property
    def adjacency_share(self) -> float:
        """Fraction of FS cases between *adjacent* thread ids.

        Near 1.0 under chunk=1 schedules (neighbouring iterations land
        on neighbouring threads); spreading across the matrix points at
        coarser-grained sharing.
        """
        total = self.pair_matrix.sum()
        if total == 0:
            return 0.0
        T = self.pair_matrix.shape[0]
        adjacent = sum(
            self.pair_matrix[i, j]
            for i in range(T)
            for j in range(T)
            if abs(i - j) == 1
        )
        return float(adjacent / total)

    def to_text(self, max_lines: int = 5) -> str:
        r = self.result
        lines = [
            f"false-sharing diagnosis for {r.nest_name} "
            f"(T={r.num_threads}, chunk={r.chunk})",
            f"  cases: {r.fs_cases:,} total "
            f"({r.fs_read_cases:,} read / {r.fs_write_cases:,} write) over "
            f"{r.steps_evaluated:,} iterations",
        ]
        for victim in r.victim_arrays():
            lines.append(
                f"  victim: {victim.name} — {victim.fs_cases:,} cases on "
                f"{victim.lines:,} lines"
            )
        if self.hot_lines:
            lines.append(f"  hottest lines (top {max_lines}):")
            for hl in self.hot_lines[:max_lines]:
                lines.append(
                    f"    line {hl.line} ({hl.array} + {hl.offset_in_array} B): "
                    f"{hl.fs_cases:,} cases"
                )
        lines.append(
            f"  adjacent-thread share of conflicts: "
            f"{100 * self.adjacency_share:.0f}% "
            f"({'fine-grained interleaving' if self.adjacency_share > 0.5 else 'coarse-grained sharing'})"
        )
        return "\n".join(lines)


def diagnose(result: FSModelResult, top_lines: int = 16) -> FSDiagnostics:
    """Build diagnostics from an analysis result."""
    hot: list[HotLine] = []
    for line, cases in result.stats.fs_by_line.most_common(top_lines):
        addr = line * result.line_size
        array = "<unknown>"
        offset = 0
        for arr in result.space.arrays():
            base = result.space.base(arr.name)
            if base <= addr < base + arr.size_bytes():
                array = arr.name
                offset = addr - base
                break
        hot.append(HotLine(line, cases, array, offset))

    T = result.num_threads
    matrix = np.zeros((T, T), dtype=np.int64)
    for (writer, accessor), cases in result.stats.fs_by_pair.items():
        matrix[writer, accessor] = cases
    return FSDiagnostics(result=result, hot_lines=tuple(hot), pair_matrix=matrix)
