"""The paper's contribution: the compile-time false-sharing cost model.

Pipeline (Section III):

1. array references — delivered by the frontend/builders on the nest;
2. :mod:`~repro.model.ownership` — cache line ownership lists per thread;
3. :mod:`~repro.model.stackdist` — LRU cache states / stack distances;
4. :mod:`~repro.model.detector` — φ/mask 1-to-All FS counting;
plus :mod:`~repro.model.regression` (the linear-regression FS predictor)
and :mod:`~repro.model.cost` (Eq. 1 integration / Eq. 5 percentages).

Performance machinery (docs/PERFORMANCE.md): step 4 has a vectorized
NumPy twin (:mod:`~repro.model.fastdetect`, ``engine="fast"``), an
optional JIT-compiled tier (:mod:`~repro.model.jitdetect`,
``engine="jit"``, guarded numba import), an exact steady-state early
exit (:mod:`~repro.model.steadystate`), and segment-parallel
simulation across worker processes (:mod:`~repro.model.simparallel`,
``sim_jobs``) — all bit-identical to the scalar reference detector.
"""

from repro.model.cost import (
    FSOverheadReport,
    fs_cycles,
    fs_overhead_percent,
    measured_fs_percent,
    predicted_fs_percent,
)
from repro.model.detector import FSDetector, FSStats
from repro.model.diagnostics import FSDiagnostics, HotLine, diagnose
from repro.model.fastdetect import (
    AUTO_REFERENCE_MAX_ACCESSES,
    ENGINES,
    FastFSDetector,
    make_detector,
    resolve_engine,
)
from repro.model.fsmodel import (
    FalseSharingModel,
    FSCycleRate,
    FSModelResult,
    VictimArray,
)
from repro.model.jitdetect import (
    NUMBA_AVAILABLE,
    JitFSDetector,
    jit_available,
    warmup_jit,
)
from repro.model.ownership import OwnershipBlock, OwnershipListGenerator
from repro.model.regression import (
    FalseSharingPredictor,
    FSPrediction,
    LinearFit,
    ols_fit,
    paper_fit,
)
from repro.model.schedule import (
    IterationSpace,
    LockstepEnumerator,
    effective_chunk,
    static_chunk_positions,
)
from repro.model.stackdist import (
    DistanceHistogram,
    LRUStack,
    MODIFIED,
    SHARED,
    StackDistanceAnalyzer,
)
from repro.model.simparallel import (
    plan_segments,
    segment_eligible,
    simulate_segmented,
)
from repro.model.steadystate import (
    ShiftProfile,
    SteadyStateRunner,
    compute_shift_profile,
)
from repro.model.whatif import SweepPoint, SweepResult, WhatIfSweep

__all__ = [
    "FSOverheadReport",
    "fs_cycles",
    "fs_overhead_percent",
    "measured_fs_percent",
    "predicted_fs_percent",
    "FSDetector",
    "FSStats",
    "FSDiagnostics",
    "HotLine",
    "diagnose",
    "AUTO_REFERENCE_MAX_ACCESSES",
    "ENGINES",
    "FastFSDetector",
    "NUMBA_AVAILABLE",
    "JitFSDetector",
    "jit_available",
    "warmup_jit",
    "make_detector",
    "resolve_engine",
    "plan_segments",
    "segment_eligible",
    "simulate_segmented",
    "ShiftProfile",
    "SteadyStateRunner",
    "compute_shift_profile",
    "FalseSharingModel",
    "FSCycleRate",
    "FSModelResult",
    "VictimArray",
    "OwnershipBlock",
    "OwnershipListGenerator",
    "FalseSharingPredictor",
    "FSPrediction",
    "LinearFit",
    "ols_fit",
    "paper_fit",
    "IterationSpace",
    "LockstepEnumerator",
    "effective_chunk",
    "static_chunk_positions",
    "DistanceHistogram",
    "LRUStack",
    "MODIFIED",
    "SHARED",
    "StackDistanceAnalyzer",
    "SweepPoint",
    "SweepResult",
    "WhatIfSweep",
]
